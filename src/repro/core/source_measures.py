"""Concrete computation of the Table 1 (source) measures.

Every measure is a pure function of a :class:`SourceMeasurementContext`,
which bundles the crawl snapshot of the source, the panel observations
(Alexa-like and Feedburner-like), the Domain of Interest and the corpus
statistic needed by the "compared to the largest Web blog/forum" measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.core.domain import DomainOfInterest
from repro.core.measures import MeasureRegistry, source_measure_registry
from repro.errors import MeasureError, UnknownMeasureError
from repro.sources.crawler import CrawlSnapshot
from repro.sources.webstats import PanelObservation

__all__ = [
    "SourceMeasurementContext",
    "compute_source_measure",
    "compute_source_measures",
    "SOURCE_MEASURE_FUNCTIONS",
]


@dataclass(frozen=True)
class SourceMeasurementContext:
    """Everything needed to evaluate the Table 1 measures for one source."""

    snapshot: CrawlSnapshot
    domain: DomainOfInterest
    alexa: Optional[PanelObservation] = None
    feedburner: Optional[PanelObservation] = None
    corpus_max_open_discussions: int = 0

    def require_alexa(self) -> PanelObservation:
        """Return the Alexa-like observation or raise :class:`MeasureError`."""
        if self.alexa is None:
            raise MeasureError(
                f"source {self.snapshot.source_id!r} has no Alexa-like panel observation"
            )
        return self.alexa

    def require_feedburner(self) -> PanelObservation:
        """Return the Feedburner-like observation or raise :class:`MeasureError`."""
        if self.feedburner is None:
            raise MeasureError(
                f"source {self.snapshot.source_id!r} has no Feedburner-like observation"
            )
        return self.feedburner


# ---------------------------------------------------------------------------
# Individual measure functions
# ---------------------------------------------------------------------------

def _open_discussion_category_coverage(context: SourceMeasurementContext) -> float:
    """Open discussions covering the DI categories over total discussions."""
    snapshot = context.snapshot
    if snapshot.total_discussions == 0:
        return 0.0
    covering = snapshot.open_discussions_in_categories(context.domain.categories)
    return covering / snapshot.total_discussions


def _avg_comments_per_category(context: SourceMeasurementContext) -> float:
    """Average number of comments per DI content category."""
    categories = context.domain.categories
    if not categories:
        return 0.0
    return context.snapshot.comments_in_categories(categories) / len(categories)


def _centrality(context: SourceMeasurementContext) -> float:
    """Number of DI categories covered by at least one discussion."""
    return float(len(context.snapshot.covered(context.domain.categories)))


def _open_discussions_per_category(context: SourceMeasurementContext) -> float:
    """Open discussions per DI content category."""
    categories = context.domain.categories
    if not categories:
        return 0.0
    return context.snapshot.open_discussions_in_categories(categories) / len(categories)


def _open_discussions_vs_largest(context: SourceMeasurementContext) -> float:
    """Open discussions relative to the largest blog/forum in the corpus."""
    largest = context.corpus_max_open_discussions
    if largest <= 0:
        return 0.0
    return context.snapshot.open_discussions / largest


def _comments_per_user(context: SourceMeasurementContext) -> float:
    """Number of comments per contributing user."""
    return context.snapshot.comments_per_user


def _discussion_age(context: SourceMeasurementContext) -> float:
    """Average age of the discussion threads in days."""
    return context.snapshot.average_thread_age


def _traffic_rank(context: SourceMeasurementContext) -> float:
    """Alexa-style traffic rank (lower is better)."""
    return float(context.require_alexa().traffic_rank)


def _new_discussions_per_day(context: SourceMeasurementContext) -> float:
    """Average number of newly opened discussions per day."""
    return context.snapshot.new_discussions_per_day


def _distinct_tags_per_post(context: SourceMeasurementContext) -> float:
    """Average number of distinct tags per post."""
    return context.snapshot.average_distinct_tags_per_post


def _inbound_links(context: SourceMeasurementContext) -> float:
    """Number of inbound links reported by the panel."""
    return float(context.require_alexa().inbound_links)


def _feed_subscriptions(context: SourceMeasurementContext) -> float:
    """Number of feed subscriptions reported by the panel."""
    return float(context.require_feedburner().feed_subscriptions)


def _daily_visitors(context: SourceMeasurementContext) -> float:
    """Daily visitors reported by the panel."""
    return context.require_alexa().daily_visitors


def _daily_page_views(context: SourceMeasurementContext) -> float:
    """Daily page views reported by the panel."""
    return context.require_alexa().daily_page_views


def _time_on_site(context: SourceMeasurementContext) -> float:
    """Average time spent on site reported by the panel (seconds)."""
    return context.require_alexa().average_time_on_site


def _page_views_per_visitor(context: SourceMeasurementContext) -> float:
    """Daily page views per daily visitor."""
    return context.require_alexa().page_views_per_visitor


def _bounce_rate(context: SourceMeasurementContext) -> float:
    """Bounce rate reported by the panel (lower is better)."""
    return context.require_alexa().bounce_rate


def _comments_per_discussion(context: SourceMeasurementContext) -> float:
    """Average number of comments per discussion."""
    return context.snapshot.average_comments_per_discussion


def _comments_per_discussion_per_day(context: SourceMeasurementContext) -> float:
    """Average number of comments per discussion per day."""
    return context.snapshot.average_comments_per_discussion_per_day


#: Dispatch table mapping Table 1 measure names to their implementations.
SOURCE_MEASURE_FUNCTIONS: Mapping[str, Callable[[SourceMeasurementContext], float]] = {
    "open_discussion_category_coverage": _open_discussion_category_coverage,
    "avg_comments_per_category": _avg_comments_per_category,
    "centrality": _centrality,
    "open_discussions_per_category": _open_discussions_per_category,
    "open_discussions_vs_largest": _open_discussions_vs_largest,
    "comments_per_user": _comments_per_user,
    "discussion_age": _discussion_age,
    "traffic_rank": _traffic_rank,
    "new_discussions_per_day": _new_discussions_per_day,
    "distinct_tags_per_post": _distinct_tags_per_post,
    "inbound_links": _inbound_links,
    "feed_subscriptions": _feed_subscriptions,
    "daily_visitors": _daily_visitors,
    "daily_page_views": _daily_page_views,
    "time_on_site": _time_on_site,
    "page_views_per_visitor": _page_views_per_visitor,
    "bounce_rate": _bounce_rate,
    "comments_per_discussion": _comments_per_discussion,
    "comments_per_discussion_per_day": _comments_per_discussion_per_day,
}


def compute_source_measure(name: str, context: SourceMeasurementContext) -> float:
    """Compute the Table 1 measure ``name`` for the given context."""
    try:
        function = SOURCE_MEASURE_FUNCTIONS[name]
    except KeyError as exc:
        raise UnknownMeasureError(name) from exc
    return float(function(context))


def compute_source_measures(
    context: SourceMeasurementContext,
    registry: Optional[MeasureRegistry] = None,
    names: Optional[Iterable[str]] = None,
) -> dict[str, float]:
    """Compute a set of Table 1 measures (all of them by default)."""
    if names is None:
        registry = registry or source_measure_registry()
        names = registry.names()
    return {name: compute_source_measure(name, context) for name in names}
