"""Eager refresh scheduling for latency-critical serving (ROADMAP (d)).

Every consumer of a :class:`~repro.sources.corpus.SourceCorpus` — the
search engine, the quality models — already refreshes *lazily*: each read
checks an O(1) dirty flag and, when a mutation happened since the last
read, patches its derived state incrementally before answering.  That
keeps reads correct under any mutation stream, but it puts the patch cost
on the *read path*: the first read after a burst of mutations absorbs the
whole patch, which is exactly where an interactive mashup can least
afford latency.

:class:`EagerRefreshScheduler` moves that cost off the read path.  It
subscribes to the corpus's :class:`~repro.sources.corpus.CorpusChange`
notifications and drives the registered consumers' *ordinary* refresh
entry points ahead of the next read, so a hot read finds a clean dirty
flag and serves in O(1).  Three modes trade patch count against write
latency:

``sync``
    Refresh inline, inside the mutation's notification: every event pays
    one patch per consumer, reads are always clean.  Simplest, and the
    right mode when mutations are rare.
``deferred``
    Mark work pending and apply it at the next :meth:`~EagerRefreshScheduler.flush`
    / :meth:`~EagerRefreshScheduler.poll` (or as soon as the background
    worker wakes).  Mutations return immediately; a burst of events that
    arrives before the patch runs collapses into one patch.
``coalescing``
    Like ``deferred``, plus a *debounce window*: the patch is held until
    the stream has been quiet for ``debounce_window`` seconds (bounded by
    ``max_delay``, so a steady stream cannot starve serving forever).  A
    burst of N mutations costs one patch per consumer, the mode to pair
    with write-heavy workloads.

**Correctness never depends on the scheduler.**  Eager refresh invokes the
same incremental-maintenance paths the consumers run lazily (which are
bit-identical to from-scratch rebuilds — see ``docs/PERFORMANCE.md``), and
every consumer read path keeps its own dirty-flag check: if a read
arrives before the scheduler got around to patching, the consumer simply
patches itself lazily, exactly as without a scheduler.  The scheduler is
therefore purely a latency optimisation, and eager results are
bit-identical to lazy ones by construction (pinned by
``tests/test_serving.py`` and re-asserted per event by
``benchmarks/bench_eager_refresh.py``).

The consumer registration contract is documented in
``docs/ARCHITECTURE.md``: anything callable can be registered via
:meth:`~EagerRefreshScheduler.register`; convenience wrappers cover the
built-in consumers.  Registrations may carry a *source filter* so that
per-source consumers (a contributor model watching one community) are
only refreshed by events touching their source.

Threading: :meth:`~EagerRefreshScheduler.start` launches a daemon worker
that applies deferred/coalescing patches in the background.  Event
intake and patching use *separate* locks: notifications from mutating
threads only take the intake lock briefly to record the event (they
never wait for a running patch), while consumer refreshes are serialised
under the patch lock (``scheduler.lock``).  The built-in consumers are
not internally thread-safe, so when reads happen on a different thread
than the background worker, perform them under ``scheduler.lock``;
single-threaded callers (the common case — drive the scheduler with
``flush()``/``poll()``) need no locking at all.

Error policy: a consumer refresh that raises is always recorded in the
consumer's :class:`ConsumerStats` (and the ``refresh_errors`` counter).
Explicit foreground calls — :meth:`~EagerRefreshScheduler.flush`,
:meth:`~EagerRefreshScheduler.poll`,
:meth:`~EagerRefreshScheduler.refresh_all` — additionally re-raise the
first failure as a :class:`~repro.errors.ServingError`.  Sync-mode
patches (which run inside the *mutation's* notification) and the
background worker do not raise: a failed eager refresh must not make an
already-applied corpus mutation appear to fail, nor starve other
listeners of the event — the consumer simply falls back to lazy refresh
on its next read, where the error (if persistent) surfaces in context.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Optional

from repro.errors import ServingError
from repro.perf.counters import PerfCounters
from repro.sources.corpus import CorpusChange, SourceCorpus

__all__ = ["RefreshMode", "ConsumerStats", "EagerRefreshScheduler"]


class RefreshMode(str, Enum):
    """When the scheduler patches its consumers relative to mutations."""

    #: Patch inline, inside each mutation's change notification.
    SYNC = "sync"
    #: Patch at the next flush/poll or background wake-up, without a window.
    DEFERRED = "deferred"
    #: Patch once the stream has been quiet for the debounce window.
    COALESCING = "coalescing"


@dataclass
class ConsumerStats:
    """Per-consumer bookkeeping exposed by :meth:`EagerRefreshScheduler.stats`."""

    name: str
    patches: int = 0
    skips: int = 0
    errors: int = 0
    #: ``"ExceptionType: message"`` of the most recent failed refresh.  A
    #: string, not the exception object: a live exception would pin the
    #: whole failed patch call stack (matrices, snapshots) via its
    #: traceback for the long-lived scheduler's lifetime.
    last_error: Optional[str] = None
    last_duration_seconds: float = 0.0


@dataclass
class _Consumer:
    """One registered refresh target."""

    name: str
    refresh: Callable[[], Any]
    #: When set, only events whose ``source_id`` is in this set trigger a
    #: refresh of this consumer (per-source consumers such as a
    #: contributor model watching one community).
    source_filter: Optional[frozenset] = None
    stats: ConsumerStats = field(default_factory=lambda: ConsumerStats(name=""))

    def __post_init__(self) -> None:
        self.stats.name = self.name


class EagerRefreshScheduler:
    """Subscribe to corpus changes and patch registered consumers eagerly.

    See the module docstring for the mode semantics.  The scheduler holds
    a *strong* subscription on the corpus and strong references to its
    consumers; call :meth:`close` (or use it as a context manager) when
    done, which unsubscribes and stops the background worker.
    """

    def __init__(
        self,
        corpus: SourceCorpus,
        mode: RefreshMode | str = RefreshMode.COALESCING,
        *,
        debounce_window: float = 0.05,
        max_delay: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if debounce_window < 0:
            raise ServingError("debounce_window must be non-negative")
        if max_delay < debounce_window:
            raise ServingError("max_delay must be at least the debounce window")
        self._corpus = corpus
        self._mode = RefreshMode(mode)
        self._debounce_window = float(debounce_window)
        self._max_delay = float(max_delay)
        self._clock = clock
        self._consumers: dict[str, _Consumer] = {}
        #: Intake lock: protects the pending-event state and the consumer
        #: registry.  Notifications only ever take this one, briefly.
        self._intake = threading.RLock()
        self._wakeup = threading.Condition(self._intake)
        #: Patch lock: serialises consumer refreshes (and the reads that
        #: must not race them — see the ``lock`` property).  Always
        #: acquired *before* the intake lock, never while holding it.
        self._patch_lock = threading.RLock()
        #: Source identifiers touched since the last applied patch.
        self._pending_ids: set[str] = set()
        self._first_pending_at: Optional[float] = None
        self._last_event_at: Optional[float] = None
        self._auto_names = 0
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.counters = PerfCounters()
        corpus.subscribe(self._on_change)

    # -- accessors -----------------------------------------------------------------

    @property
    def corpus(self) -> SourceCorpus:
        """The corpus whose change notifications drive the scheduler."""
        return self._corpus

    @property
    def mode(self) -> RefreshMode:
        """The configured refresh mode."""
        return self._mode

    @property
    def lock(self) -> threading.RLock:
        """Lock serialising patches; hold it for reads from other threads."""
        return self._patch_lock

    @property
    def pending(self) -> bool:
        """True when at least one event awaits a patch (always False in sync mode)."""
        with self._intake:
            return bool(self._pending_ids)

    @property
    def running(self) -> bool:
        """True while the background worker thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def consumer_names(self) -> list[str]:
        """Names of the registered consumers, in registration order."""
        with self._intake:
            return list(self._consumers)

    def stats(self) -> dict[str, ConsumerStats]:
        """Per-consumer patch/skip/error statistics keyed by consumer name."""
        with self._intake:
            return {name: consumer.stats for name, consumer in self._consumers.items()}

    # -- registration ---------------------------------------------------------------

    def register(
        self,
        name: str,
        refresh: Callable[[], Any],
        *,
        source_ids: Optional[Iterable[str]] = None,
    ) -> None:
        """Register ``refresh`` to be driven eagerly under ``name``.

        ``refresh`` must be an idempotent zero-argument callable that
        brings the consumer's derived state in sync with the corpus — for
        the built-in consumers that is exactly their lazy refresh entry
        point, which is what guarantees eager results are bit-identical to
        lazy ones.  ``source_ids`` optionally restricts the consumer to
        events touching those sources.  Registering an existing name
        replaces it.
        """
        consumer = _Consumer(
            name=name,
            refresh=refresh,
            source_filter=frozenset(source_ids) if source_ids is not None else None,
        )
        with self._intake:
            self._consumers[name] = consumer

    def _auto_name(self, prefix: str) -> str:
        """A fresh consumer name that can never replace a live registration."""
        with self._intake:
            while True:
                name = f"{prefix}-{self._auto_names}"
                self._auto_names += 1
                if name not in self._consumers:
                    return name

    def register_search_engine(self, engine: Any, name: Optional[str] = None) -> str:
        """Register a :class:`~repro.search.engine.SearchEngine` (``engine.refresh``)."""
        name = name or self._auto_name("search-engine")
        self.register(name, engine.refresh)
        return name

    def register_source_model(
        self,
        model: Any,
        corpus: Optional[SourceCorpus] = None,
        benchmark_corpus: Optional[SourceCorpus] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a :class:`~repro.core.source_quality.SourceQualityModel`.

        The eager refresh drives ``model.assessment_context(corpus,
        benchmark_corpus)`` — the same incremental path every model read
        goes through.  ``corpus`` defaults to the scheduler's corpus.
        """
        target = corpus if corpus is not None else self._corpus
        name = name or self._auto_name("source-model")
        self.register(
            name, lambda: model.assessment_context(target, benchmark_corpus)
        )
        return name

    def register_contributor_model(
        self, model: Any, source: Any, name: Optional[str] = None
    ) -> str:
        """Register a contributor model for one source's community.

        The consumer is filtered to events touching ``source`` (other
        sources' mutations cannot stale this community), and the eager
        refresh drives ``model.refresh(source)``.
        """
        name = name or self._auto_name(f"contributor-model-{source.source_id}")
        self.register(
            name,
            lambda: model.refresh(source),
            source_ids=(source.source_id,),
        )
        return name

    def unregister(self, name: str) -> bool:
        """Remove a registered consumer; returns False when unknown."""
        with self._intake:
            return self._consumers.pop(name, None) is not None

    # -- event intake ----------------------------------------------------------------

    def _on_change(self, change: CorpusChange) -> None:
        with self._intake:
            if self._closed:
                return
            self.counters.increment("notifications")
            if self._pending_ids:
                self.counters.increment("coalesced_events")
            self._pending_ids.add(change.source_id)
            now = self._clock()
            if self._first_pending_at is None:
                self._first_pending_at = now
            self._last_event_at = now
            if self._mode is not RefreshMode.SYNC:
                self._wakeup.notify_all()
                return
        # Sync mode: patch on the mutating thread, outside the intake lock
        # and *without raising* — a failed eager refresh must not make the
        # already-applied mutation appear to fail, nor starve the corpus's
        # later-registered listeners of this event (errors are recorded in
        # the consumer stats; the consumer falls back to lazy refresh).
        self._apply(raise_errors=False)

    # -- patching --------------------------------------------------------------------

    def due(self, now: Optional[float] = None) -> bool:
        """True when pending work should be applied at ``now`` (poll contract).

        Deferred mode is due as soon as anything is pending; coalescing
        mode is due once the stream has been quiet for the debounce window
        or the oldest pending event has waited ``max_delay``.
        """
        with self._intake:
            return self._due_locked(self._clock() if now is None else now)

    def _due_locked(self, now: float) -> bool:
        if not self._pending_ids:
            return False
        if self._mode is not RefreshMode.COALESCING:
            return True
        assert self._last_event_at is not None and self._first_pending_at is not None
        return (
            now - self._last_event_at >= self._debounce_window
            or now - self._first_pending_at >= self._max_delay
        )

    def poll(self) -> int:
        """Apply pending work if it is due; return the number of patches run.

        The foreground pump for callers without a background worker:
        call it from the serving loop (e.g. once per request batch).
        """
        with self._intake:
            if not self._due_locked(self._clock()):
                return 0
        return self._apply(raise_errors=True)

    def flush(self) -> int:
        """Apply pending work *now*, ignoring the debounce window.

        Returns the number of consumer patches run (0 when nothing was
        pending).  Also the deterministic hook tests and benchmarks use to
        force the eager patch without waiting on wall-clock time.
        """
        return self._apply(raise_errors=True)

    def refresh_all(self) -> int:
        """Unconditionally run every registered consumer's refresh once.

        Useful right after registration to warm consumers up so the first
        mutation patches incrementally instead of building from scratch.
        """
        with self._patch_lock:
            with self._intake:
                self._pending_ids.clear()
                self._first_pending_at = None
                self._last_event_at = None
                consumers = tuple(self._consumers.values())
            return self._refresh_consumers(consumers, raise_errors=True)

    def _apply(self, raise_errors: bool) -> int:
        """Apply the pending patch to every matching consumer.

        Consumer refreshes run under the patch lock only; the intake lock
        is taken just long enough to snapshot-and-clear the pending state,
        so mutating threads are never blocked behind a running patch.
        """
        with self._patch_lock:
            with self._intake:
                if not self._pending_ids:
                    return 0
                touched = frozenset(self._pending_ids)
                self._pending_ids.clear()
                self._first_pending_at = None
                self._last_event_at = None
                matching: list[_Consumer] = []
                for consumer in self._consumers.values():
                    if (
                        consumer.source_filter is not None
                        and not consumer.source_filter & touched
                    ):
                        consumer.stats.skips += 1
                        self.counters.increment("consumer_skips")
                        continue
                    matching.append(consumer)
                self.counters.increment("patches_applied")
            return self._refresh_consumers(matching, raise_errors)

    def _refresh_consumers(
        self, consumers: Iterable[_Consumer], raise_errors: bool
    ) -> int:
        """Run the refreshes (patch lock held by every caller)."""
        patched = 0
        errors: list[tuple[str, BaseException]] = []
        for consumer in consumers:
            started = self._clock()
            try:
                consumer.refresh()
            except Exception as exc:  # noqa: BLE001 - recorded; re-raised below
                consumer.stats.errors += 1
                consumer.stats.last_error = f"{type(exc).__name__}: {exc}"
                self.counters.increment("refresh_errors")
                errors.append((consumer.name, exc))
            else:
                consumer.stats.patches += 1
                patched += 1
                self.counters.increment("consumers_patched")
            consumer.stats.last_duration_seconds = self._clock() - started
        if errors and raise_errors:
            # Explicit foreground calls get the failure; sync notifications
            # and the background worker record it (see ConsumerStats) and
            # keep serving the other consumers.
            name, exc = errors[0]
            raise ServingError(f"eager refresh of consumer {name!r} failed") from exc
        return patched

    # -- background worker -------------------------------------------------------------

    def start(self) -> None:
        """Launch the daemon worker applying deferred/coalescing patches.

        A no-op in sync mode (patches already run inline) and when the
        worker is already running.  Incompatible with an injected
        ``clock``: the worker sleeps on real Condition timeouts, so a
        simulated clock would never make pending work due — drive such a
        scheduler with :meth:`poll`/:meth:`flush` instead.
        """
        if self._mode is RefreshMode.SYNC:
            return
        if self._clock is not time.monotonic:
            raise ServingError(
                "the background worker needs the real clock; "
                "with an injected clock, drive the scheduler via poll()/flush()"
            )
        with self._intake:
            if self._closed:
                raise ServingError("scheduler is closed")
            if self.running:
                return
            self._thread = threading.Thread(
                target=self._worker, name="eager-refresh-scheduler", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the background worker (pending work stays pending)."""
        with self._intake:
            thread = self._thread
            self._thread = None
            self._wakeup.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    def _worker(self) -> None:
        while True:
            with self._intake:
                if self._thread is not threading.current_thread() or self._closed:
                    return
                if not self._pending_ids:
                    self._wakeup.wait(timeout=0.5)
                    continue
                now = self._clock()
                if not self._due_locked(now):
                    assert self._last_event_at is not None
                    assert self._first_pending_at is not None
                    deadline = min(
                        self._last_event_at + self._debounce_window,
                        self._first_pending_at + self._max_delay,
                    )
                    self._wakeup.wait(timeout=max(0.0, deadline - now))
                    continue
            # Due: patch outside the intake lock so mutating threads are
            # never blocked behind the running refreshes.
            self._apply(raise_errors=False)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe from the corpus and stop the worker (idempotent).

        Pending work is *not* applied: after ``close`` the consumers are
        back to plain lazy refresh, which remains correct.
        """
        with self._intake:
            if self._closed:
                return
            self._closed = True
            self._pending_ids.clear()
            self._wakeup.notify_all()
        self.stop()
        self._corpus.unsubscribe(self._on_change)

    def __enter__(self) -> "EagerRefreshScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
