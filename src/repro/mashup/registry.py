"""Component registry and JSON composition documents.

DashMash persists user-built dashboards as declarative documents listing
components, their parameters, the wiring and the synchronisation groups.
:class:`ComponentRegistry` maps symbolic component type names to factory
callables and rebuilds a :class:`~repro.mashup.composition.Mashup` from such
a document.  Data services and analysis services typically need live
resources (a corpus, a quality model); those are supplied to the registry as
named *resources* that the document refers to by name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from repro.core.domain import TimeInterval
from repro.errors import MashupError, UnknownComponentError
from repro.mashup.analysis import BuzzWordService, SentimentAnalysisService
from repro.mashup.component import Component
from repro.mashup.composition import Mashup
from repro.mashup.data_services import CorpusDataService, SourceDataService
from repro.mashup.filters import (
    CategoryFilter,
    InfluencerFilter,
    LocationFilter,
    QualitySourceFilter,
    TimeWindowFilter,
    UnionMerge,
)
from repro.mashup.viewers import ChartViewer, ListViewer, MapViewer

__all__ = ["ComponentRegistry", "default_registry"]

#: Signature of a component factory: (component_id, params, resources) -> Component.
ComponentFactory = Callable[[str, Mapping[str, Any], Mapping[str, Any]], Component]


class ComponentRegistry:
    """Map component type names to factories and build compositions from JSON."""

    def __init__(self) -> None:
        self._factories: dict[str, ComponentFactory] = {}

    def register(self, type_name: str, factory: ComponentFactory) -> None:
        """Register a factory for ``type_name`` (overwrites an existing one)."""
        if not type_name:
            raise MashupError("type_name must be a non-empty string")
        self._factories[type_name] = factory

    def registered_types(self) -> list[str]:
        """Return the registered component type names."""
        return sorted(self._factories)

    def create(
        self,
        type_name: str,
        component_id: str,
        params: Optional[Mapping[str, Any]] = None,
        resources: Optional[Mapping[str, Any]] = None,
    ) -> Component:
        """Instantiate a component of type ``type_name``."""
        try:
            factory = self._factories[type_name]
        except KeyError as exc:
            raise UnknownComponentError(type_name) from exc
        return factory(component_id, params or {}, resources or {})

    # -- composition documents -----------------------------------------------------------

    def build(
        self,
        document: Mapping[str, Any],
        resources: Optional[Mapping[str, Any]] = None,
    ) -> Mashup:
        """Build a :class:`Mashup` from a composition document.

        The document format is::

            {
              "name": "...",
              "components": [{"id": "...", "type": "...", "params": {...}}, ...],
              "connections": [{"from": "id.port", "to": "id.port"}, ...],
              "sync_links": [{"group": "...", "viewers": ["id", ...]}, ...]
            }
        """
        resources = resources or {}
        mashup = Mashup(name=str(document.get("name", "mashup")))
        for entry in document.get("components", ()):
            component = self.create(
                type_name=entry["type"],
                component_id=entry["id"],
                params=entry.get("params", {}),
                resources=resources,
            )
            mashup.add(component)
        for entry in document.get("connections", ()):
            from_component, from_port = _split_endpoint(entry["from"])
            to_component, to_port = _split_endpoint(entry["to"])
            mashup.connect(from_component, from_port, to_component, to_port)
        for entry in document.get("sync_links", ()):
            mashup.synchronize(entry["group"], entry["viewers"])
        return mashup

    def build_from_json(
        self,
        path: str | Path,
        resources: Optional[Mapping[str, Any]] = None,
    ) -> Mashup:
        """Build a composition from a JSON file on disk."""
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        return self.build(document, resources)


def _split_endpoint(endpoint: str) -> tuple[str, str]:
    """Split ``"component.port"`` into its two parts."""
    component, separator, port = endpoint.partition(".")
    if not separator or not component or not port:
        raise MashupError(
            f"invalid connection endpoint {endpoint!r}; expected 'component.port'"
        )
    return component, port


def _resource(resources: Mapping[str, Any], name: str, kind: str) -> Any:
    try:
        return resources[name]
    except KeyError as exc:
        raise MashupError(
            f"composition document references missing {kind} resource {name!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Default factories
# ---------------------------------------------------------------------------

def _source_data_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    source = _resource(resources, params["source"], "source")
    return SourceDataService(component_id, source)


def _corpus_data_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    corpus = _resource(resources, params["corpus"], "corpus")
    source_ids = params.get("source_ids")
    return CorpusDataService(
        component_id,
        corpus,
        source_ids=tuple(source_ids) if source_ids else None,
    )


def _category_filter_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return CategoryFilter(component_id, categories=params["categories"])


def _time_filter_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    interval = TimeInterval(start=float(params["start"]), end=float(params["end"]))
    return TimeWindowFilter(component_id, interval=interval)


def _location_filter_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return LocationFilter(
        component_id,
        locations=params["locations"],
        keep_untagged=bool(params.get("keep_untagged", False)),
    )


def _influencer_filter_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    if "influencer_ids" in params:
        return InfluencerFilter(component_id, influencer_ids=params["influencer_ids"])
    detector = _resource(resources, params["detector"], "influencer detector")
    source = _resource(resources, params["source"], "source")
    return InfluencerFilter(
        component_id, detector=detector, source=source, top=params.get("top")
    )


def _quality_filter_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    weights = params.get("quality_weights")
    if weights is None:
        weights = _resource(resources, params["weights_resource"], "quality weights")
    return QualitySourceFilter(
        component_id,
        quality_weights=weights,
        minimum_quality=float(params.get("minimum_quality", 0.0)),
    )


def _union_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return UnionMerge(component_id)


def _sentiment_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    analyzer = resources.get(params.get("analyzer", "sentiment_analyzer"))
    return SentimentAnalysisService(component_id, analyzer=analyzer)


def _buzzword_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return BuzzWordService(component_id, top=int(params.get("top", 10)))


def _list_viewer_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return ListViewer(
        component_id,
        title=params.get("title", ""),
        max_rows=int(params.get("max_rows", 50)),
    )


def _map_viewer_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return MapViewer(component_id, title=params.get("title", ""))


def _chart_viewer_factory(
    component_id: str, params: Mapping[str, Any], resources: Mapping[str, Any]
) -> Component:
    return ChartViewer(component_id, title=params.get("title", ""))


def default_registry() -> ComponentRegistry:
    """Return a registry pre-populated with every built-in component type."""
    registry = ComponentRegistry()
    registry.register(SourceDataService.TYPE_NAME, _source_data_factory)
    registry.register(CorpusDataService.TYPE_NAME, _corpus_data_factory)
    registry.register(CategoryFilter.TYPE_NAME, _category_filter_factory)
    registry.register(TimeWindowFilter.TYPE_NAME, _time_filter_factory)
    registry.register(LocationFilter.TYPE_NAME, _location_filter_factory)
    registry.register(InfluencerFilter.TYPE_NAME, _influencer_filter_factory)
    registry.register(QualitySourceFilter.TYPE_NAME, _quality_filter_factory)
    registry.register(UnionMerge.TYPE_NAME, _union_factory)
    registry.register(SentimentAnalysisService.TYPE_NAME, _sentiment_factory)
    registry.register(BuzzWordService.TYPE_NAME, _buzzword_factory)
    registry.register(ListViewer.TYPE_NAME, _list_viewer_factory)
    registry.register(MapViewer.TYPE_NAME, _map_viewer_factory)
    registry.register(ChartViewer.TYPE_NAME, _chart_viewer_factory)
    return registry
