"""Statistics substrate.

The paper's validation relies on four families of statistical tools: rank
correlation and rank-distance statistics (Section 4.1), descriptive
statistics and correlation analysis, factor analysis via principal
components with linear regressions against the search ranking (Table 3),
and one-way ANOVA with Bonferroni post-hoc paired comparisons (Table 4).

They are implemented here on top of numpy/scipy primitives, with small
dataclasses capturing exactly the outputs the paper reports (tau values,
component loadings, regression direction and significance, paired mean
differences and their significance).
"""

from repro.stats.ranking import (
    RankingComparison,
    compare_rankings,
    displacement_statistics,
    kendall_tau,
    rank_displacements,
    spearman_rho,
)
from repro.stats.descriptive import (
    correlation_matrix,
    describe,
    DescriptiveSummary,
    pearson_correlation,
    standardize,
)
from repro.stats.regression import LinearRegressionResult, linear_regression
from repro.stats.factor import FactorAnalysisResult, factor_analysis, varimax_rotation
from repro.stats.anova import (
    AnovaResult,
    BonferroniComparison,
    bonferroni_pairwise,
    one_way_anova,
)

__all__ = [
    "AnovaResult",
    "BonferroniComparison",
    "DescriptiveSummary",
    "FactorAnalysisResult",
    "LinearRegressionResult",
    "RankingComparison",
    "bonferroni_pairwise",
    "compare_rankings",
    "correlation_matrix",
    "describe",
    "displacement_statistics",
    "factor_analysis",
    "kendall_tau",
    "linear_regression",
    "one_way_anova",
    "pearson_correlation",
    "rank_displacements",
    "spearman_rho",
    "standardize",
    "varimax_rotation",
]
