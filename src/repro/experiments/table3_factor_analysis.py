"""Experiment E4 — Table 3: componentisation of the quality measures.

The paper reduces the domain-independent measures of Table 1 to three
component indicators (traffic, participation, time) through a principal-
component factor analysis, then regresses each component against the Google
rank: traffic is positively related (sig < 0.001), participation negatively
(sig < 0.010) and time negatively (sig < 0.050).

The reproduction follows the same pipeline on the ranking-study corpus:

1. compute the Table 3 measures for every site that appears in at least one
   query's top-20 (the population the paper analysed);
2. orient every measure so that larger values mean "more of the underlying
   construct" (traffic rank and bounce rate are inverted) and compress the
   heavy-tailed counts with ``log1p``;
3. run the factor analysis with three components and label each component
   by the measures it aggregates;
4. regress the site's search-rank goodness (negated average result
   position) on each component score — one simple regression per component,
   as in the paper — and report direction and significance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.domain import DomainOfInterest
from repro.core.source_quality import SourceQualityModel
from repro.datasets.google_study import GoogleStudyDataset, GoogleStudySpec, build_google_study
from repro.errors import InsufficientDataError
from repro.experiments.reporting import format_markdown_table
from repro.stats.factor import FactorAnalysisResult, factor_analysis
from repro.stats.regression import LinearRegressionResult, linear_regression

__all__ = ["Table3Spec", "ComponentRelation", "Table3Result", "run_table3"]

#: The Table 3 measures, grouped by the component the paper assigns them to.
TABLE3_MEASURE_GROUPS: dict[str, tuple[str, ...]] = {
    "traffic": (
        "traffic_rank",
        "daily_visitors",
        "daily_page_views",
        "inbound_links",
        "open_discussions_vs_largest",
    ),
    "participation": (
        "new_discussions_per_day",
        "comments_per_discussion",
        "comments_per_discussion_per_day",
    ),
    "time": (
        "bounce_rate",
        "time_on_site",
    ),
}

#: Measures whose raw direction is "lower is better"; they are inverted
#: before the factor analysis so that every column points the same way.
_INVERTED_MEASURES: frozenset[str] = frozenset({"traffic_rank", "bounce_rate"})

#: Measures spanning several orders of magnitude, compressed with log1p.
_LOG_MEASURES: frozenset[str] = frozenset(
    {"traffic_rank", "daily_visitors", "daily_page_views", "inbound_links"}
)

#: Anchor measure used to label each extracted component.
_COMPONENT_ANCHORS: dict[str, str] = {
    "daily_visitors": "traffic",
    "comments_per_discussion": "participation",
    "time_on_site": "time",
}


@dataclass(frozen=True)
class Table3Spec:
    """Configuration of the factor-analysis experiment."""

    study: GoogleStudySpec = GoogleStudySpec()
    component_count: int = 3
    rotate: bool = True


@dataclass(frozen=True)
class ComponentRelation:
    """Relation of one component with the search rank (one Table 3 row group)."""

    component: str
    measures: tuple[str, ...]
    coefficient: float
    p_value: float

    @property
    def direction(self) -> str:
        """``"positive"`` or ``"negative"``."""
        return "positive" if self.coefficient >= 0 else "negative"

    @property
    def significance(self) -> str:
        """Paper-style significance bucket."""
        if self.p_value < 0.001:
            return "sig < 0.001"
        if self.p_value < 0.01:
            return "sig < 0.010"
        if self.p_value < 0.05:
            return "sig < 0.050"
        return "not significant"


@dataclass
class Table3Result:
    """Result of the componentisation experiment."""

    site_count: int
    measure_assignments: dict[str, str] = field(default_factory=dict)
    relations: list[ComponentRelation] = field(default_factory=list)
    factor_result: Optional[FactorAnalysisResult] = None
    regression: Optional[LinearRegressionResult] = None

    def relation(self, component: str) -> ComponentRelation:
        """Return the relation entry of ``component``."""
        for entry in self.relations:
            if entry.component == component:
                return entry
        raise KeyError(component)

    def assignment_purity(self) -> float:
        """Fraction of measures assigned to the component the paper assigns them to."""
        expected: dict[str, str] = {}
        for component, measures in TABLE3_MEASURE_GROUPS.items():
            for name in measures:
                expected[name] = component
        if not self.measure_assignments:
            return 0.0
        matches = sum(
            1
            for name, component in self.measure_assignments.items()
            if expected.get(name) == component
        )
        return matches / len(self.measure_assignments)

    def to_markdown(self) -> str:
        """Render the Table 3 reproduction as markdown."""
        assignment_rows = [
            (measure, component)
            for measure, component in sorted(self.measure_assignments.items())
        ]
        assignments = format_markdown_table(
            ("Measure", "Identified component"), assignment_rows
        )
        relation_rows = [
            (
                entry.component,
                ", ".join(entry.measures),
                entry.direction,
                entry.significance,
            )
            for entry in self.relations
        ]
        relations = format_markdown_table(
            ("Component", "Measures", "Relation with search rank", "Significance"),
            relation_rows,
        )
        return assignments + "\n\n" + relations

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "site_count": self.site_count,
            "measure_assignments": dict(self.measure_assignments),
            "relations": [
                {
                    "component": entry.component,
                    "measures": list(entry.measures),
                    "coefficient": entry.coefficient,
                    "p_value": entry.p_value,
                    "direction": entry.direction,
                    "significance": entry.significance,
                }
                for entry in self.relations
            ],
        }


def _oriented_value(name: str, value: float) -> float:
    """Orient and compress one raw measure value for the factor analysis."""
    transformed = math.log1p(max(0.0, value)) if name in _LOG_MEASURES else value
    return -transformed if name in _INVERTED_MEASURES else transformed


def _search_goodness(dataset: GoogleStudyDataset) -> dict[str, float]:
    """Per-site search-rank goodness: negated average result position."""
    positions: dict[str, list[int]] = {}
    for query in dataset.workload:
        results = dataset.engine.search(query.text, limit=dataset.spec.results_per_query)
        for result in results:
            positions.setdefault(result.source_id, []).append(result.rank)
    return {
        source_id: -sum(values) / len(values) for source_id, values in positions.items()
    }


def run_table3(
    spec: Optional[Table3Spec] = None,
    dataset: Optional[GoogleStudyDataset] = None,
) -> Table3Result:
    """Run the Table 3 componentisation and regression experiment."""
    spec = spec or Table3Spec()
    dataset = dataset or build_google_study(spec.study)

    goodness = _search_goodness(dataset)
    if len(goodness) < 20:
        raise InsufficientDataError(
            "too few sites appear in the search results to run the factor analysis"
        )
    site_ids = sorted(goodness)

    measure_names = [
        name for group in TABLE3_MEASURE_GROUPS.values() for name in group
    ]
    domain = DomainOfInterest(categories=dataset.spec.categories, name="table3-domain")
    model = SourceQualityModel(
        domain, alexa=dataset.alexa, feedburner=dataset.feedburner
    )
    raw_vectors = model.raw_measures(dataset.corpus)

    columns: dict[str, list[float]] = {name: [] for name in measure_names}
    response: list[float] = []
    for source_id in site_ids:
        vector = raw_vectors[source_id]
        for name in measure_names:
            columns[name].append(_oriented_value(name, vector[name]))
        response.append(goodness[source_id])

    factors = factor_analysis(
        columns, component_count=spec.component_count, rotate=spec.rotate
    )

    # Label the components through the anchor measures; unanchored components
    # keep a generic name.
    component_labels: dict[int, str] = {}
    for anchor, label in _COMPONENT_ANCHORS.items():
        component_labels.setdefault(factors.assignments[anchor], label)
    for index in range(factors.component_count):
        component_labels.setdefault(index, f"component-{index}")

    measure_assignments = {
        name: component_labels[factors.assignments[name]] for name in measure_names
    }

    # Orient every component score so that it grows with its own measures
    # (principal-component signs are otherwise arbitrary).
    score_columns: dict[str, list[float]] = {}
    for index in range(factors.component_count):
        label = component_labels[index]
        loadings_sum = sum(
            factors.loading(name, index)
            for name, assigned in factors.assignments.items()
            if assigned == index
        )
        orientation = -1.0 if loadings_sum < 0 else 1.0
        score_columns[label] = [
            orientation * value for value in factors.component_score_column(index)
        ]

    # One simple regression per component, as the paper does ("we then
    # analysed the relations between each component and the Google search
    # ranking" through linear regressions).
    relations = []
    last_regression: Optional[LinearRegressionResult] = None
    for label in score_columns:
        regression = linear_regression(
            [score_columns[label]], response, predictor_names=[label]
        )
        last_regression = regression
        measures = tuple(
            sorted(name for name, assigned in measure_assignments.items() if assigned == label)
        )
        relations.append(
            ComponentRelation(
                component=label,
                measures=measures,
                coefficient=regression.coefficient(label),
                p_value=regression.p_value(label),
            )
        )

    return Table3Result(
        site_count=len(site_ids),
        measure_assignments=measure_assignments,
        relations=relations,
        factor_result=factors,
        regression=last_regression,
    )
