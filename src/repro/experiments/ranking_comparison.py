"""Experiment E3 — Section 4.1: quality ranking vs. search-engine ranking.

For every query of the workload the search engine returns its top-20 blogs
and forums; the same 20 sites are re-ranked with the quality model (using a
Domain of Interest centred on the query's category) and the two orderings
are compared.  The experiment reports the statistics of Section 4.1:

* the Kendall tau between each single Table 1 measure and the search rank
  (pooled over every query/site observation);
* the average and variance of the per-site rank displacement;
* the fraction of sites displaced by more than 5 and more than 10
  positions, and the fraction of coincident positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.domain import DomainOfInterest
from repro.core.measures import source_measure_registry
from repro.core.source_quality import SourceQualityModel
from repro.datasets.google_study import GoogleStudyDataset, GoogleStudySpec, build_google_study
from repro.errors import InsufficientDataError
from repro.experiments.reporting import format_markdown_table
from repro.sources.corpus import SourceCorpus
from repro.stats.ranking import (
    displacement_statistics,
    kendall_tau,
    rank_displacements,
)

__all__ = ["RankingStudySpec", "QueryOutcome", "RankingStudyResult", "run_ranking_comparison"]


@dataclass(frozen=True)
class RankingStudySpec:
    """Configuration of the ranking-comparison experiment."""

    study: GoogleStudySpec = GoogleStudySpec()
    domain_independent_only: bool = False
    minimum_results_per_query: int = 5

    @classmethod
    def paper_scale(cls) -> "RankingStudySpec":
        """Spec matching the paper's reported scale."""
        return cls(study=GoogleStudySpec.paper_scale())


@dataclass(frozen=True)
class QueryOutcome:
    """Per-query outcome: the two rankings and the per-site displacements."""

    query_id: str
    query_text: str
    category: str
    search_ranking: tuple[str, ...]
    quality_ranking: tuple[str, ...]
    displacements: tuple[int, ...]


@dataclass
class RankingStudyResult:
    """Aggregated result of the ranking-comparison experiment."""

    query_count: int
    evaluated_queries: int
    total_result_slots: int
    average_displacement: float
    displacement_variance: float
    fraction_displaced_over_5: float
    fraction_displaced_over_10: float
    fraction_coincident: float
    per_measure_tau: dict[str, float] = field(default_factory=dict)
    outcomes: list[QueryOutcome] = field(default_factory=list)

    def max_abs_tau(self) -> float:
        """Largest absolute per-measure Kendall tau."""
        if not self.per_measure_tau:
            return 0.0
        return max(abs(value) for value in self.per_measure_tau.values())

    def to_markdown(self) -> str:
        """Render the Section 4.1 statistics plus the per-measure taus."""
        summary = format_markdown_table(
            ("Statistic", "Value"),
            [
                ("queries evaluated", self.evaluated_queries),
                ("result slots analysed", self.total_result_slots),
                ("average rank displacement", self.average_displacement),
                ("displacement variance", self.displacement_variance),
                ("fraction displaced > 5", self.fraction_displaced_over_5),
                ("fraction displaced > 10", self.fraction_displaced_over_10),
                ("fraction coincident", self.fraction_coincident),
            ],
        )
        taus = format_markdown_table(
            ("Measure", "Kendall tau vs search rank"),
            sorted(self.per_measure_tau.items()),
        )
        return summary + "\n\n" + taus

    def to_dict(self) -> dict[str, Any]:
        """Serialise the aggregate statistics (per-query outcomes excluded)."""
        return {
            "query_count": self.query_count,
            "evaluated_queries": self.evaluated_queries,
            "total_result_slots": self.total_result_slots,
            "average_displacement": self.average_displacement,
            "displacement_variance": self.displacement_variance,
            "fraction_displaced_over_5": self.fraction_displaced_over_5,
            "fraction_displaced_over_10": self.fraction_displaced_over_10,
            "fraction_coincident": self.fraction_coincident,
            "per_measure_tau": dict(self.per_measure_tau),
        }


def run_ranking_comparison(
    spec: Optional[RankingStudySpec] = None,
    dataset: Optional[GoogleStudyDataset] = None,
) -> RankingStudyResult:
    """Run the Section 4.1 experiment.

    ``dataset`` can be supplied to reuse an already-built corpus (the
    benchmarks do this to keep dataset construction out of the timed
    region); otherwise it is built from ``spec.study``.
    """
    spec = spec or RankingStudySpec()
    dataset = dataset or build_google_study(spec.study)

    registry = source_measure_registry()
    measure_names = [
        definition.name
        for definition in (
            registry.domain_independent()
            if spec.domain_independent_only
            else list(registry)
        )
    ]

    all_displacements: list[int] = []
    outcomes: list[QueryOutcome] = []
    measure_observations: dict[str, list[float]] = {name: [] for name in measure_names}
    search_positions: list[float] = []
    evaluated = 0

    for query in dataset.workload:
        results = dataset.engine.search(
            query.text, limit=dataset.spec.results_per_query
        )
        if len(results) < spec.minimum_results_per_query:
            continue
        evaluated += 1
        search_ids = [result.source_id for result in results]
        sub_corpus = SourceCorpus(dataset.corpus.get(source_id) for source_id in search_ids)

        domain = DomainOfInterest(categories=(query.category,), name=f"query-{query.query_id}")
        model = SourceQualityModel(
            domain,
            alexa=dataset.alexa,
            feedburner=dataset.feedburner,
            domain_independent_only=spec.domain_independent_only,
        )
        quality_ids = model.ranking_ids(sub_corpus)

        displacements = rank_displacements(search_ids, quality_ids)
        per_site = [displacements[source_id] for source_id in search_ids]
        all_displacements.extend(per_site)
        outcomes.append(
            QueryOutcome(
                query_id=query.query_id,
                query_text=query.text,
                category=query.category,
                search_ranking=tuple(search_ids),
                quality_ranking=tuple(quality_ids),
                displacements=tuple(per_site),
            )
        )

        # Pooled per-measure observations against the search position.
        raw_vectors = model.raw_measures(sub_corpus)
        for position, source_id in enumerate(search_ids, start=1):
            vector = raw_vectors[source_id]
            search_positions.append(float(position))
            for name in measure_names:
                measure_observations[name].append(vector.get(name, 0.0))

    if not all_displacements:
        raise InsufficientDataError(
            "no query returned enough results; enlarge the corpus or the workload"
        )

    stats = displacement_statistics(all_displacements)
    per_measure_tau = {}
    for name, values in measure_observations.items():
        if len(values) >= 2:
            # Positive tau = the measure improves with a better (smaller)
            # search position; we flip the sign of the position so that the
            # sign convention matches "correlation with rank goodness".
            per_measure_tau[name] = kendall_tau(
                values, [-position for position in search_positions]
            )

    return RankingStudyResult(
        query_count=len(dataset.workload),
        evaluated_queries=evaluated,
        total_result_slots=stats.item_count,
        average_displacement=stats.average_displacement,
        displacement_variance=stats.displacement_variance,
        fraction_displaced_over_5=stats.fraction_displaced_over_5,
        fraction_displaced_over_10=stats.fraction_displaced_over_10,
        fraction_coincident=stats.fraction_coincident,
        per_measure_tau=per_measure_tau,
        outcomes=outcomes,
    )
