"""Quality-driven filtering, ranking and influencer detection.

Section 5 of the paper derives three families of analysis services from the
quality model: quality-based selection of the most relevant contents,
simple filter operations (category, freshness, breadth), and content-based
analysis.  This module implements the selection/filter layer over the
assessments produced by the quality models; the mashup components in
:mod:`repro.mashup` wrap these primitives as composable services.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.contributor_quality import ContributorAssessment, ContributorQualityModel
from repro.core.dimensions import QualityAttribute, QualityDimension
from repro.core.domain import DomainOfInterest
from repro.core.source_quality import SourceAssessment, SourceQualityModel
from repro.errors import AssessmentError
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Source

__all__ = ["RankedSource", "QualityRanker", "QualityFilter", "InfluencerDetector"]


@dataclass(frozen=True)
class RankedSource:
    """One entry of a quality ranking."""

    rank: int
    source_id: str
    overall: float

    def to_dict(self) -> dict[str, float | int | str]:
        """Serialise to a JSON-compatible dictionary."""
        return {"rank": self.rank, "source_id": self.source_id, "overall": self.overall}


class QualityRanker:
    """Rank and select sources based on their quality assessment."""

    def __init__(self, model: SourceQualityModel) -> None:
        self._model = model

    @property
    def model(self) -> SourceQualityModel:
        """The underlying source quality model."""
        return self._model

    def rank(self, corpus: SourceCorpus) -> list[RankedSource]:
        """Return the corpus ranked by decreasing overall quality."""
        assessments = self._model.rank(corpus)
        return [
            RankedSource(rank=index + 1, source_id=item.source_id, overall=item.overall)
            for index, item in enumerate(assessments)
        ]

    def top_sources(self, corpus: SourceCorpus, count: int) -> list[str]:
        """Identifiers of the ``count`` best sources."""
        if count < 0:
            raise AssessmentError("count must be non-negative")
        return [entry.source_id for entry in self.rank(corpus)[:count]]

    def select(
        self,
        corpus: SourceCorpus,
        minimum_overall: float = 0.0,
        minimum_dimension: Optional[dict[QualityDimension, float]] = None,
        minimum_attribute: Optional[dict[QualityAttribute, float]] = None,
    ) -> list[SourceAssessment]:
        """Select the sources meeting every quality threshold."""
        assessments = self._model.assess_corpus(corpus)
        selected: list[SourceAssessment] = []
        for assessment in assessments.values():
            if assessment.overall < minimum_overall:
                continue
            if minimum_dimension and any(
                assessment.score.dimension(dimension) < threshold
                for dimension, threshold in minimum_dimension.items()
            ):
                continue
            if minimum_attribute and any(
                assessment.score.attribute(attribute) < threshold
                for attribute, threshold in minimum_attribute.items()
            ):
                continue
            selected.append(assessment)
        return sorted(selected, key=lambda item: (-item.overall, item.source_id))


class QualityFilter:
    """Simple content filters over sources (the paper's "filter operations")."""

    def __init__(self, domain: DomainOfInterest) -> None:
        self._domain = domain

    @property
    def domain(self) -> DomainOfInterest:
        """The Domain of Interest filters are evaluated against."""
        return self._domain

    def by_category(self, corpus: SourceCorpus, category: str) -> SourceCorpus:
        """Keep the sources with at least one discussion in ``category``."""
        return corpus.covering_category(category)

    def by_freshness(
        self, corpus: SourceCorpus, max_average_thread_age: float
    ) -> SourceCorpus:
        """Keep the sources whose average thread age is below the threshold."""
        from repro.sources.crawler import Crawler

        crawler = Crawler()
        fresh_ids = {
            source.source_id
            for source in corpus
            if crawler.crawl_source(source).average_thread_age <= max_average_thread_age
        }
        return corpus.filter(lambda source: source.source_id in fresh_ids)

    def by_breadth(self, corpus: SourceCorpus, minimum_categories: int) -> SourceCorpus:
        """Keep the sources covering at least ``minimum_categories`` DI categories."""
        return corpus.filter(
            lambda source: len(
                self._domain.category_overlap(source.covered_categories())
            )
            >= minimum_categories
        )

    def by_predicate(
        self, corpus: SourceCorpus, predicate: Callable[[Source], bool]
    ) -> SourceCorpus:
        """Keep the sources matching an arbitrary predicate."""
        return corpus.filter(predicate)


class InfluencerDetector:
    """Detect influential contributors by combining absolute and relative scores.

    The spam-resistance argument of the paper is encoded in
    ``minimum_relative``: a user with huge absolute activity but negligible
    per-contribution response (the typical bot/spammer signature) does not
    qualify as an influencer regardless of volume.
    """

    def __init__(
        self,
        model: ContributorQualityModel,
        absolute_weight: float = 0.5,
        minimum_relative: float = 0.05,
    ) -> None:
        if not 0.0 <= absolute_weight <= 1.0:
            raise AssessmentError("absolute_weight must be in [0, 1]")
        if minimum_relative < 0.0:
            raise AssessmentError("minimum_relative must be non-negative")
        self._model = model
        self._absolute_weight = absolute_weight
        self._minimum_relative = minimum_relative

    @property
    def model(self) -> ContributorQualityModel:
        """The underlying contributor quality model."""
        return self._model

    def score(self, assessment: ContributorAssessment) -> float:
        """Influencer score of one assessed contributor."""
        return assessment.influencer_score(self._absolute_weight)

    def detect(
        self,
        source: Source,
        user_ids: Optional[Iterable[str]] = None,
        top: Optional[int] = None,
        minimum_score: float = 0.0,
    ) -> list[ContributorAssessment]:
        """Return the influencers of ``source``, best first."""
        assessments = self._model.assess_source(source, user_ids)
        qualified = [
            assessment
            for assessment in assessments.values()
            if assessment.relative_efficiency >= self._minimum_relative
            and self.score(assessment) >= minimum_score
        ]
        qualified.sort(key=lambda item: (-self.score(item), item.user_id))
        if top is not None:
            qualified = qualified[: max(0, top)]
        return qualified

    def influencer_ids(
        self, source: Source, top: Optional[int] = None
    ) -> list[str]:
        """Identifiers of the detected influencers, best first."""
        return [assessment.user_id for assessment in self.detect(source, top=top)]
