#!/usr/bin/env python
"""Perf benchmark harness: batched assessment + indexed search vs naive baselines.

Times four workloads and writes the trajectory to ``BENCH_perf.json``
in the repository root.  The search/rank/sentiment sections run at the
same 240-source / 60-query spec the table benchmarks use; the assessment
section runs at the 10k-source tier the columnar core targets:

* **corpus_assessment** — the assessment core (normaliser fit →
  normalisation → scoring → ranking) over a seeded 10 000-source corpus's
  measured matrix: the columnar float64 kernels
  (:mod:`repro.core.columnar`) versus the preserved scalar batched
  pipeline (``fit``/``normalize_many``/``build_quality_scores``).  Both
  sides share one precomputed raw-measure matrix, so the comparison
  isolates exactly the math the columnar refactor vectorised — crawling
  and measuring are identical Python in both and would only dilute it;
* **repeated_rank** — N ``rank()`` calls over an unchanged corpus: the
  fingerprint-keyed context cache versus full recomputation per call;
* **search_throughput** — the full query workload through the inverted-
  index hot path versus :meth:`SearchEngine.search_fullscan`, in
  queries/second;
* **sentiment_aggregation** — repeated sentiment indicators over the Milan
  corpus with and without the analyser's per-text memo.

Every section first asserts that the optimised path returns exactly the
same rankings as its baseline, so a regression can never produce a
"speedup" by computing the wrong thing.  Run with ``make perf`` or::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py

The harness exits non-zero if ``BENCH_perf.json`` cannot be written.
"""

from __future__ import annotations

import argparse
import platform
import sys
from pathlib import Path

from repro.core.columnar import (
    SortedRankKeys,
    columns_from_vectors,
    ensure_finite_columns,
)
from repro.core.domain import DomainOfInterest, TimeInterval
from repro.core.normalization import collect_reference_values
from repro.core.scoring import build_quality_score_columns, build_quality_scores
from repro.core.source_quality import SourceQualityModel
from repro.datasets.google_study import GoogleStudySpec, build_google_study
from repro.datasets.milan_tourism import MilanTourismSpec, build_milan_tourism
from repro.perf.buildinfo import git_build_stamp
from repro.perf.reference import naive_rank
from repro.perf.timers import time_call
from repro.persistence.format import atomic_write_json
from repro.sentiment.analyzer import SentimentAnalyzer
from repro.sentiment.indicators import SentimentIndicatorService
from repro.sources.generators import CorpusGenerator, CorpusSpec

#: Mirrors BENCH_STUDY_SPEC in benchmarks/conftest.py (kept in sync by hand:
#: this script must run without pytest).
BENCH_STUDY_SPEC = GoogleStudySpec(source_count=240, query_count=60)

#: The 10k-source tier the columnar assessment core targets (seeded, so the
#: measured matrix — and therefore the timed work — is reproducible).
ASSESSMENT_TIER = CorpusSpec(
    source_count=10_000, seed=31, discussion_budget=4, user_budget=6
)

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Speedup targets recorded in the JSON so future PRs see the goalposts.
TARGET_ASSESSMENT_SPEEDUP = 10.0
TARGET_REPEATED_RANK_SPEEDUP = 5.0
TARGET_SEARCH_SPEEDUP = 3.0


def _speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    if optimized_seconds <= 0:
        return float("inf")
    return baseline_seconds / optimized_seconds


def _fresh_model(dataset) -> SourceQualityModel:
    """A quality model wired to the dataset's panels (like the E3 experiment)."""
    return SourceQualityModel(
        dataset.domain, alexa=dataset.alexa, feedburner=dataset.feedburner
    )


def bench_corpus_assessment(source_count: int, repetitions: int = 3) -> dict:
    """Columnar assessment kernels vs the scalar batched pipeline at 10k tier.

    One seeded corpus is measured once (through the model's ordinary
    batched pass) and the resulting raw-measure matrix is shared by both
    sides; each timed call then runs the complete assessment core — fit,
    normalise, score, rank — from that matrix.  Bit-identity of the
    ranking order and of every overall score is asserted before the
    timing counts (exact float equality, no tolerance).
    """
    spec = CorpusSpec(
        source_count=source_count,
        seed=ASSESSMENT_TIER.seed,
        discussion_budget=ASSESSMENT_TIER.discussion_budget,
        user_budget=ASSESSMENT_TIER.user_budget,
    )
    corpus = CorpusGenerator(spec).generate()
    domain = DomainOfInterest(
        categories=("travel", "food"),
        time_interval=TimeInterval(0.0, 365.0),
        name="bench-assessment-tier",
    )
    raw_vectors = SourceQualityModel(domain).assessment_context(corpus).raw_vectors

    scalar_model = SourceQualityModel(domain)

    def run_scalar():
        normalizer = scalar_model._normalizer
        normalizer.fit(collect_reference_values(raw_vectors.values()))
        normalized = normalizer.normalize_many(raw_vectors)
        scores = build_quality_scores(
            raw_vectors,
            normalized,
            registry=scalar_model.registry,
            scheme=scalar_model.scheme,
        )
        ranking = sorted(
            scores.values(), key=lambda score: (-score.overall, score.subject_id)
        )
        return [score.subject_id for score in ranking], scores

    columnar_model = SourceQualityModel(domain)

    def run_columnar():
        normalizer = columnar_model._normalizer
        names, _ = columnar_model.registry.column_layout()
        subject_ids, measures, raw_columns = columns_from_vectors(raw_vectors, names)
        ensure_finite_columns(raw_columns)
        normalizer.fit_columns(raw_columns)
        normalized = normalizer.normalize_columns(raw_columns)
        overall, _dims, _attrs = build_quality_score_columns(
            subject_ids, measures, normalized, columnar_model.registry,
            columnar_model.scheme,
        )
        rank = SortedRankKeys.from_scores(overall, subject_ids)
        return list(rank.order()), dict(zip(subject_ids, overall.tolist()))

    scalar = time_call(run_scalar, repetitions=repetitions, label="scalar_core")
    columnar = time_call(run_columnar, repetitions=repetitions, label="columnar_core")

    scalar_order, scalar_scores = scalar.last_result
    columnar_order, columnar_overall = columnar.last_result
    _assert_same_ranking(scalar_order, columnar_order, "corpus_assessment")
    for subject_id, overall in columnar_overall.items():
        if scalar_scores[subject_id].overall != overall:
            raise AssertionError(
                f"corpus_assessment: overall diverged for {subject_id!r}"
            )
    return {
        "baseline_seconds": scalar.total_seconds,
        "optimized_seconds": columnar.total_seconds,
        "repetitions": repetitions,
        "speedup": _speedup(scalar.total_seconds, columnar.total_seconds),
        "target_speedup": TARGET_ASSESSMENT_SPEEDUP,
        "sources": len(corpus),
    }


def bench_repeated_rank(dataset, repetitions: int) -> dict:
    """N rank() calls over an unchanged corpus: context cache vs recompute."""
    naive_model = _fresh_model(dataset)
    cached_model = _fresh_model(dataset)

    naive = time_call(
        lambda: naive_rank(naive_model, dataset.corpus),
        repetitions=repetitions,
        label="naive_rank",
    )
    cached = time_call(
        lambda: cached_model.rank(dataset.corpus),
        repetitions=repetitions,
        label="cached_rank",
    )
    _assert_same_ranking(
        [a.source_id for a in naive.last_result],
        [a.source_id for a in cached.last_result],
        "repeated_rank",
    )
    return {
        "repetitions": repetitions,
        "baseline_seconds": naive.total_seconds,
        "optimized_seconds": cached.total_seconds,
        "optimized_first_call_seconds": cached.per_call_seconds[0],
        "optimized_cached_call_seconds": (
            min(cached.per_call_seconds[1:]) if repetitions > 1 else None
        ),
        "speedup": _speedup(naive.total_seconds, cached.total_seconds),
        "target_speedup": TARGET_REPEATED_RANK_SPEEDUP,
        "context_cache_hits": cached_model.counters.get("context_hits"),
    }


def bench_search_throughput(dataset, rounds: int) -> dict:
    """The 60-query workload: inverted-index hot path vs full scan."""
    engine = dataset.engine
    queries = [query.text for query in dataset.workload]
    limit = dataset.spec.results_per_query

    for text in queries:  # equivalence guard before timing
        _assert_same_ranking(
            [r.source_id for r in engine.search_fullscan(text, limit)],
            [r.source_id for r in engine.search(text, limit)],
            f"search({text!r})",
        )

    def run_fullscan():
        for text in queries:
            engine.search_fullscan(text, limit)

    def run_indexed():
        for text in queries:
            engine.search(text, limit)

    engine.invalidate_caches()
    fullscan = time_call(run_fullscan, repetitions=rounds, label="search_fullscan")
    engine.invalidate_caches()
    # First indexed round runs cold (postings-driven scoring); later rounds
    # hit the result cache, as repeated queries do in a real workload.
    indexed = time_call(run_indexed, repetitions=rounds, label="search_indexed")
    total_queries = len(queries) * rounds
    cold_round_seconds = indexed.per_call_seconds[0]
    return {
        "queries": len(queries),
        "rounds": rounds,
        "baseline_seconds": fullscan.total_seconds,
        "optimized_seconds": indexed.total_seconds,
        "baseline_qps": total_queries / fullscan.total_seconds,
        "optimized_qps": total_queries / indexed.total_seconds,
        "speedup": _speedup(fullscan.total_seconds, indexed.total_seconds),
        "cold_round_seconds": cold_round_seconds,
        "cold_round_speedup": _speedup(
            fullscan.total_seconds / rounds, cold_round_seconds
        ),
        "target_speedup": TARGET_SEARCH_SPEEDUP,
        "candidates_scored": engine.counters.get("candidates_scored"),
        "result_cache_hits": engine.counters.get("result_cache_hits"),
    }


def bench_sentiment(repetitions: int) -> dict:
    """Repeated sentiment indicators over the Milan corpus, memo on vs off."""
    dataset = build_milan_tourism(MilanTourismSpec())
    domain = DomainOfInterest(categories=dataset.spec.categories, name="milan")

    uncached_service = SentimentIndicatorService(
        analyzer=SentimentAnalyzer(cache_size=0), domain=domain
    )
    cached_service = SentimentIndicatorService(
        analyzer=SentimentAnalyzer(), domain=domain
    )

    uncached = time_call(
        lambda: uncached_service.indicator(dataset.corpus),
        repetitions=repetitions,
        label="sentiment_uncached",
    )
    cached = time_call(
        lambda: cached_service.indicator(dataset.corpus),
        repetitions=repetitions,
        label="sentiment_cached",
    )
    if abs(uncached.last_result.overall_polarity - cached.last_result.overall_polarity) > 1e-12:
        raise AssertionError("sentiment memo changed the overall indicator")
    return {
        "repetitions": repetitions,
        "baseline_seconds": uncached.total_seconds,
        "optimized_seconds": cached.total_seconds,
        "speedup": _speedup(uncached.total_seconds, cached.total_seconds),
        "cache_stats": cached_service.analyzer.cache_stats,
    }


def _assert_same_ranking(expected: list, actual: list, label: str) -> None:
    if expected != actual:
        raise AssertionError(
            f"{label}: optimised path diverged from the baseline ranking"
        )


def run(
    output_path: Path,
    rank_repetitions: int,
    search_rounds: int,
    assessment_sources: int,
) -> dict:
    """Run every section and return the report dictionary."""
    print(f"building bench dataset ({BENCH_STUDY_SPEC.source_count} sources, "
          f"{BENCH_STUDY_SPEC.query_count} queries)...", flush=True)
    dataset = build_google_study(BENCH_STUDY_SPEC)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            **git_build_stamp(),
            "spec": {
                "source_count": BENCH_STUDY_SPEC.source_count,
                "query_count": BENCH_STUDY_SPEC.query_count,
                "results_per_query": BENCH_STUDY_SPEC.results_per_query,
            },
            "assessment_tier": {
                "source_count": assessment_sources,
                "seed": ASSESSMENT_TIER.seed,
                "discussion_budget": ASSESSMENT_TIER.discussion_budget,
                "user_budget": ASSESSMENT_TIER.user_budget,
            },
        }
    }
    print(
        f"timing corpus assessment ({assessment_sources} sources)...", flush=True
    )
    report["corpus_assessment"] = bench_corpus_assessment(assessment_sources)
    print("timing repeated rank...", flush=True)
    report["repeated_rank"] = bench_repeated_rank(dataset, rank_repetitions)
    print("timing search throughput...", flush=True)
    report["search_throughput"] = bench_search_throughput(dataset, search_rounds)
    print("timing sentiment aggregation...", flush=True)
    report["sentiment_aggregation"] = bench_sentiment(repetitions=3)

    try:
        atomic_write_json(output_path, report)
    except OSError as exc:
        print(f"FATAL: could not write {output_path}: {exc}", file=sys.stderr)
        sys.exit(1)
    return report


def summarise(report: dict) -> None:
    """Print the per-section speedups and target status."""
    for section in (
        "corpus_assessment",
        "repeated_rank",
        "search_throughput",
        "sentiment_aggregation",
    ):
        entry = report[section]
        target = entry.get("target_speedup")
        status = ""
        if target is not None:
            status = "  [ok]" if entry["speedup"] >= target else f"  [BELOW {target}x TARGET]"
        print(
            f"{section:24s} baseline {entry['baseline_seconds']:8.3f}s  "
            f"optimized {entry['optimized_seconds']:8.3f}s  "
            f"speedup {entry['speedup']:7.1f}x{status}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--rank-repetitions", type=int, default=5,
        help="rank() calls per side in the repeated-rank section (default: 5)",
    )
    parser.add_argument(
        "--search-rounds", type=int, default=3,
        help="passes over the query workload per side (default: 3)",
    )
    parser.add_argument(
        "--assessment-sources", type=int, default=ASSESSMENT_TIER.source_count,
        help="corpus size of the assessment-core tier "
             f"(default: {ASSESSMENT_TIER.source_count})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when a section misses its speedup target",
    )
    args = parser.parse_args(argv)

    report = run(
        args.output, args.rank_repetitions, args.search_rounds,
        args.assessment_sources,
    )
    summarise(report)
    print(f"wrote {args.output}")

    if args.strict:
        missed = [
            section
            for section in ("corpus_assessment", "repeated_rank", "search_throughput")
            if report[section]["speedup"] < report[section]["target_speedup"]
        ]
        if missed:
            print(f"FATAL: speedup targets missed: {', '.join(missed)}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
