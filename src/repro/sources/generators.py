"""Seeded synthetic generators for Web 2.0 sources and corpora.

The paper's evaluation crawls live blogs and forums; offline we generate
sources whose *observable surface* (discussions, comments, users, tags,
timestamps, interactions) follows the same heavy-tailed statistics the
literature documents for user-generated content.  Each source is driven by
two independent latent scalars:

``latent_popularity``
    How much raw traffic the source attracts.  It drives the Alexa-like
    panel statistics (traffic rank, daily visitors, page views, inbound
    links) and, weakly, the content volume.

``latent_engagement``
    How much its community participates.  It drives comments per
    discussion, comments per user, the rate of newly-opened discussions and
    the responsiveness measures.

Keeping the two latents independent is what makes the Section 4.1
experiment meaningful: a search engine that ranks by popularity alone will
disagree with a quality model that also rewards participation and
freshness, exactly as the paper observed for Google.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.sources.corpus import SourceCorpus
from repro.sources.models import (
    Discussion,
    Interaction,
    InteractionType,
    Post,
    Source,
    SourceType,
    UserProfile,
)
from repro.sources.text import GENERIC_CATEGORIES, TextGenerator, default_vocabularies

__all__ = ["SourceSpec", "SourceGenerator", "CorpusSpec", "CorpusGenerator"]


@dataclass(frozen=True)
class SourceSpec:
    """Configuration for generating a single synthetic source.

    Attributes
    ----------
    source_id, name, url:
        Identity of the source.  ``name`` and ``url`` default to values
        derived from ``source_id``.
    source_type:
        Blog, forum, microblog, review site, ...
    focus_categories:
        Categories the source is specialised in; discussions are drawn
        mostly from these.
    category_pool:
        Full set of categories the source may occasionally touch.
    latent_popularity, latent_engagement:
        The two latent drivers in ``[0, 1]`` described in the module
        docstring.
    discussion_budget:
        Baseline number of discussions to generate (scaled by popularity).
    user_budget:
        Baseline number of registered users (scaled by popularity).
    off_topic_rate:
        Fraction of discussions that drift out of the focus categories
        (counted as accuracy errors by the quality model).
    tag_richness:
        Average number of distinct tags attached to each post.
    observation_day:
        End of the observation window, in simulation days.
    created_at:
        Day the source came online.
    closed_discussion_rate:
        Fraction of discussions that are closed at observation time.
    """

    source_id: str
    source_type: SourceType = SourceType.BLOG
    focus_categories: tuple[str, ...] = ("travel",)
    category_pool: tuple[str, ...] = GENERIC_CATEGORIES
    name: Optional[str] = None
    url: Optional[str] = None
    latent_popularity: float = 0.5
    latent_engagement: float = 0.5
    latent_stickiness: float = 0.5
    discussion_budget: int = 30
    user_budget: int = 40
    off_topic_rate: float = 0.1
    tag_richness: float = 2.5
    observation_day: float = 365.0
    created_at: float = 0.0
    closed_discussion_rate: float = 0.2

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the spec is inconsistent."""
        if not self.source_id:
            raise ConfigurationError("source_id must be a non-empty string")
        if not 0.0 <= self.latent_popularity <= 1.0:
            raise ConfigurationError("latent_popularity must be in [0, 1]")
        if not 0.0 <= self.latent_engagement <= 1.0:
            raise ConfigurationError("latent_engagement must be in [0, 1]")
        if not 0.0 <= self.latent_stickiness <= 1.0:
            raise ConfigurationError("latent_stickiness must be in [0, 1]")
        if not 0.0 <= self.off_topic_rate <= 1.0:
            raise ConfigurationError("off_topic_rate must be in [0, 1]")
        if not 0.0 <= self.closed_discussion_rate <= 1.0:
            raise ConfigurationError("closed_discussion_rate must be in [0, 1]")
        if self.discussion_budget < 0 or self.user_budget < 1:
            raise ConfigurationError(
                "discussion_budget must be >= 0 and user_budget >= 1"
            )
        if not self.focus_categories:
            raise ConfigurationError("focus_categories must not be empty")
        if self.observation_day <= self.created_at:
            raise ConfigurationError("observation_day must be after created_at")


class SourceGenerator:
    """Generate a single :class:`Source` from a :class:`SourceSpec`."""

    def __init__(self, spec: SourceSpec, seed: int = 0) -> None:
        spec.validate()
        self._spec = spec
        self._rng = random.Random(seed)
        categories = set(spec.category_pool) | set(spec.focus_categories)
        self._text = TextGenerator(self._rng, default_vocabularies(sorted(categories)))

    @property
    def spec(self) -> SourceSpec:
        """Return the spec this generator was built from."""
        return self._spec

    # -- helpers -------------------------------------------------------------------

    def _scaled(self, base: int, latent: float, spread: float = 0.5) -> int:
        """Scale ``base`` by a latent value with multiplicative noise."""
        factor = 0.3 + 1.7 * latent
        noise = 1.0 + self._rng.uniform(-spread, spread)
        return max(1, int(round(base * factor * noise)))

    def _pick_category(self) -> tuple[str, bool]:
        """Pick a discussion category; return ``(category, on_topic)``."""
        spec = self._spec
        if self._rng.random() < spec.off_topic_rate:
            outside = [
                category
                for category in spec.category_pool
                if category not in spec.focus_categories
            ]
            if outside:
                return self._rng.choice(outside), False
        return self._rng.choice(list(spec.focus_categories)), True

    def _make_users(self, count: int) -> list[UserProfile]:
        spec = self._spec
        users = []
        for index in range(count):
            registered_at = self._rng.uniform(
                spec.created_at, max(spec.created_at + 1.0, spec.observation_day - 1.0)
            )
            users.append(
                UserProfile(
                    user_id=f"{spec.source_id}-user-{index:04d}",
                    name=f"user_{index:04d}",
                    registered_at=registered_at,
                    location=None,
                )
            )
        return users

    def _make_discussion(
        self, index: int, users: Sequence[UserProfile], source: Source
    ) -> Discussion:
        spec = self._spec
        category, on_topic = self._pick_category()
        opened_at = self._rng.uniform(spec.created_at, spec.observation_day - 0.5)
        discussion = Discussion(
            discussion_id=f"{spec.source_id}-disc-{index:05d}",
            category=category,
            title=self._text.title(category),
            opened_at=opened_at,
            is_open=self._rng.random() >= spec.closed_discussion_rate,
            on_topic=on_topic,
        )

        opener_author = self._rng.choice(list(users))
        sentiment = self._rng.uniform(-1.0, 1.0)
        discussion.posts.append(
            self._make_post(
                post_id=f"{discussion.discussion_id}-p0000",
                author=opener_author,
                day=opened_at,
                category=category,
                sentiment=sentiment,
                on_topic=on_topic,
            )
        )

        # Comment volume is driven by engagement: geometric-ish tail.
        mean_comments = 1.0 + 14.0 * spec.latent_engagement
        comment_count = self._sample_count(mean_comments)
        thread_span = max(0.5, spec.observation_day - opened_at)
        for comment_index in range(comment_count):
            author = self._rng.choice(list(users))
            # Comments cluster shortly after the opening, with a long tail.
            offset = min(thread_span, self._rng.expovariate(1.0 / max(0.5, thread_span / 6.0)))
            day = opened_at + offset
            post = self._make_post(
                post_id=f"{discussion.discussion_id}-p{comment_index + 1:04d}",
                author=author,
                day=day,
                category=category,
                sentiment=sentiment + self._rng.uniform(-0.4, 0.4),
                on_topic=on_topic and self._rng.random() > spec.off_topic_rate / 2.0,
            )
            discussion.posts.append(post)
            source.add_interaction(
                Interaction(
                    interaction_type=InteractionType.COMMENT,
                    actor_id=author.user_id,
                    target_user_id=opener_author.user_id,
                    day=day,
                    post_id=post.post_id,
                )
            )
        return discussion

    def _make_post(
        self,
        post_id: str,
        author: UserProfile,
        day: float,
        category: str,
        sentiment: float,
        on_topic: bool,
    ) -> Post:
        spec = self._spec
        sentiment = max(-1.0, min(1.0, sentiment))
        if on_topic:
            text = self._text.snippet(category, sentiment=sentiment, sentences=2)
        else:
            text = self._text.off_topic_sentence(category)
        tag_count = max(0, int(round(self._rng.gauss(spec.tag_richness, 1.0))))
        read_count = self._sample_count(5.0 + 60.0 * spec.latent_popularity)
        feedback_count = self._sample_count(1.0 + 6.0 * spec.latent_engagement)
        return Post(
            post_id=post_id,
            author_id=author.user_id,
            day=day,
            text=text,
            category=category,
            tags=self._text.tags(category, tag_count),
            on_topic=on_topic,
            read_count=read_count,
            feedback_count=feedback_count,
        )

    def _sample_count(self, mean: float) -> int:
        """Sample a non-negative count with a heavy right tail around ``mean``."""
        if mean <= 0:
            return 0
        # Log-normal around the mean gives the long tail typical of UGC volumes.
        sigma = 0.75
        mu = math.log(mean) - sigma * sigma / 2.0
        value = self._rng.lognormvariate(mu, sigma)
        return max(0, int(round(value)))

    # -- main entry point ----------------------------------------------------------

    def generate(self) -> Source:
        """Generate the source."""
        spec = self._spec
        source = Source(
            source_id=spec.source_id,
            name=spec.name or spec.source_id.replace("-", " ").title(),
            url=spec.url or f"https://{spec.source_id}.example.org",
            source_type=spec.source_type,
            categories=tuple(dict.fromkeys(spec.focus_categories)),
            created_at=spec.created_at,
            observation_day=spec.observation_day,
            latent_popularity=spec.latent_popularity,
            latent_engagement=spec.latent_engagement,
            latent_stickiness=spec.latent_stickiness,
        )

        user_count = self._scaled(spec.user_budget, spec.latent_popularity)
        users = self._make_users(user_count)
        for profile in users:
            source.add_user(profile)

        discussion_count = self._scaled(
            spec.discussion_budget,
            0.6 * spec.latent_popularity + 0.4 * spec.latent_engagement,
        )
        for index in range(discussion_count):
            source.add_discussion(self._make_discussion(index, users, source))

        self._add_social_interactions(source, users)
        return source

    def _add_social_interactions(
        self, source: Source, users: Sequence[UserProfile]
    ) -> None:
        """Add likes/shares/feedback on top of the comment interactions."""
        spec = self._spec
        posts = list(source.posts())
        if not posts or not users:
            return
        extra = self._scaled(
            max(1, len(posts) // 2), spec.latent_engagement, spread=0.3
        )
        for _ in range(extra):
            post = self._rng.choice(posts)
            actor = self._rng.choice(list(users))
            kind = self._rng.choice(
                [InteractionType.LIKE, InteractionType.SHARE, InteractionType.FEEDBACK]
            )
            day = min(
                spec.observation_day,
                post.day + self._rng.expovariate(1.0 / 3.0),
            )
            source.add_interaction(
                Interaction(
                    interaction_type=kind,
                    actor_id=actor.user_id,
                    target_user_id=post.author_id,
                    day=day,
                    post_id=post.post_id,
                )
            )


@dataclass(frozen=True)
class CorpusSpec:
    """Configuration for generating a whole corpus of sources.

    ``popularity_alpha`` controls the Pareto-like skew of the latent
    popularity across sources (small alpha = a few very popular sources and
    a long tail), matching the traffic distribution of real blogs/forums.
    """

    source_count: int = 50
    seed: int = 7
    source_types: tuple[SourceType, ...] = (SourceType.BLOG, SourceType.FORUM)
    category_pool: tuple[str, ...] = GENERIC_CATEGORIES
    focus_category_count: int = 3
    discussion_budget: int = 30
    user_budget: int = 40
    observation_day: float = 365.0
    popularity_alpha: float = 1.3
    engagement_popularity_correlation: float = 0.2
    stickiness_popularity_correlation: float = -0.15
    off_topic_rate_range: tuple[float, float] = (0.02, 0.35)
    name_prefix: str = "source"

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the spec is inconsistent."""
        if self.source_count < 1:
            raise ConfigurationError("source_count must be >= 1")
        if not self.source_types:
            raise ConfigurationError("source_types must not be empty")
        if not self.category_pool:
            raise ConfigurationError("category_pool must not be empty")
        if self.focus_category_count < 1:
            raise ConfigurationError("focus_category_count must be >= 1")
        if self.popularity_alpha <= 0:
            raise ConfigurationError("popularity_alpha must be > 0")
        if not -1.0 <= self.engagement_popularity_correlation <= 1.0:
            raise ConfigurationError(
                "engagement_popularity_correlation must be in [-1, 1]"
            )
        if not -1.0 <= self.stickiness_popularity_correlation <= 1.0:
            raise ConfigurationError(
                "stickiness_popularity_correlation must be in [-1, 1]"
            )
        low, high = self.off_topic_rate_range
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigurationError("off_topic_rate_range must satisfy 0 <= low <= high <= 1")


class CorpusGenerator:
    """Generate a :class:`SourceCorpus` from a :class:`CorpusSpec`."""

    def __init__(self, spec: CorpusSpec = CorpusSpec()) -> None:
        spec.validate()
        self._spec = spec
        self._rng = random.Random(spec.seed)

    @property
    def spec(self) -> CorpusSpec:
        """Return the spec this generator was built from."""
        return self._spec

    def _latent_popularity(self) -> float:
        """Draw a latent popularity in [0, 1] with a Pareto-like skew."""
        raw = self._rng.paretovariate(self._spec.popularity_alpha)
        # Map the unbounded Pareto draw into (0, 1); larger draws saturate.
        return min(0.999, 1.0 - 1.0 / raw) if raw > 1.0 else 0.0

    def _correlated_latent(self, popularity: float, rho: float) -> float:
        """Draw a latent in [0, 1], correlated with popularity by ``rho``.

        Negative ``rho`` mixes in ``1 - popularity`` so that very popular
        sources tend to have *lower* values of the latent (e.g. shallower
        participation or shorter visits on mega-portals).
        """
        independent = self._rng.random()
        anchor = popularity if rho >= 0 else (1.0 - popularity)
        mixed = abs(rho) * anchor + (1.0 - abs(rho)) * independent
        return max(0.0, min(1.0, mixed + self._rng.uniform(-0.05, 0.05)))

    def _latent_engagement(self, popularity: float) -> float:
        """Draw engagement, weakly correlated with popularity."""
        return self._correlated_latent(
            popularity, self._spec.engagement_popularity_correlation
        )

    def _latent_stickiness(self, popularity: float) -> float:
        """Draw stickiness (visit depth), weakly correlated with popularity."""
        return self._correlated_latent(
            popularity, self._spec.stickiness_popularity_correlation
        )

    def source_spec(self, index: int) -> SourceSpec:
        """Build the :class:`SourceSpec` for the ``index``-th source."""
        spec = self._spec
        popularity = self._latent_popularity()
        engagement = self._latent_engagement(popularity)
        stickiness = self._latent_stickiness(popularity)
        focus_count = min(
            len(spec.category_pool),
            max(1, int(round(self._rng.gauss(spec.focus_category_count, 1.0)))),
        )
        focus = tuple(self._rng.sample(list(spec.category_pool), focus_count))
        low, high = spec.off_topic_rate_range
        return SourceSpec(
            source_id=f"{spec.name_prefix}-{index:04d}",
            source_type=self._rng.choice(list(spec.source_types)),
            focus_categories=focus,
            category_pool=spec.category_pool,
            latent_popularity=popularity,
            latent_engagement=engagement,
            latent_stickiness=stickiness,
            discussion_budget=spec.discussion_budget,
            user_budget=spec.user_budget,
            off_topic_rate=self._rng.uniform(low, high),
            observation_day=spec.observation_day,
            created_at=self._rng.uniform(0.0, spec.observation_day * 0.5),
        )

    def generate(self) -> SourceCorpus:
        """Generate the full corpus."""
        corpus = SourceCorpus()
        for index in range(self._spec.source_count):
            source_spec = self.source_spec(index)
            seed = self._rng.randrange(2**31)
            corpus.add(SourceGenerator(source_spec, seed=seed).generate())
        return corpus


def generate_corpus(spec: Optional[CorpusSpec] = None) -> SourceCorpus:
    """Convenience wrapper: generate a corpus from ``spec`` (or the default)."""
    return CorpusGenerator(spec or CorpusSpec()).generate()
