"""Polarity lexicons for the rule-based sentiment analyser.

The default lexicon covers the general opinion vocabulary the synthetic
text generator draws from plus a broader set of common English polarity
words; :func:`tourism_lexicon` extends it with domain terms for the Milan
tourism case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SentimentError

__all__ = ["SentimentLexicon", "default_lexicon", "tourism_lexicon"]


_POSITIVE: dict[str, float] = {
    "amazing": 1.0, "wonderful": 1.0, "excellent": 1.0, "lovely": 0.8,
    "great": 0.8, "fantastic": 1.0, "charming": 0.7, "delicious": 0.9,
    "friendly": 0.7, "beautiful": 0.8, "impressive": 0.7, "superb": 1.0,
    "pleasant": 0.6, "memorable": 0.7, "stunning": 0.9, "outstanding": 1.0,
    "perfect": 1.0, "enjoyable": 0.7, "helpful": 0.6, "clean": 0.5,
    "comfortable": 0.6, "inspiring": 0.7, "vibrant": 0.6, "welcoming": 0.7,
    "good": 0.6, "nice": 0.5, "love": 0.9, "loved": 0.9, "best": 0.9,
    "recommend": 0.7, "recommended": 0.7, "worth": 0.5, "tasty": 0.8,
    "cozy": 0.6, "affordable": 0.5, "efficient": 0.6, "punctual": 0.6,
    "spotless": 0.8, "gorgeous": 0.9, "unforgettable": 0.9, "awesome": 1.0,
}

_NEGATIVE: dict[str, float] = {
    "terrible": -1.0, "awful": -1.0, "disappointing": -0.8, "dirty": -0.7,
    "rude": -0.8, "overpriced": -0.7, "crowded": -0.4, "noisy": -0.5,
    "boring": -0.6, "horrible": -1.0, "mediocre": -0.5, "slow": -0.4,
    "unpleasant": -0.7, "confusing": -0.5, "expensive": -0.4, "unsafe": -0.8,
    "shabby": -0.6, "frustrating": -0.7, "poor": -0.6, "unreliable": -0.7,
    "chaotic": -0.6, "dull": -0.5, "uncomfortable": -0.6, "broken": -0.6,
    "bad": -0.6, "worst": -1.0, "hate": -0.9, "hated": -0.9, "avoid": -0.7,
    "scam": -1.0, "filthy": -0.9, "smelly": -0.7, "closed": -0.3,
    "delay": -0.4, "delayed": -0.5, "cancelled": -0.6, "lost": -0.5,
    "ripoff": -0.9, "disgusting": -1.0, "nightmare": -0.9,
}

_NEGATIONS: tuple[str, ...] = (
    "not", "no", "never", "without", "hardly", "barely", "isn't", "wasn't",
    "don't", "didn't", "doesn't", "won't", "can't", "couldn't", "nothing",
)

_INTENSIFIERS: dict[str, float] = {
    "very": 1.5, "really": 1.4, "extremely": 1.8, "absolutely": 1.8,
    "totally": 1.6, "so": 1.3, "quite": 1.2, "incredibly": 1.8,
    "super": 1.5, "truly": 1.4,
}

_DIMINISHERS: dict[str, float] = {
    "slightly": 0.6, "somewhat": 0.7, "a-bit": 0.7, "rather": 0.8,
    "fairly": 0.8, "kinda": 0.7,
}


@dataclass(frozen=True)
class SentimentLexicon:
    """A polarity lexicon plus negation/intensity modifiers."""

    polarities: Mapping[str, float]
    negations: tuple[str, ...] = _NEGATIONS
    intensifiers: Mapping[str, float] = field(default_factory=lambda: dict(_INTENSIFIERS))
    diminishers: Mapping[str, float] = field(default_factory=lambda: dict(_DIMINISHERS))

    def __post_init__(self) -> None:
        if not self.polarities:
            raise SentimentError("a lexicon needs at least one polarity entry")
        for word, value in self.polarities.items():
            if not -1.0 <= value <= 1.0:
                raise SentimentError(
                    f"polarity of {word!r} must be in [-1, 1], got {value}"
                )

    def polarity(self, token: str) -> float:
        """Polarity of ``token`` (0.0 when the token is not opinionated)."""
        return float(self.polarities.get(token, 0.0))

    def is_negation(self, token: str) -> bool:
        """True when ``token`` flips the polarity of what follows."""
        return token in self.negations

    def modifier(self, token: str) -> float:
        """Multiplicative strength modifier of ``token`` (1.0 when neutral)."""
        if token in self.intensifiers:
            return float(self.intensifiers[token])
        if token in self.diminishers:
            return float(self.diminishers[token])
        return 1.0

    def extended_with(self, polarities: Mapping[str, float]) -> "SentimentLexicon":
        """Return a copy of the lexicon with extra/overridden polarity entries."""
        merged = dict(self.polarities)
        merged.update(polarities)
        return SentimentLexicon(
            polarities=merged,
            negations=self.negations,
            intensifiers=dict(self.intensifiers),
            diminishers=dict(self.diminishers),
        )

    def opinion_words(self) -> set[str]:
        """Return the set of words carrying non-zero polarity."""
        return {word for word, value in self.polarities.items() if value != 0.0}


def default_lexicon() -> SentimentLexicon:
    """Return the general-purpose polarity lexicon."""
    polarities = dict(_POSITIVE)
    polarities.update(_NEGATIVE)
    return SentimentLexicon(polarities=polarities)


def tourism_lexicon() -> SentimentLexicon:
    """Return the lexicon extended with tourism-domain polarity terms."""
    domain_terms = {
        "panoramic": 0.6, "central": 0.4, "walkable": 0.5, "authentic": 0.7,
        "touristy": -0.4, "queue": -0.4, "queues": -0.4, "pickpockets": -0.9,
        "strike": -0.6, "renovated": 0.5, "hidden-gem": 0.9, "landmark": 0.4,
        "michelin": 0.7, "overrated": -0.7, "underrated": 0.5, "bargain": 0.6,
    }
    return default_lexicon().extended_with(domain_terms)
