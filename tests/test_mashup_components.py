"""Tests for the mashup component layer: events, content items, data services,
filters and analysis services."""

from __future__ import annotations

import pytest

from repro.core.domain import TimeInterval
from repro.errors import MashupError, WiringError
from repro.mashup.analysis import BuzzWordService, SentimentAnalysisService
from repro.mashup.component import Component, ContentItem, items_from_posts
from repro.mashup.data_services import (
    CorpusDataService,
    MicroblogDataService,
    ReviewDataService,
    SourceDataService,
)
from repro.mashup.events import Event, EventBus
from repro.mashup.filters import (
    CategoryFilter,
    InfluencerFilter,
    LocationFilter,
    QualitySourceFilter,
    TimeWindowFilter,
    UnionMerge,
)
from repro.sources.corpus import SourceCorpus
from repro.sources.models import SourceType


def make_item(item_id="i1", author="u1", category="travel", day=10.0, **kwargs):
    defaults = dict(
        source_id="s1", text="a wonderful trip", location="Milan", tags=("travel",)
    )
    defaults.update(kwargs)
    return ContentItem(item_id=item_id, author_id=author, day=day, category=category, **defaults)


class TestEventBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = EventBus()
        received = []
        bus.subscribe("topic", lambda event: received.append(("a", event.payload)))
        bus.subscribe("topic", lambda event: received.append(("b", event.payload)))
        notified = bus.emit("topic", 42, publisher="me")
        assert notified == 2
        assert received == [("a", 42), ("b", 42)]

    def test_unsubscribe_and_history(self):
        bus = EventBus()
        handler = lambda event: None
        bus.subscribe("topic", handler)
        bus.unsubscribe("topic", handler)
        assert bus.emit("topic", 1) == 0
        assert len(bus.history()) == 1
        assert bus.history("other") == []
        bus.clear_history()
        assert bus.history() == []


class TestContentItem:
    def test_with_helpers_do_not_mutate_original(self):
        item = make_item()
        annotated = item.with_sentiment(0.5).with_quality_weight(0.8).with_attributes(x=1)
        assert item.sentiment is None
        assert item.quality_weight == 1.0
        assert annotated.sentiment == 0.5
        assert annotated.quality_weight == 0.8
        assert annotated.attributes["x"] == 1

    def test_items_from_posts(self, single_source):
        posts = list(single_source.posts())[:5]
        items = items_from_posts(single_source.source_id, posts)
        assert len(items) == 5
        assert items[0].item_id == posts[0].post_id
        assert items[0].source_id == single_source.source_id

    def test_component_requires_items_payload(self):
        component = CategoryFilter("c", categories=["travel"])
        with pytest.raises(WiringError):
            component.process({})
        with pytest.raises(WiringError):
            component.process({"items": ["not-an-item"]})

    def test_component_id_required(self):
        with pytest.raises(MashupError):
            CategoryFilter("", categories=["travel"])


class TestDataServices:
    def test_source_data_service_emits_every_post(self, single_source):
        service = SourceDataService("data", single_source)
        items = service.process({})["items"]
        assert len(items) == single_source.post_count()
        assert {item.source_id for item in items} == {single_source.source_id}

    def test_corpus_data_service_type_and_id_filters(self, small_corpus):
        everything = CorpusDataService("all", small_corpus).fetch()
        assert len(everything) == small_corpus.statistics().post_count
        only_blogs = CorpusDataService(
            "blogs", small_corpus, source_types=(SourceType.BLOG,)
        ).fetch()
        blog_ids = {s.source_id for s in small_corpus.of_type(SourceType.BLOG)}
        assert {item.source_id for item in only_blogs} <= blog_ids
        chosen = small_corpus.source_ids()[0]
        only_one = CorpusDataService("one", small_corpus, source_ids=(chosen,)).fetch()
        assert {item.source_id for item in only_one} == {chosen}

    def test_corpus_data_service_rejects_empty_corpus(self):
        with pytest.raises(MashupError):
            CorpusDataService("empty", SourceCorpus())

    def test_microblog_data_service_drops_textless_items(self, small_community):
        service = MicroblogDataService("tw", small_community)
        items = service.fetch()
        assert items
        assert all(item.text for item in items)

    def test_review_data_service_requires_review_site(self, single_source):
        with pytest.raises(MashupError):
            ReviewDataService("rev", single_source)

    def test_describe_includes_ports(self, single_source):
        description = SourceDataService("data", single_source).describe()
        assert description["outputs"] == ["items"]
        assert description["source_id"] == single_source.source_id


class TestFilters:
    def test_category_filter(self):
        items = [make_item("a", category="travel"), make_item("b", category="food")]
        kept = CategoryFilter("f", categories=["travel"]).process({"items": items})["items"]
        assert [item.item_id for item in kept] == ["a"]
        with pytest.raises(MashupError):
            CategoryFilter("f", categories=[])

    def test_time_window_filter(self):
        items = [make_item("a", day=5.0), make_item("b", day=50.0)]
        kept = TimeWindowFilter("f", interval=TimeInterval(0.0, 10.0)).process(
            {"items": items}
        )["items"]
        assert [item.item_id for item in kept] == ["a"]

    def test_location_filter(self):
        items = [
            make_item("a", location="Milan"),
            make_item("b", location="Rome"),
            make_item("c", location=None),
        ]
        keep_milan = LocationFilter("f", locations=["milan"]).process({"items": items})
        assert [item.item_id for item in keep_milan["items"]] == ["a"]
        keep_untagged = LocationFilter(
            "f2", locations=["milan"], keep_untagged=True
        ).process({"items": items})
        assert [item.item_id for item in keep_untagged["items"]] == ["a", "c"]
        with pytest.raises(MashupError):
            LocationFilter("f3", locations=[])

    def test_influencer_filter_with_explicit_ids(self):
        items = [make_item("a", author="star"), make_item("b", author="nobody")]
        result = InfluencerFilter("f", influencer_ids=["star"]).process({"items": items})
        assert [item.item_id for item in result["items"]] == ["a"]
        assert result["influencers"] == ["star"]

    def test_influencer_filter_requires_configuration(self):
        with pytest.raises(MashupError):
            InfluencerFilter("f")

    def test_quality_source_filter_annotates_and_drops(self):
        items = [make_item("a", source_id="good"), make_item("b", source_id="bad")]
        result = QualitySourceFilter(
            "f", quality_weights={"good": 0.9, "bad": 0.2}, minimum_quality=0.5
        ).process({"items": items})
        kept = result["items"]
        assert [item.item_id for item in kept] == ["a"]
        assert kept[0].quality_weight == pytest.approx(0.9)
        with pytest.raises(MashupError):
            QualitySourceFilter("f", quality_weights={}, minimum_quality=-1.0)

    def test_union_merge_deduplicates(self):
        left = [make_item("a"), make_item("b")]
        right = [make_item("b"), make_item("c")]
        merged = UnionMerge("m").process({"left": left, "right": right})["items"]
        assert [item.item_id for item in merged] == ["a", "b", "c"]


class TestAnalysisServices:
    def test_sentiment_service_annotates_and_summarises(self):
        items = [
            make_item("a", text="a wonderful amazing museum", category="attractions"),
            make_item("b", text="terrible awful queue", category="transport"),
            make_item("c", text="the tram number four", category="transport"),
        ]
        result = SentimentAnalysisService("s").process({"items": items})
        annotated = result["items"]
        indicator = result["indicator"]
        assert annotated[0].sentiment > 0
        assert annotated[1].sentiment < 0
        assert indicator["item_count"] == 3
        assert indicator["opinionated_count"] == 2
        assert "attractions" in indicator["per_category"]

    def test_sentiment_quality_weighting(self):
        items = [
            make_item("a", text="wonderful", source_id="good").with_quality_weight(1.0),
            make_item("b", text="terrible", source_id="bad").with_quality_weight(0.01),
        ]
        indicator = SentimentAnalysisService("s").process({"items": items})["indicator"]
        assert indicator["quality_weighted_polarity"] > indicator["average_polarity"]

    def test_buzzword_service_ranks_frequent_content_words(self):
        items = [
            make_item("a", text="duomo duomo duomo gelato"),
            make_item("b", text="gelato duomo espresso"),
        ]
        buzz = BuzzWordService("b", top=2).process({"items": items})["buzzwords"]
        assert buzz[0]["word"] == "duomo"
        assert buzz[0]["count"] == 4
        assert len(buzz) == 2
        with pytest.raises(MashupError):
            BuzzWordService("b", top=0)
