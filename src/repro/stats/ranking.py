"""Rank correlation and rank-distance statistics.

Section 4.1 of the paper compares the quality-based re-ranking of search
results with the original search-engine ranking using:

* the Kendall tau rank correlation between each single quality measure and
  the search rank;
* the average *distance* between the positions of the same item in the two
  rankings (how far items move when re-ranked);
* the fraction of items displaced by more than 5 and more than 10
  positions, and the fraction of items whose position coincides.

This module implements those statistics over explicit item rankings: a
ranking is an ordered sequence of item identifiers, best first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.errors import InsufficientDataError, StatisticsError

__all__ = [
    "kendall_tau",
    "spearman_rho",
    "rank_displacements",
    "displacement_statistics",
    "RankingComparison",
    "compare_rankings",
]


def _validate_pairs(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise StatisticsError("paired samples must have the same length")
    if len(xs) < 2:
        raise InsufficientDataError("at least two observations are required")


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall tau-b rank correlation between two paired samples.

    Implements the standard tau-b definition

    ``tau_b = (C - D) / sqrt((n0 - n1) * (n0 - n2))``

    where ``C``/``D`` are the concordant/discordant pair counts,
    ``n0 = n(n-1)/2`` is the total pair count, and ``n1``/``n2`` count the
    pairs tied in x and in y respectively.  Pairs tied in *both* samples
    (joint ties) contribute to both ``n1`` and ``n2`` — the previous
    implementation skipped them and only agreed with the standard
    definition through an algebraic cancellation; the counting below
    matches the definition term for term (regression-tested against
    hand-computed joint-tie cases and ``scipy.stats.kendalltau``).

    Returns a value in ``[-1, 1]``; 0 means no association between the
    orderings, and 0 is also returned when either sample is constant
    (the coefficient is undefined there).
    """
    _validate_pairs(xs, ys)
    n = len(xs)
    concordant = 0
    discordant = 0
    ties_x = 0  # pairs tied in x, joint ties included
    ties_y = 0  # pairs tied in y, joint ties included
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            tied_x = dx == 0
            tied_y = dy == 0
            if tied_x:
                ties_x += 1
            if tied_y:
                ties_y += 1
            if tied_x or tied_y:
                continue
            if (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) // 2
    denominator = math.sqrt((n0 - ties_x) * (n0 - ties_y))
    if denominator == 0:
        return 0.0
    return (concordant - discordant) / denominator


def _rank_with_ties(values: Sequence[float]) -> list[float]:
    """Return average ranks (1-based) with ties sharing the mean rank."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tail = position
        while (
            tail + 1 < len(order)
            and values[order[tail + 1]] == values[order[position]]
        ):
            tail += 1
        average_rank = (position + tail) / 2.0 + 1.0
        for index in order[position : tail + 1]:
            ranks[index] = average_rank
        position = tail + 1
    return ranks


def spearman_rho(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation between two paired samples."""
    _validate_pairs(xs, ys)
    rank_x = _rank_with_ties(xs)
    rank_y = _rank_with_ties(ys)
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    var_x = sum((a - mean_x) ** 2 for a in rank_x)
    var_y = sum((b - mean_y) ** 2 for b in rank_y)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def rank_displacements(
    baseline: Sequence[Hashable], reranked: Sequence[Hashable]
) -> dict[Hashable, int]:
    """Absolute position change of each item between two rankings.

    Both rankings must contain exactly the same items (any order).
    """
    if set(baseline) != set(reranked):
        raise StatisticsError("the two rankings must contain the same items")
    if len(set(baseline)) != len(baseline):
        raise StatisticsError("rankings must not contain duplicate items")
    position_baseline = {item: index for index, item in enumerate(baseline)}
    position_reranked = {item: index for index, item in enumerate(reranked)}
    return {
        item: abs(position_baseline[item] - position_reranked[item])
        for item in baseline
    }


@dataclass(frozen=True)
class RankingComparison:
    """Summary of the differences between a baseline ranking and a re-ranking.

    Mirrors exactly the statistics reported in Section 4.1: average
    displacement, displacement variance, fraction of items displaced by more
    than 5 and more than 10 positions, and fraction of coincident positions.
    """

    item_count: int
    average_displacement: float
    displacement_variance: float
    max_displacement: int
    fraction_displaced_over_5: float
    fraction_displaced_over_10: float
    fraction_coincident: float

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "item_count": self.item_count,
            "average_displacement": self.average_displacement,
            "displacement_variance": self.displacement_variance,
            "max_displacement": self.max_displacement,
            "fraction_displaced_over_5": self.fraction_displaced_over_5,
            "fraction_displaced_over_10": self.fraction_displaced_over_10,
            "fraction_coincident": self.fraction_coincident,
        }


def displacement_statistics(displacements: Sequence[int]) -> RankingComparison:
    """Summarise a collection of per-item displacements."""
    if not displacements:
        raise InsufficientDataError("no displacements provided")
    count = len(displacements)
    mean = sum(displacements) / count
    variance = sum((value - mean) ** 2 for value in displacements) / count
    return RankingComparison(
        item_count=count,
        average_displacement=mean,
        displacement_variance=variance,
        max_displacement=max(displacements),
        fraction_displaced_over_5=sum(1 for value in displacements if value > 5) / count,
        fraction_displaced_over_10=sum(1 for value in displacements if value > 10) / count,
        fraction_coincident=sum(1 for value in displacements if value == 0) / count,
    )


def compare_rankings(
    baseline: Sequence[Hashable], reranked: Sequence[Hashable]
) -> RankingComparison:
    """Compare two rankings of the same items (Section 4.1 statistics)."""
    displacements = list(rank_displacements(baseline, reranked).values())
    return displacement_statistics(displacements)
