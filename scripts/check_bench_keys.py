#!/usr/bin/env python
"""CI smoke check: assert BENCH_perf.json contains every expected section.

Exits non-zero with a readable message when a perf harness silently failed
to record its section or a required per-section field is missing.  Usage::

    python scripts/check_bench_keys.py BENCH_perf.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: section -> fields every harness run must record.
EXPECTED = {
    "corpus_assessment": (
        "baseline_seconds",
        "optimized_seconds",
        "speedup",
        "target_speedup",
        "sources",
    ),
    "repeated_rank": ("baseline_seconds", "optimized_seconds", "speedup"),
    "search_throughput": ("baseline_qps", "optimized_qps", "speedup"),
    "sentiment_aggregation": ("baseline_seconds", "optimized_seconds", "speedup"),
    "incremental_index": (
        "incremental_seconds",
        "full_rebuild_seconds",
        "speedup",
        "target_speedup",
    ),
    "incremental_assessment": (
        "incremental_seconds",
        "full_rebuild_seconds",
        "speedup",
        "target_speedup",
    ),
    "eager_refresh": (
        "lazy_first_read_seconds",
        "eager_first_read_seconds",
        "speedup",
        "target_speedup",
    ),
    "concurrent_serving": (
        "baseline_read_qps",
        "concurrent_read_qps",
        "speedup",
        "target_speedup",
        "bit_identical_at_quiesce",
    ),
    "persistence": (
        "warm_start_seconds",
        "cold_rebuild_seconds",
        "speedup",
        "target_speedup",
        "bit_identical",
        "events_replayed",
    ),
    "sharded_serving": (
        "read_qps_1worker",
        "read_qps_4workers",
        "read_qps_8workers",
        "capacity_qps_1worker",
        "capacity_qps_4workers",
        "capacity_qps_8workers",
        "coordinator_cpu_seconds_1worker",
        "coordinator_cpu_seconds_4workers",
        "coordinator_cpu_seconds_8workers",
        "coordinator_cpu_per_read_8workers",
        "wire_bytes_per_read_1worker",
        "wire_bytes_per_read_8workers",
        "speedup",
        "target_speedup",
        "bit_identical_at_quiesce",
        "host_cpus",
    ),
}


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} BENCH_perf.json", file=sys.stderr)
        return 2
    path = Path(argv[1])
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"FATAL: cannot read {path}: {exc}", file=sys.stderr)
        return 1

    problems: list[str] = []
    for section, fields in EXPECTED.items():
        entry = report.get(section)
        if not isinstance(entry, dict):
            problems.append(f"missing section: {section}")
            continue
        for field in fields:
            if field not in entry:
                problems.append(f"missing field: {section}.{field}")
    meta = report.get("meta")
    if not isinstance(meta, dict):
        problems.append("missing section: meta")
    else:
        for field in ("git_describe", "git_commit"):
            if field not in meta:
                problems.append(f"missing field: meta.{field}")

    if problems:
        for problem in problems:
            print(f"FATAL: {problem}", file=sys.stderr)
        return 1
    print(f"{path}: all {len(EXPECTED)} perf sections present")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
