"""Setuptools entry point.

A plain ``setup.py`` (no build isolation, no ``wheel`` package) so that
``pip install -e .`` works in fully offline environments: pip falls back
to the legacy ``setup.py develop`` path in that case.

numpy is a hard runtime dependency: the statistics helpers
(``repro.stats``) and the columnar assessment core (``repro.core.columnar``
and the kernels it drives in normalization/scoring/search) are built on
float64 arrays.
"""

from setuptools import find_packages, setup

setup(
    name="repro-source-quality",
    version="0.7.0",
    description=(
        "Reproduction of a quality-based source ranking pipeline: "
        "measure, normalize, score, rank, search, serve, persist."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
)
