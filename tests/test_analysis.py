"""Tests for the invariant lint suite and the runtime lock-order validator.

Each checker is proven twice: a *bad fixture* (a minimal reconstruction of
the violation class, including the PR 5 sync-mode delivery deadlock) must
be flagged, and a *clean fixture* exercising the same APIs correctly must
not be.  On top of that the real tree is asserted violation-free, the
suppression / baseline plumbing is unit-tested, and the runtime validator
is shown to catch a deliberately inverted acquisition that the static
checker would also reject.
"""

import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import run_all
from repro.analysis import bus as bus_checker
from repro.analysis import durability, floats, locks
from repro.analysis.findings import (
    apply_baseline,
    apply_suppressions,
    load_baseline,
    write_baseline,
)
from repro.errors import ServingError
from repro.serving import rwlock as rwlock_mod
from repro.serving.rwlock import (
    RUNTIME_LOCK_RANKS,
    ReadWriteLock,
    note_acquired,
    note_released,
    ordered,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _small_corpus(count: int = 3):
    from repro.sources.generators import CorpusGenerator, CorpusSpec

    return CorpusGenerator(
        CorpusSpec(source_count=count, seed=23, discussion_budget=6, user_budget=8)
    ).generate()


def _write(root: Path, relative: str, source: str) -> str:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return relative


def _rules(findings):
    return {finding.rule for finding in findings}


# -- lock-discipline -------------------------------------------------------------------


class TestLockDiscipline:
    def test_notify_under_mutation_lock_is_flagged(self, tmp_path):
        """The reconstructed PR 5 deadlock: delivery inside the mutation lock."""
        relative = _write(
            tmp_path,
            "bad_corpus.py",
            '''
            import threading

            class BadCorpus:
                def __init__(self):
                    self._mutation_lock = threading.RLock()
                    self._listeners = []

                def add(self, source):
                    with self._mutation_lock:
                        self._apply(source)
                        for listener in self._listeners:
                            listener(source)

                def _apply(self, source):
                    pass
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "notify-under-lock" in _rules(findings)

    def test_gate_acquired_under_write_lock_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_consumer.py",
            '''
            class BadConsumer:
                def refresh(self):
                    with self.rwlock.write_lock():
                        with self.refresh_gate:
                            pass
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "lock-order" in _rules(findings)

    def test_read_to_write_upgrade_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_upgrade.py",
            '''
            class BadReader:
                def read_then_patch(self):
                    with self.rwlock.read_lock():
                        self.rwlock.acquire_write()
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "read-upgrade" in _rules(findings)

    def test_mutation_under_consumer_gate_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_mutator.py",
            '''
            class BadPatcher:
                def patch(self, source):
                    with self.refresh_gate:
                        self.corpus.add(source)
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "mutation-under-gate" in _rules(findings)

    def test_non_reentrant_intake_reacquire_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_bus.py",
            '''
            import threading

            class InvalidationBus:
                def __init__(self):
                    self._intake = threading.Lock()

                def publish(self, event):
                    with self._intake:
                        with self._intake:
                            pass
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "self-deadlock" in _rules(findings)

    def test_opposite_orders_report_a_cycle(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_cycle.py",
            '''
            class InvalidationBus:
                def forward(self):
                    with self._mutation_lock:
                        with self._intake:
                            pass

                def backward(self):
                    with self._intake:
                        with self._mutation_lock:
                            pass
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "lock-cycle" in _rules(findings)

    def test_clean_consumer_passes(self, tmp_path):
        relative = _write(
            tmp_path,
            "good_consumer.py",
            '''
            import threading

            class GoodCorpus:
                def __init__(self):
                    self._mutation_lock = threading.RLock()
                    self._listeners = []
                    self._outbox = []

                def add(self, source):
                    with self._mutation_lock:
                        self._outbox.append(source)
                    for listener in self._listeners:
                        listener(source)

            class GoodConsumer:
                def refresh(self):
                    with self.refresh_gate:
                        with self.rwlock.write_lock():
                            pass

                def read(self):
                    with self.rwlock.read_lock():
                        pass
            ''',
        )
        assert locks.check(tmp_path, files=[relative]) == []

    def test_ordered_wrapper_is_transparent_to_the_checker(self, tmp_path):
        """Instrumenting a with-block must not blind the static checker."""
        relative = _write(
            tmp_path,
            "bad_instrumented.py",
            '''
            from repro.serving.rwlock import ordered

            class BadConsumer:
                def refresh(self):
                    with self.rwlock.write_lock():
                        with ordered(self.refresh_gate, "consumer.gate"):
                            pass
            ''',
        )
        findings = locks.check(tmp_path, files=[relative])
        assert "lock-order" in _rules(findings)


# -- float-exactness -------------------------------------------------------------------


class TestFloatExactness:
    def test_banned_reduction_and_method_are_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_kernel.py",
            '''
            import numpy as np

            def score(values):
                total = np.sum(values)
                centred = values - values.mean()
                return total, centred
            ''',
        )
        findings = floats.check(tmp_path, files=[relative])
        rules = _rules(findings)
        assert "banned-op" in rules
        assert "reduction-method" in rules

    def test_matmul_operator_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_matmul.py",
            '''
            import numpy as np

            def project(weights, matrix):
                return weights @ matrix
            ''',
        )
        assert "matmul" in _rules(floats.check(tmp_path, files=[relative]))

    def test_unknown_numpy_call_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_unknown.py",
            '''
            import numpy as np

            def smooth(values):
                return np.convolve(values, values)
            ''',
        )
        rules = _rules(floats.check(tmp_path, files=[relative]))
        assert rules & {"banned-op", "unknown-op"}

    def test_whitelisted_exact_ops_pass(self, tmp_path):
        relative = _write(
            tmp_path,
            "good_kernel.py",
            '''
            import numpy as np

            def clamp(values, low, high):
                out = np.minimum(np.maximum(np.asarray(values), low), high)
                order = np.argsort(out, kind="stable")
                return np.where(np.isfinite(out), out, 0.0), order
            ''',
        )
        assert floats.check(tmp_path, files=[relative]) == []


# -- durability-discipline -------------------------------------------------------------


class TestDurabilityDiscipline:
    def test_raw_snapshot_write_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "src/repro/bad_snapshot.py",
            '''
            import json

            def save_snapshot(path, state):
                with open(path, "w") as handle:
                    json.dump(state, handle)
            ''',
        )
        findings = durability.check(tmp_path, files=[relative])
        assert "raw-write" in _rules(findings)
        # both the open() mode and the json.dump sink are reported
        assert len(findings) >= 2

    def test_raw_rename_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "src/repro/bad_rename.py",
            '''
            import os

            def rotate(old, new):
                os.replace(old, new)
            ''',
        )
        assert "raw-rename" in _rules(durability.check(tmp_path, files=[relative]))

    def test_reads_and_atomic_helpers_pass(self, tmp_path):
        relative = _write(
            tmp_path,
            "src/repro/good_persistence.py",
            '''
            from repro.persistence.format import atomic_write_bytes

            def load(path):
                with open(path) as handle:
                    return handle.read()

            def save(path, payload):
                atomic_write_bytes(path, payload, fsync=True)
            ''',
        )
        assert durability.check(tmp_path, files=[relative]) == []

    def test_format_module_itself_is_exempt(self):
        findings = durability.check(REPO_ROOT, files=["src/repro/persistence/format.py"])
        assert findings == []


# -- bus-hygiene -----------------------------------------------------------------------


class TestBusHygiene:
    def test_unclosed_subscription_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_unclosed.py",
            '''
            class LeakyConsumer:
                def __init__(self, corpus):
                    self._subscription = corpus.invalidation_bus().subscribe(
                        name="leaky", on_event=self._on_event
                    )

                def _on_event(self, change):
                    pass

                def close(self):
                    pass
            ''',
        )
        findings = bus_checker.check(tmp_path, files=[relative])
        assert "unclosed-subscription" in _rules(findings)

    def test_leaked_local_subscription_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_leak.py",
            '''
            def watch(corpus):
                subscription = corpus.invalidation_bus().subscribe(name="drive-by")
                return corpus.version
            ''',
        )
        findings = bus_checker.check(tmp_path, files=[relative])
        assert "leaked-subscription" in _rules(findings)

    def test_unclosed_bridge_is_flagged(self, tmp_path):
        relative = _write(
            tmp_path,
            "bad_bridge.py",
            '''
            class LeakyCoordinator:
                def __init__(self, corpus, sink):
                    self._bridge = WireBridgeSubscriber(corpus, sink)

                def close(self):
                    pass

            class LeakyStore:
                def attach(self, corpus):
                    self._subscriber = DurableJournalSubscriber(corpus, self._sink)
            ''',
        )
        findings = bus_checker.check(tmp_path, files=[relative])
        assert _rules(findings) == {"unclosed-bridge"}
        assert len(findings) == 2

    def test_closed_bridge_passes(self, tmp_path):
        relative = _write(
            tmp_path,
            "good_bridge.py",
            '''
            class TidyCoordinator:
                def __init__(self, corpus, sink):
                    self._bridge = WireBridgeSubscriber(corpus, sink)

                def close(self):
                    self._bridge.close()
            ''',
        )
        assert bus_checker.check(tmp_path, files=[relative]) == []

    def test_detaching_consumer_passes(self, tmp_path):
        relative = _write(
            tmp_path,
            "good_consumer.py",
            '''
            class TidyConsumer:
                def __init__(self, corpus):
                    self._subscription = corpus.invalidation_bus().subscribe(
                        name="tidy", on_event=self._on_event
                    )

                def _on_event(self, change):
                    pass

                def close(self):
                    self._subscription.close()

            def watch(corpus):
                subscription = corpus.invalidation_bus().subscribe(name="kept")
                return subscription
            ''',
        )
        assert bus_checker.check(tmp_path, files=[relative]) == []


# -- suppressions, baseline, the real tree ---------------------------------------------


class TestRunnerPlumbing:
    def test_allow_comment_suppresses_a_finding(self, tmp_path):
        relative = _write(
            tmp_path,
            "src/repro/suppressed.py",
            '''
            def save(path, payload):
                path.write_text(payload)  # lint: allow[raw-write]
            ''',
        )
        findings = durability.check(tmp_path, files=[relative])
        assert _rules(findings) == {"raw-write"}
        kept, count = apply_suppressions(findings, tmp_path)
        assert kept == []
        assert count == 1

    def test_baseline_grandfathers_by_fingerprint_not_line(self, tmp_path):
        relative = _write(
            tmp_path,
            "src/repro/legacy.py",
            '''
            def save(path, payload):
                path.write_text(payload)
            ''',
        )
        findings = durability.check(tmp_path, files=[relative])
        assert findings
        baseline_path = tmp_path / "lint_baseline.json"
        write_baseline(baseline_path, findings)
        # the same violation on a different line is still grandfathered
        _write(
            tmp_path,
            "src/repro/legacy.py",
            '''
            # a comment that shifts every line number

            def save(path, payload):
                path.write_text(payload)
            ''',
        )
        moved = durability.check(tmp_path, files=[relative])
        fresh, grandfathered = apply_baseline(moved, load_baseline(baseline_path))
        assert fresh == []
        assert grandfathered == len(moved)
        # a second occurrence of the same fingerprint is NOT covered
        _write(
            tmp_path,
            "src/repro/legacy.py",
            '''
            def save(path, payload):
                path.write_text(payload)

            def save_again(path, payload):
                path.write_text(payload)
            ''',
        )
        doubled = durability.check(tmp_path, files=[relative])
        fresh, _ = apply_baseline(doubled, load_baseline(baseline_path))
        assert len(fresh) == 1

    def test_real_tree_is_violation_free(self):
        report = run_all(REPO_ROOT)
        assert report.ok, report.render()
        assert set(report.checkers) == {
            "lock-discipline",
            "float-exactness",
            "durability-discipline",
            "bus-hygiene",
        }

    def test_cli_exits_zero_on_the_real_tree(self):
        result = subprocess.run(
            [sys.executable, "scripts/run_lint.py"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK:" in result.stdout


# -- runtime lock-order validator ------------------------------------------------------


@pytest.fixture
def lock_validator():
    rwlock_mod.enable_lock_order_validation(True)
    try:
        yield
    finally:
        rwlock_mod.enable_lock_order_validation(False)
        rwlock_mod._held_frames.stack = []


class TestRuntimeLockOrderValidator:
    def test_ranks_agree_with_the_static_checker(self):
        static = {
            name: rank
            for name, rank in locks.LOCK_RANKS.items()
            if name != "rwlock.internal"
        }
        assert static == RUNTIME_LOCK_RANKS

    def test_inverted_acquisition_raises_instead_of_deadlocking(self, lock_validator):
        mutation, gate = threading.RLock(), threading.RLock()
        note_acquired("corpus.mutation", mutation)
        try:
            with pytest.raises(ServingError, match="lock-order violation"):
                note_acquired("consumer.gate", gate)
        finally:
            note_released(mutation)

    def test_ordered_raises_before_acquiring_the_lock(self, lock_validator):
        mutation, gate = threading.RLock(), threading.RLock()
        with ordered(mutation, "corpus.mutation"):
            with pytest.raises(ServingError):
                with ordered(gate, "consumer.gate"):
                    pass
        # the violating lock was never acquired, and the stack is balanced
        assert gate.acquire(blocking=False)
        gate.release()
        assert rwlock_mod._frames() == []

    def test_rwlock_is_natively_instrumented(self, lock_validator):
        rwlock, gate = ReadWriteLock(), threading.RLock()
        rwlock.acquire_write()
        try:
            with pytest.raises(ServingError, match="rwlock.write"):
                note_acquired("consumer.gate", gate)
        finally:
            rwlock.release_write()
        assert rwlock_mod._frames() == []

    def test_rejected_upgrade_leaves_the_stack_balanced(self, lock_validator):
        rwlock = ReadWriteLock()
        rwlock.acquire_read()
        with pytest.raises(ServingError, match="upgrade"):
            rwlock.acquire_write()
        rwlock.release_read()
        assert rwlock_mod._frames() == []

    def test_reentrant_and_composite_dips_are_exempt(self, lock_validator):
        mutation, gate = threading.RLock(), threading.RLock()
        note_acquired("corpus.mutation", mutation)
        # same object again: reentrant, no check
        note_acquired("corpus.mutation", mutation)
        # composite-style dip below the top rank: recorded, not checked
        note_acquired("consumer.gate", gate, check=False)
        # but a checked acquisition above the dipped frame still validates
        with pytest.raises(ServingError):
            note_acquired("checkpoint.gate", threading.RLock())
        note_released(gate)
        note_released(mutation)
        note_released(mutation)
        assert rwlock_mod._frames() == []

    def test_serving_stack_runs_clean_under_the_validator(
        self, lock_validator, travel_domain
    ):
        from repro.core.source_quality import SourceQualityModel
        from repro.search.engine import SearchEngine
        from repro.serving.scheduler import EagerRefreshScheduler, RefreshMode

        corpus = _small_corpus(4)
        engine = SearchEngine(corpus)
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(corpus, RefreshMode.SYNC) as scheduler:
            scheduler.register_search_engine(engine)
            scheduler.register_source_model(model)
            corpus.touch(corpus.source_ids()[0])
            scheduler.flush()
            with scheduler.read_lock():
                pass
            with scheduler.write_lock():
                pass
        engine.close()
        model.close()
        assert rwlock_mod._frames() == []


# -- subscription lifecycle fixes surfaced by the lint run -----------------------------


class TestSubscriptionLifecycle:
    def test_search_engine_close_detaches_its_subscription(self):
        from repro.search.engine import SearchEngine

        corpus = _small_corpus()
        engine = SearchEngine(corpus)
        assert not engine._subscription.closed
        engine.close()
        assert engine._subscription.closed
        engine.close()  # idempotent

    def test_corpus_change_tracker_close_detaches(self):
        from repro.sources.diffing import CorpusChangeTracker

        corpus = _small_corpus()
        tracker = CorpusChangeTracker(corpus)
        assert not tracker.subscription.closed
        tracker.close()
        assert tracker.subscription.closed

    def test_source_model_close_discards_entries_and_trackers(self, travel_domain):
        from repro.core.source_quality import SourceQualityModel

        corpus = _small_corpus()
        model = SourceQualityModel(travel_domain)
        model.assessment_context(corpus)
        entries = list(model._incremental.values())
        assert entries
        model.close()
        assert model._incremental == {}
        for entry in entries:
            assert entry.tracker.subscription.closed
            if entry.benchmark_tracker is not None:
                assert entry.benchmark_tracker.subscription.closed
