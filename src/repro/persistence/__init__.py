"""Durable corpus persistence: snapshots, write-ahead journal, recovery.

Layout of the package:

:mod:`~repro.persistence.format`
    Binary framing shared by every file — CRC-guarded length-prefixed
    records, magic/version section headers, atomic
    write-tmp → fsync → rename writes, and the swappable I/O channel the
    fault harness hooks.
:mod:`~repro.persistence.snapshot`
    The versioned, per-section-checksummed snapshot file holding the
    corpus and its consumers' derived state, with lazily decoded
    sections.
:mod:`~repro.persistence.codec`
    The compact binary codec for the index section — intern tables plus
    flat array buffers, so warm start is not dominated by JSON-decoding
    millions of postings entries.
:mod:`~repro.persistence.journal`
    The fsync-per-record write-ahead journal of corpus changes, with
    tolerant torn-tail reading.
:mod:`~repro.persistence.store`
    :class:`CorpusStore` — checkpoint orchestration and the recovery
    ladder (snapshot → previous snapshot → journal-only → empty).
:mod:`~repro.persistence.cluster`
    :class:`ClusterStore` — the cluster manifest binding N per-shard
    stores into one recoverable unit for sharded serving, with a typed
    error naming any missing shard.
:mod:`~repro.persistence.faults`
    The fault-injection harness killing writes at chosen byte
    boundaries, for crash-recovery tests.

See ``docs/PERSISTENCE.md`` for the file formats and the recovery state
machine.
"""

from repro.persistence.cluster import ClusterStore
from repro.persistence.codec import decode_index_state, encode_index_state
from repro.persistence.faults import FaultPlan, FaultyIO, InjectedCrash, inject_faults
from repro.persistence.format import atomic_write_bytes, atomic_write_json
from repro.persistence.journal import (
    JournalReader,
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.persistence.snapshot import (
    SnapshotSections,
    read_snapshot,
    snapshot_version,
    try_read_snapshot,
    write_snapshot,
)
from repro.persistence.store import (
    CorpusStore,
    RecoveredStack,
    RecoveryResult,
    register_checkpoint_store,
    replay_journal,
)

__all__ = [
    "ClusterStore",
    "decode_index_state",
    "encode_index_state",
    "SnapshotSections",
    "FaultPlan",
    "FaultyIO",
    "InjectedCrash",
    "inject_faults",
    "atomic_write_bytes",
    "atomic_write_json",
    "JournalReader",
    "JournalWriter",
    "read_journal",
    "truncate_torn_tail",
    "read_snapshot",
    "snapshot_version",
    "try_read_snapshot",
    "write_snapshot",
    "CorpusStore",
    "RecoveredStack",
    "RecoveryResult",
    "register_checkpoint_store",
    "replay_journal",
]
