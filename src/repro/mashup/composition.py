"""Mashup composition: wiring, execution and synchronisation.

A :class:`Mashup` is a dataflow graph of components: connections route the
payload of an output port to an input port of another component.  Executing
the composition runs the components in topological order, collects every
viewer's render state into a :class:`DashboardState` and keeps the event
bus attached so selections can be propagated afterwards (the list/map
synchronisation of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.errors import CompositionError, UnknownComponentError, WiringError
from repro.mashup.component import Component
from repro.mashup.events import Event, EventBus
from repro.mashup.viewers import SELECTION_TOPIC, _BaseViewer

__all__ = ["Connection", "SyncLink", "DashboardState", "Mashup"]


@dataclass(frozen=True)
class Connection:
    """A directed connection between an output port and an input port."""

    from_component: str
    from_port: str
    to_component: str
    to_port: str

    def to_dict(self) -> dict[str, str]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "from_component": self.from_component,
            "from_port": self.from_port,
            "to_component": self.to_component,
            "to_port": self.to_port,
        }


@dataclass(frozen=True)
class SyncLink:
    """Declares that two viewers belong to the same synchronisation group."""

    group: str
    viewer_ids: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {"group": self.group, "viewer_ids": list(self.viewer_ids)}


@dataclass
class DashboardState:
    """The rendered state of every viewer after executing the composition."""

    views: dict[str, dict[str, Any]] = field(default_factory=dict)
    outputs: dict[str, dict[str, Any]] = field(default_factory=dict)

    def view(self, component_id: str) -> dict[str, Any]:
        """Render state of one viewer."""
        try:
            return self.views[component_id]
        except KeyError as exc:
            raise UnknownComponentError(component_id) from exc

    def output(self, component_id: str, port: str) -> Any:
        """Raw output payload of any component port."""
        try:
            return self.outputs[component_id][port]
        except KeyError as exc:
            raise CompositionError(
                f"no output recorded for {component_id!r}.{port!r}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        """Serialise the viewer states (raw outputs are not serialised)."""
        return {"views": {key: dict(value) for key, value in self.views.items()}}


class Mashup:
    """A user-composed dashboard: components, wiring and synchronisation."""

    def __init__(self, name: str = "mashup") -> None:
        self.name = name
        self._components: dict[str, Component] = {}
        self._connections: list[Connection] = []
        self._sync_links: list[SyncLink] = []
        self._bus = EventBus()
        self._last_state: Optional[DashboardState] = None

    # -- construction -----------------------------------------------------------------

    @property
    def bus(self) -> EventBus:
        """The composition's event bus."""
        return self._bus

    def add(self, component: Component) -> Component:
        """Add a component to the composition and attach it to the bus."""
        if component.component_id in self._components:
            raise CompositionError(
                f"duplicate component identifier: {component.component_id!r}"
            )
        component.attach_bus(self._bus)
        self._bus.subscribe(SELECTION_TOPIC, component.on_event)
        self._components[component.component_id] = component
        return component

    def component(self, component_id: str) -> Component:
        """Return a component by identifier."""
        try:
            return self._components[component_id]
        except KeyError as exc:
            raise UnknownComponentError(component_id) from exc

    def components(self) -> list[Component]:
        """Return every component in insertion order."""
        return list(self._components.values())

    def connect(
        self,
        from_component: str,
        from_port: str,
        to_component: str,
        to_port: str,
    ) -> Connection:
        """Wire an output port to an input port, validating both ends."""
        source = self.component(from_component)
        target = self.component(to_component)
        if from_port not in source.output_port_names():
            raise WiringError(
                f"component {from_component!r} has no output port {from_port!r}"
            )
        if to_port not in target.input_port_names():
            raise WiringError(
                f"component {to_component!r} has no input port {to_port!r}"
            )
        for existing in self._connections:
            if existing.to_component == to_component and existing.to_port == to_port:
                raise WiringError(
                    f"input port {to_component!r}.{to_port!r} is already connected"
                )
        connection = Connection(from_component, from_port, to_component, to_port)
        self._connections.append(connection)
        return connection

    def synchronize(self, group: str, viewer_ids: Iterable[str]) -> SyncLink:
        """Put viewers in the same selection-synchronisation group."""
        ids = tuple(viewer_ids)
        if len(ids) < 2:
            raise CompositionError("a sync group needs at least two viewers")
        for viewer_id in ids:
            component = self.component(viewer_id)
            if not isinstance(component, _BaseViewer):
                raise CompositionError(
                    f"component {viewer_id!r} is not a viewer and cannot be synchronised"
                )
            component._sync_group = group
        link = SyncLink(group=group, viewer_ids=ids)
        self._sync_links.append(link)
        return link

    @property
    def connections(self) -> list[Connection]:
        """The declared connections."""
        return list(self._connections)

    @property
    def sync_links(self) -> list[SyncLink]:
        """The declared synchronisation groups."""
        return list(self._sync_links)

    # -- execution --------------------------------------------------------------------------

    def _execution_order(self) -> list[str]:
        """Topological order of the components (raises on cycles)."""
        incoming: dict[str, set[str]] = {name: set() for name in self._components}
        for connection in self._connections:
            incoming[connection.to_component].add(connection.from_component)

        order: list[str] = []
        ready = sorted(name for name, deps in incoming.items() if not deps)
        remaining = {name: set(deps) for name, deps in incoming.items() if deps}
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for name, deps in list(remaining.items()):
                deps.discard(current)
                if not deps:
                    newly_ready.append(name)
                    del remaining[name]
            ready.extend(sorted(newly_ready))
        if remaining:
            raise CompositionError(
                "the composition contains a cycle involving: "
                + ", ".join(sorted(remaining))
            )
        return order

    def execute(self) -> DashboardState:
        """Run the composition and return the dashboard state."""
        if not self._components:
            raise CompositionError("the composition has no components")

        outputs: dict[str, dict[str, Any]] = {}
        state = DashboardState()
        for component_id in self._execution_order():
            component = self._components[component_id]
            inputs: dict[str, Any] = {}
            for connection in self._connections:
                if connection.to_component != component_id:
                    continue
                upstream = outputs.get(connection.from_component, {})
                if connection.from_port not in upstream:
                    raise CompositionError(
                        f"component {connection.from_component!r} produced no output "
                        f"on port {connection.from_port!r}"
                    )
                inputs[connection.to_port] = upstream[connection.from_port]
            produced = dict(component.process(inputs))
            outputs[component_id] = produced
            if isinstance(component, _BaseViewer):
                state.views[component_id] = component.render()
        state.outputs = outputs
        self._last_state = state
        return state

    # -- synchronisation ---------------------------------------------------------------------

    def select(self, viewer_id: str, item_id: str) -> DashboardState:
        """Select an item in a viewer and propagate it to its sync group.

        The composition must have been executed at least once.  Returns a
        refreshed dashboard state (re-rendering every viewer).
        """
        if self._last_state is None:
            raise CompositionError("execute() must run before select()")
        viewer = self.component(viewer_id)
        if not isinstance(viewer, _BaseViewer):
            raise CompositionError(f"component {viewer_id!r} is not a viewer")
        viewer.select(item_id)
        refreshed = DashboardState(outputs=self._last_state.outputs)
        for component_id, component in self._components.items():
            if isinstance(component, _BaseViewer):
                refreshed.views[component_id] = component.render()
        self._last_state = refreshed
        return refreshed

    # -- description -------------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Describe the composition (components, wiring, sync groups)."""
        return {
            "name": self.name,
            "components": [component.describe() for component in self.components()],
            "connections": [connection.to_dict() for connection in self._connections],
            "sync_links": [link.to_dict() for link in self._sync_links],
        }
