"""Columnar assessment core: scalar-vs-columnar bit-equality.

The columnar kernels (:mod:`repro.core.columnar`, the ``*_columns``
hooks on the normalisers, :func:`repro.core.scoring.build_quality_score_columns`)
must reproduce the preserved scalar pipeline **exactly** — bit-for-bit
float equality, no tolerance — including across the degenerate shapes
where vectorised math likes to diverge: single subjects, all-identical
measure values (the near-zero-std guard), and empty inputs.  Non-finite
measures are rejected up front (:func:`ensure_finite_columns`) so NaN
can never poison a column silently.

The mutation-stream class mirrors ``tests/test_incremental_assessment.py``
one level down: a long-lived model's incrementally patched *columns*
must equal a fresh model's from-scratch columns after every event.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import (
    SortedRankKeys,
    columns_from_vectors,
    ensure_finite_columns,
    vectors_from_columns,
)
from repro.core.measures import source_measure_registry
from repro.core.normalization import (
    BenchmarkNormalizer,
    MinMaxNormalizer,
    ZScoreNormalizer,
    collect_reference_values,
)
from repro.core.scoring import (
    build_quality_score_columns,
    build_quality_scores,
    uniform_scheme,
)
from repro.core.source_quality import SourceQualityModel
from repro.errors import AssessmentError, NormalizationError
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.models import Discussion, Post, Source

REGISTRY = source_measure_registry()
MEASURES = REGISTRY.names()


def _vectors_from_seed(count: int, seed: int) -> dict[str, dict[str, float]]:
    """Deterministic raw-measure vectors with realistic spreads."""
    rng = np.random.default_rng(seed)
    return {
        f"s{i:03d}": {
            name: float(rng.uniform(0.0, 50.0)) for name in MEASURES
        }
        for i in range(count)
    }


def _normalizers():
    return [
        BenchmarkNormalizer(REGISTRY),
        MinMaxNormalizer(REGISTRY),
        ZScoreNormalizer(REGISTRY),
    ]


def _assert_scalar_columnar_equal(raw_vectors, make_normalizer) -> None:
    """Fit + normalise + score + rank both ways; every float must match."""
    scheme = uniform_scheme(REGISTRY)

    scalar_norm = make_normalizer()
    scalar_norm.fit(collect_reference_values(raw_vectors.values()))
    normalized = scalar_norm.normalize_many(raw_vectors)
    scores = build_quality_scores(
        raw_vectors, normalized, registry=REGISTRY, scheme=scheme
    )
    scalar_order = [
        s.subject_id
        for s in sorted(scores.values(), key=lambda s: (-s.overall, s.subject_id))
    ]

    columnar_norm = make_normalizer()
    subject_ids, measures, raw_columns = columns_from_vectors(raw_vectors, MEASURES)
    ensure_finite_columns(raw_columns)
    columnar_norm.fit_columns(raw_columns)
    assert columnar_norm.fit_signature() == scalar_norm.fit_signature()
    normalized_columns = columnar_norm.normalize_columns(raw_columns)
    overall, dims, attrs = build_quality_score_columns(
        subject_ids, measures, normalized_columns, REGISTRY, scheme
    )
    rank = SortedRankKeys.from_scores(overall, subject_ids)

    assert list(rank.order()) == scalar_order
    for row, subject_id in enumerate(subject_ids):
        score = scores[subject_id]
        assert overall[row] == score.overall  # exact
        for name in measures:
            assert normalized_columns[name][row] == score.normalized_values[name]
        for dimension, column in dims.items():
            assert column[row] == score.dimension_scores[dimension]
        for attribute, column in attrs.items():
            assert column[row] == score.attribute_scores[attribute]


class TestKernelEquality:
    @pytest.mark.parametrize("normalizer", _normalizers(), ids=lambda n: type(n).__name__)
    def test_seeded_population(self, normalizer):
        raw = _vectors_from_seed(64, seed=7)
        _assert_scalar_columnar_equal(raw, lambda: type(normalizer)(REGISTRY))

    @pytest.mark.parametrize("normalizer", _normalizers(), ids=lambda n: type(n).__name__)
    def test_single_subject(self, normalizer):
        raw = _vectors_from_seed(1, seed=11)
        _assert_scalar_columnar_equal(raw, lambda: type(normalizer)(REGISTRY))

    @pytest.mark.parametrize("normalizer", _normalizers(), ids=lambda n: type(n).__name__)
    def test_all_identical_values(self, normalizer):
        # Constant columns: zero spread in MinMax, near-zero std in ZScore
        # (the PR-1 guard pins these to deterministic fallbacks), identical
        # benchmark picks in BenchmarkNormalizer.
        raw = {
            f"s{i}": {name: 3.25 for name in MEASURES} for i in range(8)
        }
        _assert_scalar_columnar_equal(raw, lambda: type(normalizer)(REGISTRY))

    def test_near_zero_std(self):
        base = {name: 1.0 for name in MEASURES}
        raw = {
            "s0": dict(base),
            "s1": {name: value + 1e-13 for name, value in base.items()},
            "s2": dict(base),
        }
        _assert_scalar_columnar_equal(raw, lambda: ZScoreNormalizer(REGISTRY))


class TestFitStateTransport:
    """The pre-merge contract: fit states travel, order-invariant fits merge."""

    @pytest.mark.parametrize("normalizer", _normalizers(), ids=lambda n: type(n).__name__)
    def test_fit_state_round_trip_normalizes_identically(self, normalizer):
        raw = _vectors_from_seed(24, seed=13)
        fitted = type(normalizer)(REGISTRY)
        fitted.fit(collect_reference_values(raw.values()))
        state = fitted.fit_state()
        assert state is not None
        loaded = type(normalizer)(REGISTRY)
        loaded.load_fit_state(state)
        for vector in raw.values():
            for name, value in vector.items():
                assert loaded.normalize(name, value) == fitted.normalize(
                    name, value
                )  # exact

    @pytest.mark.parametrize(
        "normalizer",
        [BenchmarkNormalizer(REGISTRY), MinMaxNormalizer(REGISTRY)],
        ids=lambda n: type(n).__name__,
    )
    def test_order_invariant_fit_survives_sorted_shard_merge(self, normalizer):
        # Fitting on np.sort of the pooled column equals fitting on the
        # corpus-order column — the identity the coordinator's pre-merge
        # fit relies on (z-score is excluded: fit_is_order_invariant is
        # False and the coordinator falls back to the full gather).
        assert type(normalizer)(REGISTRY).fit_is_order_invariant
        raw = _vectors_from_seed(32, seed=17)
        _, measures, columns = columns_from_vectors(raw, tuple(MEASURES))
        direct = type(normalizer)(REGISTRY)
        direct.fit_columns(columns)
        sorted_columns = {name: np.sort(columns[name]) for name in measures}
        merged = type(normalizer)(REGISTRY)
        merged.fit_columns(sorted_columns)
        assert merged.fit_state() == direct.fit_state()

    def test_z_score_fit_is_declared_order_dependent(self):
        assert not ZScoreNormalizer(REGISTRY).fit_is_order_invariant

    def test_load_rejects_foreign_strategy(self):
        fitted = BenchmarkNormalizer(REGISTRY)
        fitted.fit(collect_reference_values(_vectors_from_seed(8, seed=3).values()))
        state = fitted.fit_state()
        with pytest.raises(NormalizationError):
            MinMaxNormalizer(REGISTRY).load_fit_state(state)


class TestDegenerateShapes:
    def test_empty_corpus_is_rejected(self, travel_domain):
        model = SourceQualityModel(travel_domain)
        with pytest.raises(AssessmentError):
            model.assess_corpus(SourceCorpus())

    def test_nan_and_inf_are_rejected(self):
        for poison in (float("nan"), float("inf"), float("-inf")):
            columns = {"m": np.asarray([1.0, poison, 2.0])}
            with pytest.raises(AssessmentError):
                ensure_finite_columns(columns)

    def test_ragged_vectors_are_rejected(self):
        vectors = {"a": {"m1": 1.0, "m2": 2.0}, "b": {"m1": 3.0}}
        with pytest.raises(AssessmentError):
            columns_from_vectors(vectors, ["m1", "m2"])

    def test_vectors_round_trip_bit_exactly(self):
        raw = _vectors_from_seed(16, seed=3)
        subject_ids, measures, columns = columns_from_vectors(raw, MEASURES)
        assert vectors_from_columns(subject_ids, measures, columns) == raw


class TestSortedRankKeysSurgery:
    def test_remove_insert_stream_matches_rebuild(self):
        rng = np.random.default_rng(23)
        scores = {f"s{i:02d}": float(rng.uniform(0.0, 1.0)) for i in range(40)}
        # Duplicate scores on purpose: ties must stay ordered by id.
        for i in range(0, 40, 5):
            scores[f"s{i:02d}"] = 0.5
        keys = SortedRankKeys.from_scores(
            np.asarray(list(scores.values())), list(scores)
        )
        for step in range(200):
            subject_id = f"s{int(rng.integers(0, 40)):02d}"
            if subject_id in scores and rng.uniform() < 0.5:
                assert keys.remove(scores.pop(subject_id), subject_id)
            else:
                if subject_id in scores:
                    keys.remove(scores[subject_id], subject_id)
                scores[subject_id] = float(rng.uniform(0.0, 1.0))
                keys.insert(scores[subject_id], subject_id)
            rebuilt = SortedRankKeys.from_scores(
                np.asarray(list(scores.values())), list(scores)
            )
            assert keys.order() == rebuilt.order(), f"diverged at step {step}"


def _grow(source: Source, tag: int) -> None:
    discussion = Discussion(
        discussion_id=f"col-grown-{tag}",
        category="travel",
        title="travel flight resort late breaking",
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"col-grown-post-{tag}",
            author_id="u1",
            day=2.0,
            text="travel flight resort beach hotel",
        )
    )
    source.add_discussion(discussion)


def _extra_source(tag: int) -> Source:
    return SourceGenerator(
        SourceSpec(
            source_id=f"col-extra-{tag}",
            focus_categories=("travel", "food"),
            latent_popularity=0.4 + 0.1 * (tag % 5),
            latent_engagement=0.6,
            discussion_budget=5,
            user_budget=6,
        ),
        seed=59 + tag,
    ).generate()


class TestMutationStreamEquivalence:
    def test_streamed_mutations_stay_bit_identical(self, travel_domain):
        corpus = CorpusGenerator(
            CorpusSpec(source_count=12, seed=41, discussion_budget=6, user_budget=8)
        ).generate()
        model = SourceQualityModel(travel_domain)
        model.rank(corpus)
        for event in range(16):
            kind = event % 4
            if kind == 0:
                corpus.add(_extra_source(event))
            elif kind == 1:
                corpus.remove(corpus.source_ids()[event % len(corpus)])
            elif kind == 2:
                _grow(corpus.sources()[event % len(corpus)], event)
            else:
                source = corpus.sources()[event % len(corpus)]
                post = next(iter(source.posts()), None)
                if post is not None:
                    post.text = f"reworded travel content {event}"
                corpus.touch(source.source_id)

            live = model.assessment_context(corpus)
            fresh = SourceQualityModel(travel_domain).assessment_context(corpus)
            label = f"event {event}"
            assert live.columns.subject_ids == fresh.columns.subject_ids, label
            assert live.columns.ranking_ids() == fresh.columns.ranking_ids(), label
            for name in live.columns.measures:
                assert np.array_equal(
                    live.columns.raw[name], fresh.columns.raw[name]
                ), label
                assert np.array_equal(
                    live.columns.normalized[name], fresh.columns.normalized[name]
                ), label
            assert np.array_equal(live.columns.overall, fresh.columns.overall), label
            assert live.raw_vectors == fresh.raw_vectors, label
            assert live.normalized_vectors == fresh.normalized_vectors, label
        assert model.counters.get("context_patches") == 16
