"""Shared fixtures.

Dataset construction is the slow part of the suite, so corpora, communities
and case-study datasets are built once per session and shared read-only by
the tests that need them.
"""

from __future__ import annotations

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "stress: concurrency stress tests (reader/mutator thread pools; "
        "run them alone with `pytest -m stress`)",
    )
    config.addinivalue_line(
        "markers",
        "shard_stress: cross-process sharding stress tests (spawn worker "
        "process fleets; run them alone with `pytest -m shard_stress`)",
    )


@pytest.fixture
def coordinator_factory():
    """Build :class:`~repro.sharding.ShardCoordinator` fleets with guaranteed reaping.

    Worker processes must never outlive a test — not on assertion
    failure, not on a coordinator that was deliberately wedged by a fault
    scenario.  The factory tracks every coordinator it builds and tears
    all of them down at test exit: close first (graceful shutdown), then
    kill whatever is still running.  Used by the sharded-serving suite
    and the ``make shard-stress`` matrix.
    """
    from repro.sharding import ShardCoordinator

    created: list[ShardCoordinator] = []

    def factory(corpus, shard_count, **kwargs):
        coordinator = ShardCoordinator(corpus, shard_count, **kwargs)
        created.append(coordinator)
        return coordinator

    yield factory
    for coordinator in created:
        try:
            coordinator.close()
        finally:
            for process in coordinator.processes:
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait()

from repro.core.domain import DomainOfInterest, TimeInterval
from repro.datasets.london_twitter import LondonTwitterSpec, build_london_twitter
from repro.datasets.milan_tourism import MilanTourismSpec, build_milan_tourism
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import CorpusGenerator, CorpusSpec, SourceGenerator, SourceSpec
from repro.sources.twitter import MicroblogGenerator, MicroblogSpec


@pytest.fixture(scope="session")
def small_corpus() -> SourceCorpus:
    """A small but fully populated corpus of blogs and forums."""
    return CorpusGenerator(
        CorpusSpec(source_count=12, seed=3, discussion_budget=10, user_budget=12)
    ).generate()


@pytest.fixture(scope="session")
def single_source():
    """One richly populated source."""
    return SourceGenerator(
        SourceSpec(
            source_id="fixture-source",
            focus_categories=("travel", "food"),
            latent_popularity=0.7,
            latent_engagement=0.6,
            discussion_budget=15,
            user_budget=15,
        ),
        seed=11,
    ).generate()


@pytest.fixture(scope="session")
def travel_domain() -> DomainOfInterest:
    """A Domain of Interest over travel/food with a time window."""
    return DomainOfInterest(
        categories=("travel", "food"),
        time_interval=TimeInterval(0.0, 365.0),
        locations=("Milan",),
        name="travel-domain",
    )


@pytest.fixture(scope="session")
def small_community():
    """A small microblog community (fast to analyse exhaustively)."""
    return MicroblogGenerator(
        MicroblogSpec(account_count=60, seed=5, sample_tweet_count=6)
    ).generate()


@pytest.fixture(scope="session")
def london_dataset():
    """A reduced London Twitter dataset (same pipeline, fewer accounts)."""
    return build_london_twitter(LondonTwitterSpec(account_count=240, seed=23))


@pytest.fixture(scope="session")
def milan_dataset():
    """A reduced Milan tourism dataset."""
    return build_milan_tourism(
        MilanTourismSpec(
            microblog_accounts=40,
            review_discussions=15,
            blog_discussions=12,
            noise_sources=2,
        )
    )
