"""Ordinary least squares linear regression with significance tests.

Table 3 of the paper reports, for each factor component, the *direction*
(positive / negative) of its relation with the Google rank and the
significance level of that relation, obtained through linear regressions.
This module provides a small OLS implementation returning coefficients,
standard errors, t statistics and two-sided p-values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import InsufficientDataError, StatisticsError

__all__ = ["LinearRegressionResult", "linear_regression"]


@dataclass(frozen=True)
class LinearRegressionResult:
    """Result of an OLS regression of ``y`` on one or more predictors."""

    predictor_names: tuple[str, ...]
    coefficients: tuple[float, ...]
    intercept: float
    standard_errors: tuple[float, ...]
    t_statistics: tuple[float, ...]
    p_values: tuple[float, ...]
    r_squared: float
    observations: int

    def coefficient(self, name: str) -> float:
        """Return the slope of the named predictor."""
        return self.coefficients[self._index(name)]

    def p_value(self, name: str) -> float:
        """Return the two-sided p-value of the named predictor's slope."""
        return self.p_values[self._index(name)]

    def direction(self, name: str) -> str:
        """Return ``"positive"`` or ``"negative"`` for the named predictor."""
        return "positive" if self.coefficient(name) >= 0 else "negative"

    def is_significant(self, name: str, alpha: float = 0.05) -> bool:
        """True when the named predictor's slope is significant at ``alpha``."""
        return self.p_value(name) < alpha

    def _index(self, name: str) -> int:
        try:
            return self.predictor_names.index(name)
        except ValueError as exc:
            raise StatisticsError(f"unknown predictor: {name!r}") from exc

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "predictors": list(self.predictor_names),
            "coefficients": list(self.coefficients),
            "intercept": self.intercept,
            "standard_errors": list(self.standard_errors),
            "t_statistics": list(self.t_statistics),
            "p_values": list(self.p_values),
            "r_squared": self.r_squared,
            "observations": self.observations,
        }


def linear_regression(
    predictors: Sequence[Sequence[float]] | Sequence[float],
    response: Sequence[float],
    predictor_names: Sequence[str] | None = None,
) -> LinearRegressionResult:
    """Fit ``response ~ intercept + predictors`` by ordinary least squares.

    ``predictors`` may be a single sequence (simple regression) or a
    sequence of columns (multiple regression, one sequence per predictor).
    """
    if response is None or len(response) == 0:
        raise InsufficientDataError("response must not be empty")

    if predictors and isinstance(predictors[0], (int, float)):
        columns = [list(predictors)]  # type: ignore[list-item]
    else:
        columns = [list(column) for column in predictors]  # type: ignore[union-attr]
    if not columns:
        raise StatisticsError("at least one predictor is required")

    names = tuple(predictor_names) if predictor_names else tuple(
        f"x{index}" for index in range(len(columns))
    )
    if len(names) != len(columns):
        raise StatisticsError("predictor_names must match the number of predictors")

    y = np.asarray(list(response), dtype=float)
    n = y.size
    for column in columns:
        if len(column) != n:
            raise StatisticsError("all predictors must have the same length as the response")

    p = len(columns)
    if n <= p + 1:
        raise InsufficientDataError(
            f"need more than {p + 1} observations for {p} predictors, got {n}"
        )

    design = np.column_stack([np.ones(n)] + [np.asarray(column, dtype=float) for column in columns])
    beta, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
    if rank < design.shape[1]:
        raise StatisticsError("design matrix is rank deficient (collinear predictors)")

    fitted = design @ beta
    residuals = y - fitted
    dof = n - (p + 1)
    residual_variance = float(residuals @ residuals) / dof if dof > 0 else 0.0
    covariance = residual_variance * np.linalg.inv(design.T @ design)
    standard_errors = np.sqrt(np.diag(covariance))

    t_stats = np.zeros(p + 1)
    p_values = np.ones(p + 1)
    for index in range(p + 1):
        if standard_errors[index] > 0:
            t_stats[index] = beta[index] / standard_errors[index]
            p_values[index] = 2.0 * float(
                scipy_stats.t.sf(abs(t_stats[index]), dof)
            )

    total_ss = float(((y - y.mean()) ** 2).sum())
    residual_ss = float((residuals**2).sum())
    r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 0.0

    return LinearRegressionResult(
        predictor_names=names,
        coefficients=tuple(float(value) for value in beta[1:]),
        intercept=float(beta[0]),
        standard_errors=tuple(float(value) for value in standard_errors[1:]),
        t_statistics=tuple(float(value) for value in t_stats[1:]),
        p_values=tuple(float(value) for value in p_values[1:]),
        r_squared=r_squared,
        observations=n,
    )
