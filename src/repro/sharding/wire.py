"""Framed JSON messaging between the coordinator and shard workers.

The wire format reuses the persistence layer's record framing
(:mod:`repro.persistence.format`) byte for byte::

    [u32 payload length][u32 CRC-32 of payload][payload bytes]

with a compact-JSON object as the payload.  Little-endian, CRC-32 via
``zlib.crc32`` — the same framing the snapshot and journal files use, so
one codec (and one set of torn-frame semantics) covers both disk and
wire.  Requests carry ``{"id": n, "kind": "...", ...}``; responses carry
``{"id": n, "ok": true, "result": ...}`` or ``{"id": n, "ok": false,
"error": {"type": ..., "message": ...}}``.

Failure semantics of :class:`WireConnection`:

* a clean EOF at a frame boundary — and an EOF *inside* a frame (the
  peer died mid-send; the stream equivalent of a journal's torn tail) —
  both return ``None`` from :meth:`WireConnection.recv`: the peer is
  gone and the connection is unusable either way;
* a CRC mismatch or an implausible length on a *live* stream raises
  :class:`~repro.errors.WireProtocolError` — framing corruption between
  two live processes is a protocol violation, never expected;
* a send to a dead peer raises :class:`~repro.errors.WireProtocolError`
  with the OS error as its cause.

Sends are serialised under a per-connection lock so a coordinator
flushing events from a mutating thread can never interleave frames with
a read-path request.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Optional

from repro.errors import WireProtocolError
from repro.persistence.format import (
    MAX_PAYLOAD_BYTES,
    RECORD_HEADER,
    json_record,
    pack_record,
    read_record,
)

__all__ = ["WireConnection"]

#: Default socket timeout: long enough for a worker paying a cold
#: measure pass over a large shard, short enough that a wedged peer
#: fails the test run instead of hanging it.
DEFAULT_TIMEOUT_SECONDS = 120.0


class WireConnection:
    """One framed-JSON duplex channel over a connected stream socket."""

    def __init__(
        self, sock: socket.socket, *, timeout: Optional[float] = DEFAULT_TIMEOUT_SECONDS
    ) -> None:
        self._socket = sock
        self._socket.settimeout(timeout)
        self._send_lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def fileno(self) -> int:
        """The underlying socket's file descriptor."""
        return self._socket.fileno()

    # -- sending ---------------------------------------------------------------------

    def send(self, message: dict[str, Any]) -> None:
        """Frame and send one JSON message (serialised per connection)."""
        frame = pack_record(json_record(message))
        try:
            with self._send_lock:
                self._socket.sendall(frame)
        except OSError as exc:
            raise WireProtocolError(f"send failed, peer is gone: {exc}") from exc

    # -- receiving -------------------------------------------------------------------

    def _recv_exact(self, count: int) -> Optional[bytes]:
        """Read exactly ``count`` bytes; None when the peer closed first."""
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            try:
                chunk = self._socket.recv(remaining)
            except (ConnectionResetError, BrokenPipeError):
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Optional[dict[str, Any]]:
        """Receive one message; None when the peer is gone (EOF / torn frame)."""
        header = self._recv_exact(RECORD_HEADER.size)
        if header is None:
            return None
        length, _checksum = RECORD_HEADER.unpack(header)
        if length > MAX_PAYLOAD_BYTES:
            raise WireProtocolError(f"implausible wire frame length {length}")
        payload = self._recv_exact(length)
        if payload is None:
            return None
        decoded = read_record(header + payload, 0)
        if decoded is None:
            raise WireProtocolError("wire frame CRC mismatch")
        try:
            message = json.loads(decoded[0].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireProtocolError(f"undecodable wire message: {exc}") from exc
        if not isinstance(message, dict):
            raise WireProtocolError(
                f"wire message must be a JSON object, got {type(message).__name__}"
            )
        return message

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - close failures are ignorable
                pass
