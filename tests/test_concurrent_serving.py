"""Concurrent serving core: bus, queues, rwlock and the stress contract.

Four layers are under test:

* :class:`~repro.sources.diffing.InvalidationBus` — one shared channel
  per corpus; typed subscriptions (source/op filters) coalesce events
  per consumer and never lose a drain-raced mutation.
* :class:`~repro.serving.rwlock.ReadWriteLock` — shared readers,
  exclusive writers, reentrancy, upgrade rejection, writer preference.
* :class:`~repro.serving.queues.ConsumerQueue` via the scheduler —
  per-consumer independence: draining one queue neither requires nor
  disturbs another; a closed scheduler is fully detached from the bus
  (the PR 5 unsubscribe regression).
* the stress contract (``@pytest.mark.stress``): reader threads per
  consumer against a live mutation stream — no exceptions, monotonic
  corpus versions, and **bit-identity with a serial oracle at quiesce**.
"""

from __future__ import annotations

import threading
import time

import pytest

from _timing import wait_until
from repro.core.contributor_quality import ContributorQualityModel
from repro.core.source_quality import SourceQualityModel
from repro.errors import ServingError
from repro.perf.cache import LRUCache
from repro.search.engine import SearchEngine
from repro.serving import EagerRefreshScheduler, ReadWriteLock, RefreshMode
from repro.sources.corpus import SourceCorpus
from repro.sources.diffing import CorpusChangeTracker, SourceChangeTracker
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.models import Discussion, Post
from repro.sources.webstats import AlexaLikeService


def _fresh_corpus(count: int = 8, seed: int = 101) -> SourceCorpus:
    return CorpusGenerator(
        CorpusSpec(source_count=count, seed=seed, discussion_budget=6, user_budget=8)
    ).generate()


def _extra_source(source_id: str, seed: int = 61):
    return SourceGenerator(
        SourceSpec(
            source_id=source_id,
            focus_categories=("travel", "food"),
            latent_popularity=0.6,
            latent_engagement=0.5,
            discussion_budget=5,
            user_budget=6,
        ),
        seed=seed,
    ).generate()


def _grow(source, text: str) -> None:
    discussion = Discussion(
        discussion_id=f"conc-grown-{source.content_revision}",
        category="travel",
        title=text,
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"conc-grown-post-{source.content_revision}",
            author_id="u1",
            day=2.0,
            text=text,
        )
    )
    source.add_discussion(discussion)


class TestInvalidationBus:
    def test_bus_is_shared_per_corpus(self):
        corpus = _fresh_corpus(3)
        assert corpus.invalidation_bus() is corpus.invalidation_bus()

    def test_subscription_coalesces_a_burst(self):
        corpus = _fresh_corpus(4)
        subscription = corpus.invalidation_bus().subscribe(name="t")
        ids = corpus.source_ids()
        for _ in range(3):
            corpus.touch(ids[0])
        corpus.touch(ids[1])
        pending = subscription.drain()
        assert pending is not None
        assert pending.events == 4
        assert pending.source_ids == {ids[0], ids[1]}
        assert pending.ops == {"touch"}
        assert pending.last_version == corpus.version
        assert subscription.drain() is None  # cleared
        assert not subscription.dirty

    def test_source_filter_excludes_other_sources(self):
        corpus = _fresh_corpus(4)
        watched = corpus.source_ids()[0]
        other = corpus.source_ids()[1]
        subscription = corpus.invalidation_bus().subscribe(
            name="filtered", source_ids=(watched,)
        )
        corpus.touch(other)
        assert not subscription.dirty
        assert subscription.peek() is None
        corpus.touch(watched)
        assert subscription.dirty
        assert subscription.drain().source_ids == {watched}

    def test_op_filter(self):
        corpus = _fresh_corpus(4)
        subscription = corpus.invalidation_bus().subscribe(
            name="adds-only", ops=("add",)
        )
        corpus.touch(corpus.source_ids()[0])
        assert not subscription.dirty
        corpus.add(_extra_source("bus-op-extra"))
        assert subscription.drain().ops == {"add"}

    def test_unfiltered_subscription_cross_checks_version(self):
        """A version bump the bus never delivered must still read dirty."""
        corpus = _fresh_corpus(3)
        subscription = corpus.invalidation_bus().subscribe(name="xcheck")
        corpus.unsubscribe(corpus.invalidation_bus()._publish)  # sever the channel
        corpus.touch(corpus.source_ids()[0])
        assert subscription.peek() is None  # the event never arrived...
        assert subscription.dirty  # ...but the version cross-check fires

    def test_drain_then_event_redirties(self):
        """The drain-build-swap pattern can never lose a concurrent event."""
        corpus = _fresh_corpus(3)
        subscription = corpus.invalidation_bus().subscribe(name="redirty")
        corpus.touch(corpus.source_ids()[0])
        assert subscription.drain() is not None
        corpus.touch(corpus.source_ids()[1])  # lands "mid-build"
        assert subscription.dirty
        assert subscription.drain().source_ids == {corpus.source_ids()[1]}

    def test_dropped_subscription_is_pruned(self):
        import gc

        corpus = _fresh_corpus(3)
        bus = corpus.invalidation_bus()
        subscription = bus.subscribe(name="doomed")
        assert bus.subscription_count() == 1
        del subscription
        gc.collect()
        assert bus.subscription_count() == 0

    def test_closed_subscription_records_nothing(self):
        corpus = _fresh_corpus(3)
        subscription = corpus.invalidation_bus().subscribe(name="closed")
        subscription.close()
        corpus.touch(corpus.source_ids()[0])
        assert subscription.peek() is None
        assert corpus.invalidation_bus().subscription_count() == 0

    def test_force_dirty_restores_consumed_staleness(self):
        corpus = _fresh_corpus(3)
        subscription = corpus.invalidation_bus().subscribe(name="failed")
        corpus.touch(corpus.source_ids()[0])
        subscription.drain()
        subscription.force_dirty()  # the patch failed: do not lose the event
        assert subscription.dirty

    def test_trackers_ride_the_shared_bus(self):
        corpus = _fresh_corpus(3)
        tracker = CorpusChangeTracker(corpus)
        assert not tracker.dirty
        corpus.touch(corpus.source_ids()[0])
        assert tracker.dirty
        tracker.mark_clean()
        assert not tracker.dirty
        assert tracker.corpus is corpus

    def test_source_change_tracker_revision_cross_check(self):
        source = _extra_source("tracker-source")
        tracker = SourceChangeTracker(source)
        assert not tracker.dirty
        revision = source.content_revision
        _grow(source, "travel tracker growth")
        assert tracker.dirty
        # Marking clean at the *pre-mutation* revision keeps it dirty: the
        # state derived from that revision is stale.
        tracker.mark_clean(revision)
        assert tracker.dirty
        tracker.mark_clean()
        assert not tracker.dirty


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(4, timeout=5.0)  # 3 readers + the main thread
        release = threading.Event()

        def reader():
            with lock.read_lock():
                entered.wait()  # all three readers inside simultaneously
                release.wait(timeout=5.0)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        entered.wait()  # concurrent read side proven
        acquired = []

        def writer():
            with lock.write_lock():
                acquired.append(True)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        wait_until(
            lambda: lock._waiting_writers == 1,
            message="writer to register as waiting",
        )
        assert not acquired  # writer blocked while readers hold
        release.set()
        writer_thread.join(timeout=5.0)
        assert acquired
        for thread in readers:
            thread.join(timeout=5.0)

    def test_reentrant_read_and_write(self):
        lock = ReadWriteLock()
        with lock.write_lock():
            with lock.write_lock():  # write-in-write
                with lock.read_lock():  # read-under-write
                    assert lock.write_held and lock.read_held
        with lock.read_lock():
            with lock.read_lock():  # read-in-read
                assert lock.read_held
        assert not lock.read_held and not lock.write_held

    def test_upgrade_is_rejected(self):
        lock = ReadWriteLock()
        with lock.read_lock():
            with pytest.raises(ServingError):
                lock.acquire_write()

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        reader_in = threading.Event()
        reader_release = threading.Event()
        order: list[str] = []

        def holder():
            with lock.read_lock():
                reader_in.set()
                reader_release.wait(timeout=5.0)

        def writer():
            with lock.write_lock():
                order.append("writer")

        def late_reader():
            with lock.read_lock():
                order.append("late-reader")

        holder_thread = threading.Thread(target=holder)
        holder_thread.start()
        reader_in.wait(timeout=5.0)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        wait_until(
            lambda: lock._waiting_writers == 1,
            message="writer to queue behind the read holder",
        )
        late_thread = threading.Thread(target=late_reader)
        late_thread.start()
        # The late reader is provably *queued* (not merely slow) once it
        # parks on the lock's condition alongside the waiting writer.
        wait_until(
            lambda: len(lock._condition._waiters) >= 2,
            message="late reader to park behind the waiting writer",
        )
        assert order == []  # late reader queues behind the waiting writer
        reader_release.set()
        writer_thread.join(timeout=5.0)
        late_thread.join(timeout=5.0)
        holder_thread.join(timeout=5.0)
        assert order == ["writer", "late-reader"]

    def test_mismatched_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(ServingError):
            lock.release_read()
        with pytest.raises(ServingError):
            lock.release_write()


class TestLRUCacheThreadSafety:
    def test_concurrent_get_put_stays_bounded_and_quiet(self):
        cache = LRUCache(maxsize=32)
        errors: list[BaseException] = []

        def hammer(offset: int) -> None:
            try:
                for index in range(2000):
                    key = (offset + index) % 64
                    cache.put(key, index)
                    cache.get(key)
                    cache.get_or_create((key, "derived"), lambda: index)
                    if index % 97 == 0:
                        cache.invalidate(key)
                    if index % 193 == 0:
                        cache.keys()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i * 7,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0


class TestSchedulerQueues:
    def test_closed_scheduler_receives_no_notifications(self):
        """PR 5 regression: ``close()`` must actually detach the scheduler
        (and every consumer queue) from the corpus's invalidation bus —
        a closed scheduler keeps no listener registration at all."""
        corpus = _fresh_corpus(4)
        bus = corpus.invalidation_bus()
        baseline = bus.subscription_count()
        scheduler = EagerRefreshScheduler(corpus, RefreshMode.DEFERRED)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        scheduler.register_search_engine(engine, name="engine")
        # marker + one consumer queue (+ the engine's own subscription,
        # which is not the scheduler's to close).
        assert bus.subscription_count() == baseline + 3
        scheduler.close()
        assert bus.subscription_count() == baseline + 1  # only the engine's
        notifications = scheduler.counters.get("notifications")
        corpus.touch(corpus.source_ids()[0])
        assert scheduler.counters.get("notifications") == notifications
        assert not scheduler.pending
        assert scheduler.queue("engine").subscription.peek() is None
        scheduler.close()  # idempotent

    def test_drain_one_queue_leaves_the_other_pending(self):
        corpus = _fresh_corpus(6)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        slow_calls: list[int] = []
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            scheduler.register("slow", lambda: slow_calls.append(1))
            corpus.touch(corpus.source_ids()[0])
            assert scheduler.drain("engine") == 1
            assert not scheduler.queue("engine").pending
            assert scheduler.queue("slow").pending  # untouched by the drain
            assert not slow_calls
            assert scheduler.pending  # scheduler-level marker still set
            scheduler.flush()
            assert slow_calls == [1]

    def test_drain_unknown_name_raises(self):
        corpus = _fresh_corpus(3)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            with pytest.raises(ServingError):
                scheduler.drain("nobody")

    def test_drain_propagates_consumer_error(self):
        corpus = _fresh_corpus(3)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register("broken", lambda: 1 / 0)
            corpus.touch(corpus.source_ids()[0])
            with pytest.raises(ServingError):
                scheduler.drain("broken")
            # The failed drain restored the staleness: the queue is still
            # pending, so the consumer falls back to (lazy) retry.
            assert scheduler.queue("broken").pending

    def test_one_consumers_patch_does_not_block_anothers_reads(self):
        """Cross-consumer independence, the tentpole contract: while one
        consumer's refresh is stalled mid-patch, another consumer keeps
        answering reads."""
        corpus = _fresh_corpus(6)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        stall = threading.Event()
        stalled = threading.Event()

        def slow_refresh() -> None:
            stalled.set()
            assert stall.wait(timeout=10.0)

        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register("slow", slow_refresh)
            scheduler.register_search_engine(engine, name="engine")
            corpus.touch(corpus.source_ids()[0])
            drainer = threading.Thread(target=lambda: scheduler.drain("slow"))
            drainer.start()
            assert stalled.wait(timeout=10.0)  # slow consumer mid-patch
            try:
                results = engine.search("travel flight resort", 5)
                assert results  # the engine read completed while stalled
                assert scheduler.drain("engine") in (0, 1)
            finally:
                stall.set()
                drainer.join(timeout=10.0)

    def test_composite_read_lock_allows_reads_and_blocks_swaps(self):
        corpus = _fresh_corpus(5)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            with scheduler.read_lock():
                assert engine.search("travel flight resort", 5)
            with scheduler.write_lock():
                # The holder itself may still read and refresh (reentrant).
                assert engine.search("travel flight resort", 5)
            corpus.touch(corpus.source_ids()[0])
            scheduler.flush()
            assert not scheduler.pending

    def test_composite_lock_unwinds_on_acquisition_failure(self):
        """A mid-walk acquisition failure (read→write upgrade rejection)
        must release every lock already taken — a leaked refresh gate
        would deadlock all future drains of that consumer."""
        corpus = _fresh_corpus(3)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            with scheduler.read_lock():
                with pytest.raises(ServingError):
                    scheduler.write_lock().__enter__()  # upgrade rejected
            # Nothing leaked: the exclusive side is re-acquirable and the
            # consumer still drains.
            with scheduler.write_lock():
                pass
            corpus.touch(corpus.source_ids()[0])
            assert scheduler.drain("engine") == 1

    def test_failed_model_patch_restores_staleness(self, travel_domain):
        """A consumer refresh that raises mid-patch must leave the model
        dirty: the next read retries instead of serving the pre-mutation
        context as clean."""
        corpus = _fresh_corpus(5)
        model = SourceQualityModel(travel_domain)
        before = model.assessment_context(corpus)
        corpus.touch(corpus.source_ids()[0])

        original = model._patch_context
        calls: list[int] = []

        def broken(*args, **kwargs):
            calls.append(1)
            raise RuntimeError("simulated mid-patch failure")

        model._patch_context = broken
        try:
            with pytest.raises(RuntimeError):
                model.assessment_context(corpus)
        finally:
            model._patch_context = original
        after = model.assessment_context(corpus)  # retries, does not serve stale
        assert calls, "the broken patch path was exercised"
        rebuilt = SourceQualityModel(travel_domain).assessment_context(corpus)
        assert after.normalized_vectors == rebuilt.normalized_vectors
        assert [a.source_id for a in after.ranking] == [
            a.source_id for a in rebuilt.ranking
        ]
        assert after is not before

    def test_failed_community_patch_restores_staleness(self, travel_domain):
        corpus = _fresh_corpus(4)
        watched = corpus.sources()[0]
        model = ContributorQualityModel(travel_domain)
        model.assess_source(watched)
        _grow(watched, "travel regression growth")

        original = model._patch_community

        def broken(*args, **kwargs):
            raise RuntimeError("simulated mid-walk failure")

        model._patch_community = broken
        try:
            with pytest.raises(RuntimeError):
                model.assess_source(watched)
        finally:
            model._patch_community = original
        after = model.assess_source(watched)
        oracle = ContributorQualityModel(travel_domain).assess_source(watched)
        assert {u: a.overall for u, a in after.items()} == {
            u: a.overall for u, a in oracle.items()
        }

    def test_sync_mode_mutation_races_composite_write_lock(self):
        """PR 5 regression: corpus notifications are delivered outside the
        mutation lock, so a sync-mode patch (which takes consumer refresh
        gates on the mutating thread) cannot deadlock against a composite
        write-lock holder mutating the corpus."""
        corpus = _fresh_corpus(4)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        with EagerRefreshScheduler(corpus, RefreshMode.SYNC) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            done = threading.Event()

            def other_mutator() -> None:
                corpus.touch(corpus.source_ids()[1])  # sync patch inline
                done.set()

            with scheduler.write_lock():
                thread = threading.Thread(target=other_mutator)
                thread.start()
                # The holder itself mutates the corpus: under lock-held
                # delivery this deadlocked (mutation lock vs refresh gate).
                corpus.touch(corpus.source_ids()[0])
                assert engine.search("travel flight resort", 3) is not None
            assert done.wait(timeout=10.0), "sync-mode mutator deadlocked"
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_lock_alias_is_deprecated_but_works(self):
        corpus = _fresh_corpus(3)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            with pytest.warns(DeprecationWarning):
                composite = scheduler.lock
            with composite:
                assert engine.search("travel flight resort", 3)


def _serial_oracle(domain, corpus, watched_source, query):
    """Fresh single-threaded consumers over the quiesced corpus."""
    engine = SearchEngine(corpus, panel=AlexaLikeService())
    model = SourceQualityModel(domain)
    contributor = ContributorQualityModel(domain)
    return (
        engine.search(query, 10),
        engine.static_rank(),
        model.assessment_context(corpus),
        contributor.assess_source(watched_source),
    )


@pytest.mark.stress
class TestConcurrentServingStress:
    def test_readers_and_mutators_converge_to_serial_oracle(self, travel_domain):
        """The acceptance stress contract: mutator + per-consumer reader
        threads; no exceptions, monotonic observed corpus versions, and
        bit-identity with a serial rebuild at quiesce."""
        corpus = _fresh_corpus(16, seed=131)
        watched = corpus.sources()[0]
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        model = SourceQualityModel(travel_domain)
        contributor = ContributorQualityModel(travel_domain)
        contributor.assess_source(watched)
        query = "travel flight resort"

        errors: list[BaseException] = []
        versions: dict[str, list[int]] = {}
        stop = threading.Event()

        def reader(name: str, read) -> None:
            observed = versions.setdefault(name, [])
            try:
                while not stop.is_set():
                    observed.append(corpus.version)
                    read()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def mutator() -> None:
            try:
                spares = [
                    _extra_source(f"stress-spare-{index}", seed=70 + index)
                    for index in range(8)
                ]
                for event in range(60):
                    kind = event % 4
                    if kind == 0 and spares:
                        corpus.add(spares.pop())
                    elif kind == 1 and len(corpus) > 8:
                        removable = [
                            source_id
                            for source_id in corpus.source_ids()
                            if source_id != watched.source_id
                        ]
                        corpus.remove(removable[event % len(removable)])
                    elif kind == 2:
                        _grow(
                            corpus.sources()[event % len(corpus)],
                            f"travel stress growth {event}",
                        )
                    else:
                        corpus.touch(watched.source_id)
                    time.sleep(0.002)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_search_engine(engine, name="engine")
            scheduler.register_source_model(model, name="model")
            scheduler.register_contributor_model(
                contributor, watched, name="contributor"
            )
            scheduler.refresh_all()
            scheduler.start()

            threads = [
                threading.Thread(target=reader, args=("engine", lambda: engine.search(query, 10))),
                threading.Thread(
                    target=reader,
                    args=("model", lambda: model.assessment_context(corpus)),
                ),
                threading.Thread(
                    target=reader,
                    args=("contributor", lambda: contributor.assess_source(watched)),
                ),
                threading.Thread(target=mutator),
            ]
            for thread in threads:
                thread.start()
            threads[-1].join(timeout=60.0)  # mutation stream finishes first
            stop.set()
            for thread in threads[:-1]:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, errors

            # Quiesce: stop the worker, apply anything still pending.
            scheduler.stop()
            scheduler.flush()

            for observed in versions.values():
                assert observed, "every reader observed at least one version"
                assert all(
                    earlier <= later
                    for earlier, later in zip(observed, observed[1:])
                ), "observed corpus versions must be monotonic"

            # Bit-identity with a serial oracle over the quiesced corpus.
            oracle_results, oracle_rank, oracle_context, oracle_users = (
                _serial_oracle(travel_domain, corpus, watched, query)
            )
            assert engine.search(query, 10) == oracle_results
            assert engine.static_rank() == oracle_rank
            live_context = model.assessment_context(corpus)
            assert live_context.raw_vectors == oracle_context.raw_vectors
            assert (
                live_context.normalized_vectors == oracle_context.normalized_vectors
            )
            assert [a.source_id for a in live_context.ranking] == [
                a.source_id for a in oracle_context.ranking
            ]
            assert {
                s: a.overall for s, a in live_context.assessments.items()
            } == {s: a.overall for s, a in oracle_context.assessments.items()}
            live_users = contributor.assess_source(watched)
            assert {u: a.overall for u, a in live_users.items()} == {
                u: a.overall for u, a in oracle_users.items()
            }
            for user_id in oracle_users:
                assert live_users[user_id].snapshot == oracle_users[user_id].snapshot

    def test_engine_search_under_mutation_storm(self):
        """Search-only storm: many readers, rapid mutations, no scheduler —
        the lazy path alone must stay exception-free and converge."""
        corpus = _fresh_corpus(12, seed=137)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    engine.search("travel flight resort", 8)
                    engine.static_rank()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def mutator() -> None:
            try:
                for event in range(80):
                    if event % 2:
                        corpus.touch(corpus.source_ids()[event % len(corpus)])
                    else:
                        _grow(
                            corpus.sources()[event % len(corpus)],
                            f"travel storm {event}",
                        )
                    time.sleep(0.001)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        mutator_thread = threading.Thread(target=mutator)
        for thread in threads:
            thread.start()
        mutator_thread.start()
        mutator_thread.join(timeout=60.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        rebuilt = SearchEngine(corpus, panel=AlexaLikeService())
        assert engine.search("travel flight resort", 8) == rebuilt.search(
            "travel flight resort", 8
        )
        assert engine.static_rank() == rebuilt.static_rank()
