"""Plain-text / markdown table rendering shared by the experiment drivers."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_number", "format_markdown_table"]


def format_number(value: Any, digits: int = 3) -> str:
    """Render a numeric cell compactly (integers without decimals)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value - round(value)) < 1e-9 and abs(value) < 1e6:
            return str(int(round(value)))
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], digits: int = 3
) -> str:
    """Render ``rows`` as a GitHub-flavoured markdown table."""
    header_line = "| " + " | ".join(str(header) for header in headers) + " |"
    separator = "| " + " | ".join("---" for _ in headers) + " |"
    body_lines = []
    for row in rows:
        cells = [format_number(cell, digits=digits) for cell in row]
        body_lines.append("| " + " | ".join(cells) + " |")
    return "\n".join([header_line, separator, *body_lines])
