"""Simulators of third-party web-statistics panels.

Table 1 of the paper sources several measures from public measurement
services: Alexa (traffic rank, daily visitors, daily page views, average
time spent on site, bounce rate, number of inbound links) and Feedburner
(number of feed subscriptions).  Neither service is available offline —
Alexa was shut down in 2022 and Feedburner no longer exposes subscription
counts — so this module provides drop-in simulators.

Each simulator derives its per-site statistics from the source's latent
popularity and engagement (see :mod:`repro.sources.generators`) plus
deterministic per-site measurement noise, mimicking the way the real panels
estimated per-site figures from a browsing panel: noisy, but strongly
correlated with actual popularity.
"""

from __future__ import annotations

import hashlib
import random
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.perf.cache import source_fingerprint
from repro.sources.models import Source

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (corpus imports models)
    from repro.sources.corpus import CorpusChange, SourceCorpus

__all__ = [
    "PanelObservation",
    "WebStatsPanel",
    "AlexaLikeService",
    "FeedburnerLikeService",
]


@dataclass(frozen=True)
class PanelObservation:
    """A single panel reading for one source.

    ``traffic_rank`` follows the Alexa convention: **lower is better** (rank
    1 is the most visited site in the panel's universe).
    """

    source_id: str
    traffic_rank: int
    daily_visitors: float
    daily_page_views: float
    average_time_on_site: float
    bounce_rate: float
    inbound_links: int
    feed_subscriptions: int

    @property
    def page_views_per_visitor(self) -> float:
        """Daily page views per daily visitor (Table 1, Authority x Liveliness)."""
        if self.daily_visitors <= 0:
            return 0.0
        return self.daily_page_views / self.daily_visitors

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "source_id": self.source_id,
            "traffic_rank": self.traffic_rank,
            "daily_visitors": self.daily_visitors,
            "daily_page_views": self.daily_page_views,
            "average_time_on_site": self.average_time_on_site,
            "bounce_rate": self.bounce_rate,
            "inbound_links": self.inbound_links,
            "feed_subscriptions": self.feed_subscriptions,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PanelObservation":
        """Rebuild an observation serialised with :meth:`to_dict` (bit-exact floats)."""
        return cls(**payload)


def _stable_rng(seed: int, source_id: str) -> random.Random:
    """Build a random generator that is stable per ``(seed, source_id)``."""
    digest = hashlib.sha256(f"{seed}:{source_id}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class WebStatsPanel:
    """Base class for panel simulators.

    Sub-classes implement :meth:`_measure`; the base class offers caching
    and batch observation so experiments can treat the panel as an oracle
    that always returns the same figures for the same *content state* of a
    site.  Cached observations are keyed by source identifier but
    revalidated against the source's identity and structural fingerprint,
    so replacing a source object or growing it in place (a new discussion,
    post or interaction, or an announced ``touch()``) re-measures instead
    of serving a stale :class:`PanelObservation`.  Entries hold only a
    *weak* reference to the observed source: a dead or different object
    always re-measures, which makes the ``id()`` component of the
    fingerprint sound without keeping corpora alive.
    """

    def __init__(self, seed: int = 0, noise: float = 0.15) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self._seed = seed
        self._noise = noise
        #: source_id -> (weakref to source, fingerprint at measure time, observation)
        self._cache: dict[str, tuple[Any, tuple, PanelObservation]] = {}

    @property
    def noise(self) -> float:
        """Relative measurement noise applied to panel figures."""
        return self._noise

    def observe(self, source: Source) -> PanelObservation:
        """Return the panel observation for ``source`` (cached per epoch).

        The cache hit path costs one identity check plus one fingerprint
        computation; a mismatch (the source was replaced, grew, or was
        touched since the last observation) triggers a fresh measurement.
        """
        fingerprint = source_fingerprint(source)
        entry = self._cache.get(source.source_id)
        if entry is not None and entry[0]() is source and entry[1] == fingerprint:
            return entry[2]
        observation = self._measure(source)
        self._cache[source.source_id] = (weakref.ref(source), fingerprint, observation)
        return observation

    def observe_many(self, sources: Iterable[Source]) -> dict[str, PanelObservation]:
        """Observe a batch of sources; return a mapping keyed by source id."""
        return {source.source_id: self.observe(source) for source in sources}

    def invalidate(self, source_id: Optional[str] = None) -> None:
        """Drop cached observations (all of them when ``source_id`` is None)."""
        if source_id is None:
            self._cache.clear()
        else:
            self._cache.pop(source_id, None)

    def watch(self, corpus: "SourceCorpus") -> None:
        """Subscribe to ``corpus`` mutations and evict affected observations.

        Eviction on ``remove``/``touch`` events drops stale entries
        eagerly; the fingerprint revalidation in :meth:`observe` already
        guarantees correctness without it.  The subscription is *weak*:
        the corpus never keeps a discarded panel (or the engine holding
        it) alive, and a dead panel's entry is pruned on the next
        mutation.  Watching the same corpus twice is a no-op.
        """
        corpus.subscribe(self._on_corpus_change, weak=True)

    def _on_corpus_change(self, change: "CorpusChange") -> None:
        if change.op in ("remove", "touch"):
            self.invalidate(change.source_id)

    # -- to be provided by subclasses -----------------------------------------------

    def _measure(self, source: Source) -> PanelObservation:
        raise NotImplementedError

    def _jitter(self, rng: random.Random, value: float) -> float:
        """Apply multiplicative measurement noise to ``value``."""
        if value <= 0:
            return 0.0
        return value * (1.0 + rng.uniform(-self._noise, self._noise))


class AlexaLikeService(WebStatsPanel):
    """Simulator of an Alexa-style traffic panel.

    The mapping from latent popularity to traffic follows a convex curve so
    that the resulting visitor counts span several orders of magnitude, as
    real panel data does.  Engagement drives pages per visit, while the
    stickiness latent drives time on site and (inversely) bounce rate — the
    three families of panel figures therefore load on three distinct
    underlying factors, which is what the Table 3 componentisation needs.
    """

    #: Size of the virtual web the panel ranks sites against.
    UNIVERSE_SIZE = 5_000_000

    def _measure(self, source: Source) -> PanelObservation:
        rng = _stable_rng(self._seed, source.source_id)
        popularity = max(0.0, min(1.0, source.latent_popularity))
        engagement = max(0.0, min(1.0, source.latent_engagement))
        stickiness = max(0.0, min(1.0, source.latent_stickiness))

        daily_visitors = self._jitter(rng, 30.0 + 250_000.0 * popularity**3)
        pages_per_visit = self._jitter(rng, 1.4 + 6.0 * engagement)
        daily_page_views = daily_visitors * pages_per_visit
        average_time_on_site = self._jitter(rng, 45.0 + 540.0 * stickiness)
        bounce_rate = min(
            0.98, max(0.02, 0.92 - 0.55 * stickiness + rng.uniform(-0.05, 0.05))
        )
        inbound_links = int(round(self._jitter(rng, 5.0 + 20_000.0 * popularity**2)))
        traffic_rank = max(
            1, int(round(self.UNIVERSE_SIZE / (1.0 + daily_visitors)))
        )

        return PanelObservation(
            source_id=source.source_id,
            traffic_rank=traffic_rank,
            daily_visitors=daily_visitors,
            daily_page_views=daily_page_views,
            average_time_on_site=average_time_on_site,
            bounce_rate=bounce_rate,
            inbound_links=inbound_links,
            feed_subscriptions=0,
        )


class FeedburnerLikeService(WebStatsPanel):
    """Simulator of a Feedburner-style feed-subscription counter.

    Subscription counts blend popularity (reach) and engagement (willingness
    of readers to subscribe), so a highly trafficked but shallow site gets
    fewer subscribers than an equally trafficked site with a loyal
    community.
    """

    def _measure(self, source: Source) -> PanelObservation:
        rng = _stable_rng(self._seed + 1, source.source_id)
        popularity = max(0.0, min(1.0, source.latent_popularity))
        engagement = max(0.0, min(1.0, source.latent_engagement))
        loyalty = 0.4 * popularity + 0.6 * engagement
        subscriptions = int(round(self._jitter(rng, 2.0 + 50_000.0 * loyalty**3)))
        return PanelObservation(
            source_id=source.source_id,
            traffic_rank=0,
            daily_visitors=0.0,
            daily_page_views=0.0,
            average_time_on_site=0.0,
            bounce_rate=0.0,
            inbound_links=0,
            feed_subscriptions=subscriptions,
        )

    def subscriptions(self, source: Source) -> int:
        """Return only the subscription count for ``source``."""
        return self.observe(source).feed_subscriptions
