"""Shard coordinator: the authoritative corpus fanned out over worker processes.

The :class:`ShardCoordinator` owns the authoritative
:class:`~repro.sources.corpus.SourceCorpus` — callers mutate it exactly
as they would a single-process corpus — and replicates every mutation to
``shard_count`` worker processes, each serving the partition of sources
whose stable hash (:func:`~repro.sharding.partition.partition_shard`)
lands on it.  Replication rides the corpus's own
:class:`~repro.sources.diffing.InvalidationBus`: a
:class:`~repro.sources.diffing.WireBridgeSubscriber` turns each
:class:`CorpusChange` into a journal-schema record, which the bridge
sink only *buffers* per shard — the mutating thread never touches a
socket.  Buffers drain as one batched ``apply`` per shard at the next
``flush()``; every read flushes first, so a read always observes the
mutations that preceded it (consistency is at flush/quiesce boundaries,
matching the single-process scheduler's flush semantics).

Reads are scatter-gather and **bit-identical** to a single-process
build at quiesce:

* ``search()`` runs the three-phase protocol — global term statistics
  (summed document frequencies, maxed static maxima), per-shard scoring
  against the global statistics, then per-shard top-k selection merged
  with the engine's exact ``(-score, source_id)`` order.  Shards
  partition the candidate set, so merging per-shard top-k loses nothing.
* ``rank()`` gathers the global open-discussion maximum, collects raw
  measure vectors per shard, reassembles them in the coordinator
  corpus's insertion order and runs the model's global tail
  (:meth:`~repro.core.source_quality.SourceQualityModel.rank_from_raw`)
  locally.

Worker death is detected on the wire (EOF / reset / CRC desync), the
shard is marked down, and reads raise
:class:`~repro.errors.ShardUnavailableError` unless ``allow_degraded=True``,
which serves from the live shards.  Mutations routed to a down shard are
dropped and counted; :meth:`restart_shard` respawns the worker, lets it
recover warm from its per-shard store, then reconciles it against the
authoritative corpus with a ``resync`` — after which the cluster is
bit-identical to its pre-fault self.  See ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path
from typing import Any, Optional

import repro
from repro.core.source_quality import QualityScore, SourceQualityModel
from repro.errors import (
    PersistenceError,
    SearchError,
    ShardingError,
    ShardUnavailableError,
    WireProtocolError,
)
from repro.persistence.cluster import ClusterStore
from repro.search.engine import (
    SearchEngineConfig,
    SearchResult,
    _reject_untokenizable,
    tokenize,
)
from repro.sharding.partition import partition_shard
from repro.sharding.wire import DEFAULT_TIMEOUT_SECONDS, WireConnection
from repro.sources.corpus import SourceCorpus
from repro.sources.diffing import WireBridgeSubscriber

__all__ = ["ShardCoordinator"]


@dataclasses.dataclass
class _Shard:
    """Book-keeping of one worker process."""

    index: int
    process: Optional[subprocess.Popen] = None
    connection: Optional[WireConnection] = None
    alive: bool = False


class ShardCoordinator:
    """Authoritative corpus + scatter-gather serving over worker processes."""

    def __init__(
        self,
        corpus: SourceCorpus,
        shard_count: int,
        *,
        domain: Optional[Any] = None,
        engine_config: SearchEngineConfig = SearchEngineConfig(),
        store_directory: Optional[str | Path] = None,
        fsync: bool = True,
        checkpoint_every: int = 256,
        eager: bool = False,
        recover: bool = False,
        timeout: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        if shard_count < 1:
            raise ShardingError(f"shard_count must be at least 1, got {shard_count}")
        engine_config.validate()
        if recover and store_directory is None:
            raise PersistenceError("recover=True requires a store_directory")
        self._corpus = corpus
        self.shard_count = shard_count
        self._domain = domain
        self._engine_config = engine_config
        self._model = SourceQualityModel(domain) if domain is not None else None
        self._fsync = fsync
        self._checkpoint_every = checkpoint_every
        self._eager = eager
        self._timeout = timeout
        self._cluster = (
            ClusterStore(
                store_directory,
                shard_count=shard_count,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            if store_directory is not None
            else None
        )
        # All wire traffic is serialised by this lock; the bridge sink
        # only ever takes the buffer lock, so a corpus mutation never
        # blocks behind a socket.
        self._io = threading.RLock()
        self._buffer_lock = threading.Lock()
        self._pending: dict[int, list[dict[str, Any]]] = {
            index: [] for index in range(shard_count)
        }
        self._message_ids = itertools.count(1)
        self._query_ids = itertools.count(1)
        self._dropped = 0
        self._closed = False
        self._shards = [_Shard(index) for index in range(shard_count)]
        self._bridge = WireBridgeSubscriber(corpus, self._route)
        try:
            for shard in self._shards:
                self._spawn(shard, recover=recover)
        except BaseException:
            self.close()
            raise

    # -- properties --------------------------------------------------------------------

    @property
    def corpus(self) -> SourceCorpus:
        """The authoritative corpus (mutate it directly; reads replicate)."""
        return self._corpus

    @property
    def processes(self) -> list[Optional[subprocess.Popen]]:
        """The worker process handles, by shard index (for fault tests)."""
        return [shard.process for shard in self._shards]

    @property
    def live_shards(self) -> list[int]:
        """Indices of shards currently believed alive."""
        return [shard.index for shard in self._shards if shard.alive]

    @property
    def dropped_mutations(self) -> int:
        """Mutation records dropped because their shard was down."""
        return self._dropped

    # -- lifecycle ---------------------------------------------------------------------

    def _spawn(self, shard: _Shard, *, recover: bool) -> None:
        parent, child = socket.socketpair()
        env = dict(os.environ)
        source_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            source_root if not existing else source_root + os.pathsep + existing
        )
        try:
            shard.process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.sharding.worker",
                    "--fd",
                    str(child.fileno()),
                ],
                pass_fds=(child.fileno(),),
                env=env,
            )
        finally:
            child.close()
        shard.connection = WireConnection(parent, timeout=self._timeout)
        shard.alive = True
        self._request(
            shard,
            "configure",
            {
                "shard_index": shard.index,
                "shard_count": self.shard_count,
                "domain": self._domain.to_dict() if self._domain is not None else None,
                "engine_config": dataclasses.asdict(self._engine_config),
                "store_dir": (
                    str(self._cluster.shard_directory(shard.index))
                    if self._cluster is not None
                    else None
                ),
                "fsync": self._fsync,
                "checkpoint_every": self._checkpoint_every,
                "eager": self._eager,
                "recover": recover,
            },
        )
        self._resync_shard(shard)

    def _resync_shard(self, shard: _Shard) -> dict[str, Any]:
        """Reconcile a (fresh or recovered) worker with the authoritative corpus."""
        owned = {
            source_id: self._corpus.get(source_id).to_dict()
            for source_id in self._corpus.source_ids()
            if partition_shard(source_id, self.shard_count) == shard.index
        }
        return self._request(
            shard, "resync", {"sources": owned, "version": self._corpus.version}
        )

    def restart_shard(self, shard_index: int) -> dict[str, Any]:
        """Respawn a (dead or live) worker and bring its shard back in sync.

        The worker recovers warm from its per-shard store when the
        coordinator has one, then the resync overlays whatever the store
        had not yet made durable.  Buffered mutations for the shard are
        discarded — the resync supersedes them.
        """
        if not 0 <= shard_index < self.shard_count:
            raise ShardingError(
                f"shard index {shard_index} is not within the "
                f"{self.shard_count}-way split"
            )
        with self._io:
            shard = self._shards[shard_index]
            shard.alive = False
            if shard.connection is not None:
                shard.connection.close()
            if shard.process is not None:
                if shard.process.poll() is None:
                    shard.process.kill()
                shard.process.wait()
            with self._buffer_lock:
                self._pending[shard_index] = []
            self._spawn(shard, recover=self._cluster is not None)
            return self._request(shard, "sync", {})

    def close(self) -> None:
        """Shut down every worker and detach from the corpus (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._bridge.close()
        with self._io:
            for shard in self._shards:
                if shard.alive:
                    try:
                        self._request(shard, "shutdown", {})
                    except (ShardingError, WireProtocolError, OSError):
                        pass
                if shard.connection is not None:
                    shard.connection.close()
            for shard in self._shards:
                if shard.process is None:
                    continue
                try:
                    shard.process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    shard.process.kill()
                    shard.process.wait()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- replication -------------------------------------------------------------------

    def _route(self, record: dict[str, Any]) -> None:
        # Bridge sink: called on the mutating thread, under the bridge's
        # append lock.  Buffer only — never touch the wire here.
        shard_index = partition_shard(record["source_id"], self.shard_count)
        with self._buffer_lock:
            self._pending[shard_index].append(dict(record))

    def flush(self) -> int:
        """Drain buffered mutation records to their shards; return count sent.

        Records routed to a down shard are dropped and counted — the
        shard's eventual :meth:`restart_shard` resync supersedes them.
        """
        with self._io:
            with self._buffer_lock:
                batches = self._pending
                self._pending = {index: [] for index in range(self.shard_count)}
            sent = 0
            for index, records in batches.items():
                if not records:
                    continue
                shard = self._shards[index]
                if not shard.alive:
                    self._dropped += len(records)
                    continue
                try:
                    self._request(shard, "apply", {"records": records})
                    sent += len(records)
                except ShardUnavailableError:
                    self._dropped += len(records)
            return sent

    def quiesce(self, *, allow_degraded: bool = False) -> dict[int, dict[str, Any]]:
        """Flush and barrier every live worker; return per-shard versions."""
        with self._io:
            self.flush()
            return self._scatter("sync", {}, allow_degraded=allow_degraded)

    def checkpoint(self, *, allow_degraded: bool = False) -> dict[int, int]:
        """Flush, then checkpoint every shard store; return per-shard versions."""
        if self._cluster is None:
            raise PersistenceError("coordinator was built without a store_directory")
        with self._io:
            self.flush()
            results = self._scatter("checkpoint", {}, allow_degraded=allow_degraded)
            return {index: result["version"] for index, result in results.items()}

    def busy_times(self, *, allow_degraded: bool = False) -> dict[int, float]:
        """Cumulative per-worker CPU seconds spent inside request handlers."""
        with self._io:
            results = self._scatter("busy_time", {}, allow_degraded=allow_degraded)
            return {
                index: float(result["busy_seconds"])
                for index, result in results.items()
            }

    # -- reads -------------------------------------------------------------------------

    def search(
        self, query: str, limit: int = 20, *, allow_degraded: bool = False
    ) -> list[SearchResult]:
        """Scatter-gather search, bit-identical to a single-process engine.

        Runs the three-phase protocol described in the module docstring.
        Degraded mode serves from live shards only: global statistics and
        candidates then cover the live partitions, which is explicitly an
        approximation.
        """
        if limit <= 0:
            raise SearchError("limit must be positive")
        if self._engine_config.minimum_topical_score < 0:
            raise SearchError(
                "sharded search does not support a negative minimum_topical_score "
                "(the single-process engine falls back to a full scan)"
            )
        if len(self._corpus) == 0:
            raise SearchError("cannot index an empty corpus")
        terms = tuple(tokenize(query))
        if not terms:
            _reject_untokenizable(query)
        with self._io:
            self.flush()
            stats = self._scatter(
                "search_stats", {"terms": list(terms)}, allow_degraded=allow_degraded
            )
            n_documents = sum(int(s["n_documents"]) for s in stats.values())
            if n_documents == 0:
                return []
            document_frequencies = {
                term: sum(
                    int(s["document_frequencies"].get(term, 0))
                    for s in stats.values()
                )
                for term in set(terms)
            }
            max_visitors = max(
                (float(s["max_visitors"]) for s in stats.values()), default=0.0
            )
            max_links = max((int(s["max_links"]) for s in stats.values()), default=0)
            query_id = next(self._query_ids)
            scores = self._scatter(
                "search_score",
                {
                    "query_id": query_id,
                    "terms": list(terms),
                    "n_documents": n_documents,
                    "document_frequencies": document_frequencies,
                    "max_visitors": max_visitors,
                    "max_links": max_links,
                },
                allow_degraded=allow_degraded,
            )
            max_topical = max(
                (float(s["max_raw"]) for s in scores.values()), default=0.0
            )
            selections = self._scatter(
                "search_select",
                {"query_id": query_id, "max_topical": max_topical, "limit": limit},
                allow_degraded=allow_degraded,
                only=set(scores),
            )
        entries = [
            entry
            for selection in selections.values()
            for entry in selection["entries"]
        ]
        top = heapq.nsmallest(limit, entries, key=lambda entry: (-entry[0], entry[1]))
        return [
            SearchResult(
                rank=index + 1,
                source_id=entry[1],
                score=entry[0],
                static_score=entry[3],
                topical_score=entry[2],
            )
            for index, entry in enumerate(top)
        ]

    def rank(
        self, *, allow_degraded: bool = False
    ) -> list[tuple[str, QualityScore]]:
        """Scatter-gather assessment ranking, bit-identical at quiesce.

        Returns ``(source_id, score)`` pairs in decreasing overall
        quality (ties by source id) — the pair view of the single-process
        :meth:`~repro.core.source_quality.SourceQualityModel.rank`.
        """
        if self._model is None:
            raise ShardingError("coordinator was built without a domain")
        with self._io:
            self.flush()
            stats = self._scatter("rank_stats", {}, allow_degraded=allow_degraded)
            max_open = max((int(s["max_open"]) for s in stats.values()), default=0)
            gathered = self._scatter(
                "rank_measures",
                {"max_open": max_open},
                allow_degraded=allow_degraded,
                only=set(stats),
            )
        vectors: dict[str, dict[str, float]] = {}
        for result in gathered.values():
            vectors.update(result["vectors"])
        raw_vectors = {}
        for source_id in self._corpus.source_ids():
            if source_id in vectors:
                raw_vectors[source_id] = vectors[source_id]
            elif not allow_degraded:
                raise ShardingError(
                    f"shard {partition_shard(source_id, self.shard_count)} did not "
                    f"report measures for source {source_id!r}"
                )
        return self._model.rank_from_raw(raw_vectors)

    def ranking_ids(self, *, allow_degraded: bool = False) -> list[str]:
        """Source identifiers ordered by decreasing overall quality."""
        return [
            source_id
            for source_id, _ in self.rank(allow_degraded=allow_degraded)
        ]

    # -- wire plumbing -----------------------------------------------------------------

    def _request(self, shard: _Shard, kind: str, payload: dict[str, Any]) -> Any:
        """One request/reply round-trip with a single shard (holds the io lock)."""
        with self._io:
            message = {"id": next(self._message_ids), "kind": kind, **payload}
            try:
                shard.connection.send(message)
                reply = shard.connection.recv()
            except (WireProtocolError, OSError) as exc:
                self._mark_down(shard)
                raise ShardUnavailableError(shard.index, str(exc)) from exc
            if reply is None:
                self._mark_down(shard)
                raise ShardUnavailableError(shard.index, "connection closed by worker")
            if reply.get("id") != message["id"]:
                self._mark_down(shard)
                raise ShardUnavailableError(shard.index, "reply out of order")
            if not reply.get("ok", False):
                raise self._remote_error(reply.get("error") or {})
            return reply.get("result")

    def _scatter(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        allow_degraded: bool,
        only: Optional[set[int]] = None,
    ) -> dict[int, Any]:
        """Send one request to every live shard, then gather every reply.

        Replies are always drained from every shard the request reached —
        leaving one unread would desynchronise that connection — before
        any error is raised.  A shard failing at the wire level is marked
        down; in strict mode (the default) any down shard aborts the
        read with :class:`ShardUnavailableError`, while degraded mode
        returns the live subset.  ``only`` restricts a follow-up phase to
        the shards that answered the previous one.
        """
        sent: list[tuple[_Shard, int]] = []
        down: list[int] = []
        for shard in self._shards:
            if only is not None and shard.index not in only:
                continue
            if not shard.alive:
                down.append(shard.index)
                continue
            message = {"id": next(self._message_ids), "kind": kind, **payload}
            try:
                shard.connection.send(message)
                sent.append((shard, message["id"]))
            except (WireProtocolError, OSError):
                self._mark_down(shard)
                down.append(shard.index)
        results: dict[int, Any] = {}
        remote_error: Optional[BaseException] = None
        for shard, message_id in sent:
            try:
                reply = shard.connection.recv()
            except (WireProtocolError, OSError):
                self._mark_down(shard)
                down.append(shard.index)
                continue
            if reply is None or reply.get("id") != message_id:
                self._mark_down(shard)
                down.append(shard.index)
                continue
            if not reply.get("ok", False):
                if remote_error is None:
                    remote_error = self._remote_error(reply.get("error") or {})
                continue
            results[shard.index] = reply.get("result")
        if remote_error is not None:
            raise remote_error
        if down and not allow_degraded:
            raise ShardUnavailableError(down[0])
        return results

    def _mark_down(self, shard: _Shard) -> None:
        shard.alive = False
        if shard.connection is not None:
            shard.connection.close()

    @staticmethod
    def _remote_error(error: dict[str, Any]) -> BaseException:
        """Rebuild a worker-side exception as its local typed counterpart."""
        import builtins

        import repro.errors as errors_module

        type_name = str(error.get("type", ""))
        message = str(error.get("message", ""))
        cls = getattr(errors_module, type_name, None)
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            cls = getattr(builtins, type_name, None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                return cls(message)
            except TypeError:
                pass
        return ShardingError(f"{type_name}: {message}")
