#!/usr/bin/env python3
"""Compare quality-driven ranking against a general-purpose search engine.

This example reproduces, at example scale, the study of Section 4.1: a
popularity-dominated search engine answers keyword queries over a corpus of
blogs and forums, the quality model re-ranks each result list, and the two
orderings are compared (rank displacements, Kendall tau of single measures).

Run with::

    python examples/source_ranking.py
"""

from __future__ import annotations

from repro.core.domain import DomainOfInterest
from repro.core.source_quality import SourceQualityModel
from repro.datasets.google_study import GoogleStudySpec, build_google_study
from repro.sources.corpus import SourceCorpus
from repro.stats.ranking import compare_rankings


def main() -> None:
    dataset = build_google_study(GoogleStudySpec(source_count=80, query_count=8, seed=31))
    print(
        f"Corpus: {dataset.site_count} blogs/forums — "
        f"workload: {len(dataset.workload)} queries, top-{dataset.spec.results_per_query} each\n"
    )

    for query in list(dataset.workload)[:5]:
        results = dataset.engine.search(query.text, limit=dataset.spec.results_per_query)
        if len(results) < 5:
            continue
        search_ids = [result.source_id for result in results]
        sub_corpus = SourceCorpus(dataset.corpus.get(source_id) for source_id in search_ids)
        model = SourceQualityModel(
            DomainOfInterest(categories=(query.category,), name=query.query_id),
            alexa=dataset.alexa,
            feedburner=dataset.feedburner,
        )
        quality_ids = model.ranking_ids(sub_corpus)
        shift = compare_rankings(search_ids, quality_ids)

        print(f"query {query.query_id}: {query.text!r}")
        print(f"  search order : {', '.join(search_ids[:5])} ...")
        print(f"  quality order: {', '.join(quality_ids[:5])} ...")
        print(
            f"  avg displacement {shift.average_displacement:.2f}, "
            f"displaced >5: {shift.fraction_displaced_over_5:.0%}, "
            f"coincident: {shift.fraction_coincident:.0%}\n"
        )

    print("Interpretation: the search engine privileges raw traffic and inbound")
    print("links, while the quality model also rewards participation and")
    print("freshness — hence the substantial re-ranking, as reported in the paper.")


if __name__ == "__main__":
    main()
