"""Monotonic timing primitives for the perf benchmark harness.

Everything here is built on :func:`time.perf_counter` so timings are
monotonic and unaffected by wall-clock adjustments.  The helpers are
deliberately dependency-free: the benchmark harness runs them in-process
around the library's own hot paths.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["Stopwatch", "TimingResult", "timed", "time_call"]


class Stopwatch:
    """A restartable monotonic stopwatch accumulating elapsed seconds.

    >>> watch = Stopwatch()
    >>> watch.start(); watch.stop()  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        """True while the stopwatch is started."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Accumulated elapsed seconds (including the current lap)."""
        total = self._elapsed
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the accumulated elapsed seconds."""
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the stopwatch."""
        self._started_at = None
        self._elapsed = 0.0


@dataclass
class TimingResult:
    """Result of timing a callable over one or more repetitions."""

    label: str
    repetitions: int
    total_seconds: float
    per_call_seconds: list[float] = field(default_factory=list)
    last_result: Any = None

    @property
    def mean_seconds(self) -> float:
        """Average seconds per repetition."""
        if self.repetitions == 0:
            return 0.0
        return self.total_seconds / self.repetitions

    @property
    def best_seconds(self) -> float:
        """Fastest single repetition (total when per-call data is absent)."""
        if not self.per_call_seconds:
            return self.total_seconds
        return min(self.per_call_seconds)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary (result excluded)."""
        return {
            "label": self.label,
            "repetitions": self.repetitions,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "best_seconds": self.best_seconds,
            "per_call_seconds": list(self.per_call_seconds),
        }


@contextmanager
def timed(sink: dict[str, float], label: str) -> Iterator[Stopwatch]:
    """Context manager recording the elapsed seconds of a block into ``sink``.

    >>> timings = {}
    >>> with timed(timings, "build"):
    ...     _ = sum(range(10))
    >>> "build" in timings
    True
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        sink[label] = watch.stop()


def time_call(
    function: Callable[[], Any], repetitions: int = 1, label: str = ""
) -> TimingResult:
    """Time ``function()`` over ``repetitions`` calls.

    The return value of the last call is kept on the result so benchmark
    code can both time a pipeline and inspect what it produced.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    per_call: list[float] = []
    last_result: Any = None
    for _ in range(repetitions):
        started = time.perf_counter()
        last_result = function()
        per_call.append(time.perf_counter() - started)
    return TimingResult(
        label=label or getattr(function, "__name__", "anonymous"),
        repetitions=repetitions,
        total_seconds=sum(per_call),
        per_call_seconds=per_call,
        last_result=last_result,
    )
