"""Deterministic LRU cache and structural fingerprints.

:class:`LRUCache` is a small insertion-ordered cache with hit/miss
statistics; it backs the assessment-context caches of the quality models,
the query-tokenisation memo of the search engine and the per-text memo of
the sentiment analyser.

The fingerprint helpers compute a *structural* signature of a source or a
corpus: object identity, the source's in-place mutation counter
(``Source.content_revision``) plus the cheap-to-read content counts a
crawler would see (discussions, posts, interactions, observation day).
Computing a fingerprint is O(number of discussions), orders of magnitude
cheaper than a full assessment, which is what makes fingerprint-keyed
invalidation near-free for repeated calls over an unchanged corpus.

The contract: any change that *adds or removes* content, replaces a source
object, goes through a ``Source`` mutation helper, or is announced via
``Source.touch()`` / ``SourceCorpus.touch()`` changes the fingerprint.
In-place edits that keep every count identical AND bypass the helpers
(e.g. rewording an existing post directly) are not detected — callers
doing that must call ``touch()`` or invalidate the consuming cache
explicitly (see ``docs/PERFORMANCE.md``).

The probe helpers (:func:`source_probe`, :func:`corpus_probe`) are the
O(1)-per-source tier of the same signature: they skip the per-discussion
post counts.  The built-in read paths no longer run them per query — the
O(1) staleness tier is now the subscription-fed dirty flag in
:mod:`repro.sources.diffing` — but they remain available as a mid-price
probe for external consumers.  A probe change always implies a
fingerprint change; the only fingerprint change invisible to the probe is
a post appended directly inside an existing discussion without
``touch()`` — the same blind spot class the fingerprints themselves have
for count-preserving edits.

Because the fingerprints include ``id(source)``, a cache keyed on them
MUST keep a strong reference to the fingerprinted objects in its entries
(the quality models store the sources inside each cached context).  Without
that anchor, CPython may reuse a freed object's id for a new source whose
counts happen to match, and the cache would serve stale results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable, Optional, Tuple

__all__ = [
    "LRUCache",
    "source_fingerprint",
    "compose_source_fingerprint",
    "corpus_fingerprint",
    "source_probe",
    "corpus_probe",
]

_MISSING = object()


class LRUCache:
    """A least-recently-used cache with hit/miss counters.

    ``maxsize <= 0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op), which gives callers a uniform way to switch a
    cache off without sprinkling conditionals.

    The cache is *thread-safe*: every operation (including the LRU
    reordering a :meth:`get` performs and the statistics counters) runs
    under one internal lock, so the query/result memos can be hit by
    concurrent reader threads while a refresh thread invalidates entries.
    :meth:`get_or_create` calls its factory *outside* the lock — two
    threads missing the same key may both build the value (last put wins);
    holding the lock across an arbitrary factory would reintroduce exactly
    the patch-blocks-unrelated-reads serialisation the concurrent serving
    layer exists to remove.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._mutex = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """Maximum number of retained entries (<= 0 means disabled)."""
        return self._maxsize

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._mutex:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` (marks it recently used)."""
        with self._mutex:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without LRU reordering or stat changes.

        The bookkeeping-free read used when an index snapshot carries its
        surviving memo entries into a patched successor: cloning must not
        distort the hit/miss statistics tests and benchmarks assert on.
        """
        with self._mutex:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry when full."""
        if self._maxsize <= 0:
            return
        with self._mutex:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        with self._mutex:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def invalidate(self, key: Optional[Hashable] = None) -> None:
        """Drop one entry (or every entry when ``key`` is None)."""
        with self._mutex:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    def keys(self) -> list:
        """A snapshot of the cached keys, LRU first.

        Used by selective invalidation (drop every entry matching a
        predicate) — iterate the snapshot and call :meth:`invalidate` per
        key; the snapshot stays valid while entries are removed.
        """
        with self._mutex:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction statistics plus the current size."""
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self._maxsize,
            }


def source_fingerprint(source: Any) -> Tuple[Any, ...]:
    """Structural fingerprint of one source.

    Combines object identity and the in-place mutation counter with the
    content counts the assessment pipeline depends on, so replacing a
    source object, growing an existing one, and announced in-place edits
    (``touch()``) all invalidate dependent caches.
    """
    discussions = source.discussions
    return (
        source.source_id,
        id(source),
        source.content_revision,
        source.observation_day,
        len(discussions),
        sum(len(discussion.posts) for discussion in discussions),
        len(source.interactions),
    )


def compose_source_fingerprint(source: Any, post_total: int) -> Tuple[Any, ...]:
    """:func:`source_fingerprint` with the post sum supplied by the caller.

    Every fingerprint field except the per-discussion post sum is an O(1)
    read; composing the tuple from a persisted ``post_total`` (the
    ``post_totals`` section the consumers export alongside their state)
    turns restore-time fingerprinting into O(1) per source instead of
    O(discussions).  The hint is only sound when the source content at
    restore equals the content at export — which :func:`recover_stack`
    guarantees by restoring consumer sections before replaying the
    journal tail.  A stale hint degrades safely: the mismatched
    fingerprint makes the next refresh re-crawl the source, it never
    serves wrong data.
    """
    return (
        source.source_id,
        id(source),
        source.content_revision,
        source.observation_day,
        len(source.discussions),
        post_total,
        len(source.interactions),
    )


def corpus_fingerprint(corpus: Iterable[Any]) -> Tuple[Any, ...]:
    """Structural fingerprint of a corpus (ordered tuple of source fingerprints)."""
    return tuple(source_fingerprint(source) for source in corpus)


def source_probe(source: Any) -> Tuple[Any, ...]:
    """O(1) staleness probe of one source (fingerprint minus post counts).

    Every field is a constant-time read, so probing a whole corpus on the
    query hot path costs microseconds where the full fingerprint costs
    O(total discussions).  A probe change always implies a fingerprint
    change (the probe fields are a subset); see the module docstring for
    the one fingerprint change the probe cannot see.
    """
    return (
        source.source_id,
        id(source),
        source.content_revision,
        source.observation_day,
        len(source.discussions),
        len(source.interactions),
    )


def corpus_probe(corpus: Iterable[Any]) -> Tuple[Any, ...]:
    """O(source count) staleness probe of a corpus (ordered tuple of probes)."""
    return tuple(source_probe(source) for source in corpus)
