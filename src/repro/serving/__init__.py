"""Eager refresh serving layer.

Turns the corpus's change notifications into *eager background refresh*
of the incremental consumers (search engine, quality models), so that
latency-critical reads find a clean dirty flag and serve in O(1) instead
of paying the patch cost on the read path.  See
:mod:`repro.serving.scheduler` for the mode semantics (sync / deferred /
coalescing with a debounce window) and ``docs/ARCHITECTURE.md`` for the
consumer registration contract.
"""

from repro.serving.scheduler import ConsumerStats, EagerRefreshScheduler, RefreshMode

__all__ = ["ConsumerStats", "EagerRefreshScheduler", "RefreshMode"]
