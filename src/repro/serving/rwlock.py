"""A reentrant reader/writer lock for the concurrent serving core.

The PR 4 scheduler serialised *everything* — every consumer patch and
every guarded read — behind one ``RLock``, so a slow quality-model refit
blocked unrelated search reads.  The concurrent serving core instead
gives every consumer its own :class:`ReadWriteLock`:

* **reads** take the *shared* side: any number of reader threads hold it
  simultaneously, so reads under no pending patch never queue behind each
  other;
* **patches** take the *exclusive* side only for the O(1) snapshot swap —
  the patched state is built aside first, so readers are excluded for one
  pointer assignment, not for the patch.

Semantics:

* **Writer preference** — a waiting writer blocks *new* readers, so a
  steady read stream cannot starve the swap.  Threads that already hold
  the lock (in either mode) are exempt, which is what makes it reentrant.
* **Reentrancy** — a thread may re-acquire the read side while reading,
  re-acquire the write side while writing, and take the read side while
  holding the write side (a guarded read calling into a consumer whose
  read path takes its own shared lock).  The one forbidden shape is the
  classic upgrade deadlock — acquiring the write side while holding only
  the read side raises :class:`~repro.errors.ServingError` immediately
  instead of deadlocking, since two upgrading readers would each wait for
  the other to release.
* Both sides are exposed as context managers (:meth:`read_lock` /
  :meth:`write_lock`), the shape the scheduler re-exports so callers
  cannot accidentally hold the exclusive side for a read.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ServingError

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Writer-preferring, reentrant reader/writer lock (see module docstring)."""

    def __init__(self) -> None:
        self._condition = threading.Condition(threading.Lock())
        #: Per-thread read-entry depth (reentrant reads).
        self._readers: dict[int, int] = {}
        #: Thread id currently holding the write side, if any.
        self._writer: Optional[int] = None
        self._writer_depth = 0
        #: Writers blocked waiting for readers/writer to drain; new
        #: readers queue behind them (writer preference).
        self._waiting_writers = 0

    # -- introspection ------------------------------------------------------------

    @property
    def read_held(self) -> bool:
        """True when the calling thread holds the read side."""
        return threading.get_ident() in self._readers

    @property
    def write_held(self) -> bool:
        """True when the calling thread holds the write side."""
        return self._writer == threading.get_ident()

    # -- acquisition --------------------------------------------------------------

    def acquire_read(self) -> None:
        """Acquire the shared side (blocks while a writer holds or waits)."""
        me = threading.get_ident()
        with self._condition:
            if self._writer == me or me in self._readers:
                # Reentrant: a thread already inside (either side) may
                # read; making it wait on itself would deadlock.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._condition.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Release one read entry of the calling thread."""
        me = threading.get_ident()
        with self._condition:
            depth = self._readers.get(me)
            if depth is None:
                raise ServingError("release_read without a matching acquire_read")
            if depth > 1:
                self._readers[me] = depth - 1
                return
            del self._readers[me]
            self._condition.notify_all()

    def acquire_write(self) -> None:
        """Acquire the exclusive side (blocks until readers/writer drain).

        Raises :class:`~repro.errors.ServingError` when the calling thread
        holds only the read side: a read-to-write upgrade deadlocks the
        moment two readers attempt it, so it is rejected outright.
        """
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise ServingError(
                    "cannot upgrade a read lock to a write lock; "
                    "acquire the write side first"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._condition.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        """Release one write entry of the calling thread."""
        me = threading.get_ident()
        with self._condition:
            if self._writer != me:
                raise ServingError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._condition.notify_all()

    # -- context managers -----------------------------------------------------------

    @contextmanager
    def read_lock(self) -> Iterator["ReadWriteLock"]:
        """Hold the shared side for the ``with`` block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self) -> Iterator["ReadWriteLock"]:
        """Hold the exclusive side for the ``with`` block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
