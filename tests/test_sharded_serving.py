"""Cross-process sharded serving: equivalence, wire codec, faults, recovery.

The contract under test is bit-identity at quiesce: a
:class:`~repro.sharding.ShardCoordinator` fanning the corpus over N
worker processes must answer ``search()`` and ``rank()`` with *exactly*
the floats a single-process build over the same corpus content produces
— after arbitrary seeded mutation streams, after worker SIGKILLs, and
after restart + per-shard recovery + resync.  Every equivalence
assertion here is exact (``==`` on result dataclasses and score dicts),
never approximate.
"""

from __future__ import annotations

import hashlib
import random
import signal
import socket
import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.normalization import ZScoreNormalizer
from repro.core.source_quality import SourceQualityModel
from repro.errors import (
    AssessmentError,
    CorruptSnapshotError,
    MissingShardSnapshotError,
    PersistenceError,
    SearchError,
    ShardingError,
    ShardUnavailableError,
    UnsearchableQueryError,
    WireProtocolError,
)
from repro.persistence import ClusterStore, CorpusStore
from repro.persistence.codec import decode_column_block
from repro.persistence.format import RECORD_HEADER, json_record, pack_record
from repro.search.engine import SearchEngine, SearchEngineConfig
from repro.sharding import WireConnection, partition_shard
from repro.sharding.columns import (
    assemble_columns,
    decode_columns,
    encode_columns,
    merge_sorted_columns,
)
from repro.sharding.wire import MAX_PAYLOAD_BYTES, WIRE_BINARY_MAGIC
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.models import Discussion, Post

QUERIES = ("travel food", "milan hotel review", "food", "travel", "blog forum food")


def _fresh_corpus(count: int, seed: int = 3) -> SourceCorpus:
    return CorpusGenerator(
        CorpusSpec(
            source_count=count, seed=seed, discussion_budget=6, user_budget=8
        )
    ).generate()


def _extra_source(source_id: str, seed: int):
    return SourceGenerator(
        SourceSpec(
            source_id=source_id,
            focus_categories=("travel", "food"),
            latent_popularity=0.5,
            latent_engagement=0.5,
            discussion_budget=4,
            user_budget=5,
        ),
        seed=seed,
    ).generate()


def _grow(source, text: str) -> None:
    discussion = Discussion(
        discussion_id=f"shard-grown-{source.content_revision}",
        category="travel",
        title=text,
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"shard-grown-post-{source.content_revision}",
            author_id="u1",
            day=2.0,
            text=text,
        )
    )
    source.add_discussion(discussion)


def _mutate(rng: random.Random, corpus: SourceCorpus, step: int) -> None:
    """One random mutation: add / remove / touch / announced in-place growth."""
    op = rng.choice(("add", "touch", "grow", "remove", "touch", "grow"))
    ids = corpus.source_ids()
    if op == "add" or len(ids) <= 4:
        corpus.add(_extra_source(f"prop-{step:04d}", seed=1000 + step))
    elif op == "remove":
        corpus.remove(rng.choice(ids))
    elif op == "touch":
        corpus.touch(rng.choice(ids))
    else:
        _grow(corpus.get(rng.choice(ids)), f"travel food growth {step}")


def _twin(corpus: SourceCorpus) -> SourceCorpus:
    """An independent single-process corpus with identical content."""
    return SourceCorpus.from_dict(corpus.to_dict())


def _assert_bit_identical(coordinator, corpus, domain) -> None:
    """Exact-equality check of sharded reads against a single-process twin."""
    coordinator.quiesce()
    twin = _twin(corpus)
    engine = SearchEngine(twin)
    for query in QUERIES:
        for limit in (3, 20):
            assert coordinator.search(query, limit=limit) == engine.search(
                query, limit=limit
            )
    model = SourceQualityModel(domain)
    expected = model.rank(twin)
    actual = coordinator.rank()
    assert [source_id for source_id, _ in actual] == [
        assessment.source_id for assessment in expected
    ]
    for (source_id, score), assessment in zip(actual, expected):
        assert source_id == assessment.source_id
        assert score.to_dict() == assessment.score.to_dict()
    top = coordinator.rank_top(5)
    assert [(source_id, score.to_dict()) for source_id, score in top] == [
        (source_id, score.to_dict()) for source_id, score in actual[:5]
    ]


# -- partition function ----------------------------------------------------------------


class TestPartition:
    def test_partition_is_stable_blake2b(self):
        # Pinned to the documented hash so a silent change (which would
        # orphan every persisted shard store) fails loudly.
        for source_id in ("source-0000", "forum-x", "blog", "ünïcode-id"):
            for count in (1, 2, 3, 7):
                digest = hashlib.blake2b(
                    source_id.encode("utf-8"), digest_size=8
                ).digest()
                expected = int.from_bytes(digest, "big") % count
                assert partition_shard(source_id, count) == expected

    def test_every_shard_gets_work(self):
        owners = {partition_shard(f"source-{i:04d}", 4) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ShardingError):
            partition_shard("x", 0)


# -- wire codec ------------------------------------------------------------------------


def _pair() -> tuple[WireConnection, WireConnection]:
    a, b = socket.socketpair()
    return WireConnection(a, timeout=10.0), WireConnection(b, timeout=10.0)


class TestWireCodec:
    def test_round_trip_preserves_json_exactly(self):
        left, right = _pair()
        try:
            message = {
                "id": 7,
                "kind": "apply",
                "records": [{"version": 3, "op": "touch", "source_id": "ünï"}],
                "float": 0.1 + 0.2,
                "nested": {"empty": [], "none": None},
            }
            left.send(message)
            assert right.recv() == message
            right.send({"id": 7, "ok": True, "result": [1.5, "two"]})
            assert left.recv() == {"id": 7, "ok": True, "result": [1.5, "two"]}
        finally:
            left.close()
            right.close()

    def test_peer_close_reads_none(self):
        left, right = _pair()
        left.close()
        assert right.recv() is None
        right.close()

    def test_torn_frame_reads_none(self):
        # A frame cut mid-payload (peer died while sending) is EOF, not
        # corruption: recv() reports the peer gone instead of raising.
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        frame = pack_record(json_record({"id": 1, "kind": "sync"}))
        a.sendall(frame[: RECORD_HEADER.size + 3])
        a.close()
        assert right.recv() is None
        right.close()

    def test_corrupt_crc_raises_protocol_error(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        frame = bytearray(pack_record(json_record({"id": 1, "kind": "sync"})))
        frame[-1] ^= 0xFF  # flip a payload byte under an unchanged CRC
        a.sendall(bytes(frame))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_implausible_length_raises_protocol_error(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        a.sendall(RECORD_HEADER.pack(MAX_PAYLOAD_BYTES + 1, 0))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_non_object_payload_raises_protocol_error(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        a.sendall(pack_record(b"[1, 2, 3]"))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_send_after_peer_death_raises(self):
        left, right = _pair()
        right.close()
        with pytest.raises(WireProtocolError):
            # The first send may be swallowed by the kernel buffer; the
            # second hits the reset.
            left.send({"id": 1, "kind": "sync", "pad": "x" * 65536})
            left.send({"id": 2, "kind": "sync", "pad": "x" * 65536})
        left.close()

    def test_concurrent_senders_never_interleave_frames(self):
        left, right = _pair()
        try:
            count = 40
            payload = {"kind": "sync", "pad": "y" * 4096}

            def sender(offset: int) -> None:
                for i in range(count):
                    left.send({**payload, "id": offset + i})

            threads = [threading.Thread(target=sender, args=(t * count,)) for t in range(3)]
            for thread in threads:
                thread.start()
            seen = set()
            for _ in range(3 * count):
                message = right.recv()
                assert message is not None and message["pad"] == payload["pad"]
                seen.add(message["id"])
            assert len(seen) == 3 * count
            for thread in threads:
                thread.join(timeout=10.0)
        finally:
            left.close()
            right.close()


# -- binary columnar payloads ----------------------------------------------------------


EDGE_FLOATS = (
    0.0,
    -0.0,
    0.1,
    1.0 / 3.0,
    -2.5,
    1e-308,
    5e-324,
    1.7976931348623157e308,
    0.1 + 0.2,
)


class TestColumnBlockCodec:
    def test_round_trip_is_bit_exact(self):
        ids = tuple(f"s{i}" for i in range(len(EDGE_FLOATS)))
        columns = {
            "m1": np.asarray(EDGE_FLOATS, dtype=np.float64),
            "m2": np.asarray(EDGE_FLOATS[::-1], dtype=np.float64),
        }
        out_ids, out_columns = decode_columns(encode_columns(ids, columns))
        assert tuple(out_ids) == ids
        assert list(out_columns) == ["m1", "m2"]
        for name, column in columns.items():
            # Byte-level equality: -0.0 and denormals keep their exact
            # bit patterns, which value equality would not distinguish.
            assert out_columns[name].tobytes() == column.tobytes()

    def test_rowless_fit_block_round_trips(self):
        blob = encode_columns((), {"m": np.asarray(EDGE_FLOATS, dtype=np.float64)})
        ids, columns = decode_columns(blob)
        assert list(ids) == []
        assert columns["m"].tobytes() == np.asarray(EDGE_FLOATS).tobytes()

    def test_empty_block_round_trips(self):
        ids, columns = decode_columns(encode_columns((), {}))
        assert list(ids) == [] and columns == {}

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptSnapshotError):
            decode_column_block(b"JUNK" + b"\x00" * 16)

    def test_torn_column_buffer_rejected(self):
        blob = encode_columns(("a", "b"), {"m": np.asarray([1.5, 2.5])})
        with pytest.raises(CorruptSnapshotError):
            decode_column_block(blob[:-5])

    def test_id_count_row_disagreement_rejected(self):
        blob = bytearray(encode_columns(("a", "b"), {"m": np.asarray([1.5, 2.5])}))
        with pytest.raises(CorruptSnapshotError):
            decode_column_block(bytes(blob) + b"extra")

    def test_assemble_restores_global_order(self):
        order = [f"s{i}" for i in range(6)]
        shard_a = (("s4", "s1"), {"m": np.asarray([4.0, 1.0])})
        shard_b = (("s0", "s5", "s2", "s3"), {"m": np.asarray([0.0, 5.0, 2.0, 3.0])})
        subject_ids, columns = assemble_columns(order, [shard_a, shard_b])
        assert subject_ids == tuple(order)
        assert columns["m"].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_assemble_strict_requires_full_cover(self):
        order = ["s0", "s1"]
        blocks = [(("s0",), {"m": np.asarray([0.0])})]
        with pytest.raises(ShardingError):
            assemble_columns(order, blocks)
        subject_ids, columns = assemble_columns(order, blocks, strict=False)
        assert subject_ids == ("s0",)
        assert columns["m"].tolist() == [0.0]

    def test_merge_sorted_columns_equals_global_sort(self):
        full = np.asarray(EDGE_FLOATS, dtype=np.float64)
        merged = merge_sorted_columns(
            [{"m": np.sort(full[:4])}, {"m": np.sort(full[4:])}, {}]
        )
        assert merged["m"].tobytes() == np.sort(full).tobytes()


class TestBinaryWire:
    def test_binary_reply_round_trips_bit_exact(self):
        left, right = _pair()
        try:
            blob = encode_columns(
                ("a", "b", "c"),
                {"m": np.asarray([0.1, -0.0, 5e-324], dtype=np.float64)},
            )
            left.send({"id": 9, "ok": True, "result": {"count": 3}}, binary=blob)
            message = right.recv()
            assert message["id"] == 9 and message["result"] == {"count": 3}
            assert message["_binary"] == blob
        finally:
            left.close()
            right.close()

    def test_binary_and_json_interleave_on_one_connection(self):
        left, right = _pair()
        try:
            blob = encode_columns(("a",), {"m": np.asarray([2.5])})
            left.send({"id": 1, "kind": "sync"})
            left.send({"id": 2, "ok": True}, binary=blob)
            left.send({"id": 3, "kind": "sync"})
            assert right.recv() == {"id": 1, "kind": "sync"}
            second = right.recv()
            assert second["id"] == 2 and second["_binary"] == blob
            third = right.recv()
            assert third == {"id": 3, "kind": "sync"} and "_binary" not in third
        finally:
            left.close()
            right.close()

    def test_torn_binary_frame_reads_none(self):
        # The peer died mid-envelope: EOF semantics, exactly like a torn
        # JSON frame or a torn journal tail.
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        envelope = WIRE_BINARY_MAGIC + pack_record(
            json_record({"id": 1, "ok": True})
        ) + pack_record(b"\x00" * 64)
        frame = pack_record(envelope)
        a.sendall(frame[: len(frame) - 20])
        a.close()
        assert right.recv() is None
        right.close()

    def test_corrupt_binary_crc_raises_protocol_error(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        envelope = WIRE_BINARY_MAGIC + pack_record(
            json_record({"id": 1, "ok": True})
        ) + pack_record(b"\x07" * 16)
        frame = bytearray(pack_record(envelope))
        frame[-1] ^= 0xFF  # flip a blob byte under the outer CRC
        a.sendall(bytes(frame))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_malformed_binary_envelope_raises_protocol_error(self):
        # A CRC-valid outer frame whose RPWB interior is garbage is a
        # protocol violation on a live stream, not an EOF.
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        a.sendall(pack_record(WIRE_BINARY_MAGIC + b"\x00" * 12))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_trailing_envelope_bytes_raise_protocol_error(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        envelope = (
            WIRE_BINARY_MAGIC
            + pack_record(json_record({"id": 1, "ok": True}))
            + pack_record(b"blob")
            + b"trailing"
        )
        a.sendall(pack_record(envelope))
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_oversized_binary_frame_rejected_on_recv(self):
        a, b = socket.socketpair()
        right = WireConnection(b, timeout=10.0)
        a.sendall(RECORD_HEADER.pack(MAX_PAYLOAD_BYTES + 1, 0) + WIRE_BINARY_MAGIC)
        with pytest.raises(WireProtocolError):
            right.recv()
        a.close()
        right.close()

    def test_byte_counters_match_across_the_pair(self):
        left, right = _pair()
        try:
            blob = encode_columns(("a",), {"m": np.asarray([1.5])})
            left.send({"id": 1, "kind": "sync"})
            left.send({"id": 2, "ok": True}, binary=blob)
            right.recv()
            right.recv()
            assert left.bytes_sent == right.bytes_received > 0
        finally:
            left.close()
            right.close()


# -- property-based equivalence --------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 3])
    def test_static_corpus_bit_identical(
        self, coordinator_factory, travel_domain, shard_count
    ):
        corpus = _fresh_corpus(10)
        coordinator = coordinator_factory(corpus, shard_count, domain=travel_domain)
        _assert_bit_identical(coordinator, corpus, travel_domain)

    @pytest.mark.parametrize("seed", [11, 29])
    def test_seeded_mutation_stream_bit_identical(
        self, coordinator_factory, travel_domain, seed
    ):
        rng = random.Random(seed)
        corpus = _fresh_corpus(8, seed=seed)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        step = 0
        for _ in range(3):
            for _ in range(rng.randint(3, 6)):
                _mutate(rng, corpus, step)
                step += 1
            _assert_bit_identical(coordinator, corpus, travel_domain)

    def test_eager_workers_bit_identical(self, coordinator_factory, travel_domain):
        rng = random.Random(5)
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain, eager=True)
        for step in range(5):
            _mutate(rng, corpus, step)
        _assert_bit_identical(coordinator, corpus, travel_domain)

    def test_search_results_carry_exact_ranks(self, coordinator_factory, travel_domain):
        corpus = _fresh_corpus(10)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        results = coordinator.search("travel food", limit=6)
        assert [result.rank for result in results] == list(
            range(1, len(results) + 1)
        )
        assert len({result.source_id for result in results}) == len(results)


# -- worker-side pre-merge -------------------------------------------------------------


class TestPreMergedRanking:
    def _score_pairs(self, pairs):
        return [(source_id, score.to_dict()) for source_id, score in pairs]

    @pytest.mark.parametrize("seed", [7, 23])
    def test_rank_top_bit_identical_to_single_process(
        self, coordinator_factory, travel_domain, seed
    ):
        rng = random.Random(seed)
        corpus = _fresh_corpus(12, seed=seed)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        step = 0
        for _ in range(2):
            for _ in range(rng.randint(2, 5)):
                _mutate(rng, corpus, step)
                step += 1
            coordinator.quiesce()
            twin = _twin(corpus)
            expected = SourceQualityModel(travel_domain).rank(twin)
            for limit in (1, 4, len(corpus) + 3):
                top = coordinator.rank_top(limit)
                assert self._score_pairs(top) == [
                    (a.source_id, a.score.to_dict()) for a in expected[:limit]
                ]

    def test_columnar_rank_matches_json_oracle(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(10)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        coordinator.quiesce()
        binary = coordinator.rank()
        oracle = coordinator.rank(columnar=False)
        assert self._score_pairs(binary) == self._score_pairs(oracle)

    def test_fit_scatter_cached_until_corpus_changes(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(9)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        kinds: list[str] = []
        inner = coordinator._scatter

        def spy(kind, payload, **kwargs):
            kinds.append(kind)
            return inner(kind, payload, **kwargs)

        coordinator._scatter = spy
        first = coordinator.rank_top(4)
        assert coordinator.rank_top(4) == first
        assert kinds.count("rank_fit") == 1  # second read hit the fit cache
        corpus.touch(corpus.source_ids()[0])
        coordinator.rank_top(4)
        assert kinds.count("rank_fit") == 2  # version bump invalidated it

    def test_search_stats_cached_until_corpus_changes(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(9)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        kinds: list[str] = []
        inner = coordinator._scatter

        def spy(kind, payload, **kwargs):
            kinds.append(kind)
            return inner(kind, payload, **kwargs)

        coordinator._scatter = spy
        first = coordinator.search("travel food", limit=5)
        assert coordinator.search("travel food", limit=5) == first
        assert kinds.count("search_stats") == 1  # phase 1 served from cache
        assert kinds.count("search_score") == 2  # phases 2/3 always scatter
        coordinator.search("travel", limit=5)
        assert kinds.count("search_stats") == 2  # distinct terms, own entry
        corpus.touch(corpus.source_ids()[0])
        refreshed = coordinator.search("travel food", limit=5)
        assert kinds.count("search_stats") == 3  # version bump dropped it
        assert [r.source_id for r in refreshed] == [r.source_id for r in first]

    def test_order_dependent_normalizer_falls_back_to_full_rank(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        model = coordinator._model
        model._normalizer = ZScoreNormalizer(model._registry)
        assert not model.supports_shard_premerge()
        expected = self._score_pairs(coordinator.rank()[:3])
        assert self._score_pairs(coordinator.rank_top(3)) == expected

    def test_rank_top_rejects_non_positive_limit(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        with pytest.raises(ShardingError):
            coordinator.rank_top(0)

    def test_all_dead_shards_reported_together(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(10)
        coordinator = coordinator_factory(corpus, 4, domain=travel_domain)
        for victim in (1, 3):
            process = coordinator.processes[victim]
            process.send_signal(signal.SIGKILL)
            process.wait()
        with pytest.raises(ShardUnavailableError) as excinfo:
            coordinator.search("travel food", limit=5)
        assert excinfo.value.shard_indices == (1, 3)
        assert excinfo.value.shard_index in (1, 3)
        assert "1, 3" in str(excinfo.value)
        # Every victim is now marked down; degraded reads still serve,
        # and restarting both restores strict reads.
        assert coordinator.live_shards == [0, 2]
        assert coordinator.search("travel food", limit=5, allow_degraded=True)
        for victim in (1, 3):
            coordinator.restart_shard(victim)
        _assert_bit_identical(coordinator, corpus, travel_domain)


# -- coordinator semantics -------------------------------------------------------------


class TestCoordinatorSemantics:
    def test_read_error_parity_with_single_process(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        with pytest.raises(SearchError):
            coordinator.search("travel", limit=0)
        with pytest.raises(UnsearchableQueryError):
            coordinator.search("a b c")
        with pytest.raises(SearchError):
            coordinator.search("!!!")

    def test_empty_corpus_reads_raise_like_single_process(
        self, coordinator_factory, travel_domain
    ):
        corpus = SourceCorpus()
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        with pytest.raises(SearchError):
            coordinator.search("travel")
        with pytest.raises(AssessmentError):
            coordinator.rank()
        # ...and the cluster starts serving the moment sources arrive.
        corpus.add(_extra_source("first-source", seed=1))
        corpus.add(_extra_source("second-source", seed=2))
        _assert_bit_identical(coordinator, corpus, travel_domain)

    def test_negative_minimum_topical_is_rejected(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(
            corpus,
            2,
            domain=travel_domain,
            engine_config=SearchEngineConfig(minimum_topical_score=-0.5),
        )
        with pytest.raises(SearchError):
            coordinator.search("travel")

    def test_remote_errors_rebuild_as_local_types(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        with pytest.raises(ShardingError, match="unknown request kind"):
            coordinator._request(coordinator._shards[0], "bogus-kind", {})
        # The failed request must not poison the connection.
        assert coordinator.live_shards == [0, 1]
        coordinator.search("travel", limit=3)

    def test_quiesce_reports_coordinator_version_everywhere(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        touched = corpus.source_ids()[0]
        corpus.touch(touched)
        versions = coordinator.quiesce()
        assert set(versions) == {0, 1, 2}
        # A shard's version tracks the last record replicated *to it*:
        # the touched source's owner reaches the coordinator version, the
        # others lag at their own last record, never ahead.
        assert versions[partition_shard(touched, 3)]["version"] == corpus.version
        assert all(v["version"] <= corpus.version for v in versions.values())
        assert sum(v["sources"] for v in versions.values()) == len(corpus)

    def test_busy_times_accumulate_read_cpu(self, coordinator_factory, travel_domain):
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        before = coordinator.busy_times()
        for _ in range(3):
            coordinator.search("travel food", limit=5)
        after = coordinator.busy_times()
        assert set(after) == {0, 1}
        assert all(after[i] >= before[i] >= 0.0 for i in after)
        assert sum(after.values()) > sum(before.values())

    def test_close_reaps_every_worker(self, travel_domain):
        from repro.sharding import ShardCoordinator

        corpus = _fresh_corpus(6)
        coordinator = ShardCoordinator(corpus, 2, domain=travel_domain)
        processes = [p for p in coordinator.processes if p is not None]
        assert len(processes) == 2
        coordinator.close()
        coordinator.close()  # idempotent
        assert all(process.poll() is not None for process in processes)


# -- fault matrix ----------------------------------------------------------------------


def _source_owned_by(corpus: SourceCorpus, shard_index: int, shard_count: int) -> str:
    for source_id in corpus.source_ids():
        if partition_shard(source_id, shard_count) == shard_index:
            return source_id
    raise AssertionError(f"no source owned by shard {shard_index}")


class TestWorkerFaultMatrix:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_sigkill_degrade_restart_recover(
        self, coordinator_factory, travel_domain, tmp_path, victim
    ):
        """SIGKILL mid-burst → strict error → degraded reads → bit-identical recovery.

        Workers run with ``fsync=True``: a SIGKILL must not lose journal
        records that ``apply`` already acknowledged, so the restarted
        worker recovers warm from its own store and the resync only has
        to overlay the tail the kill swallowed.
        """
        rng = random.Random(40 + victim)
        corpus = _fresh_corpus(9, seed=7)
        coordinator = coordinator_factory(
            corpus,
            3,
            domain=travel_domain,
            store_directory=tmp_path / f"cluster-{victim}",
            fsync=True,
        )
        for step in range(4):
            _mutate(rng, corpus, step)
        coordinator.quiesce()
        coordinator.checkpoint()

        # Mutate a source owned by the victim, then kill mid-burst: the
        # flush finds the shard dead and must drop-and-count, not hang.
        owned = _source_owned_by(corpus, victim, 3)
        corpus.touch(owned)
        coordinator.processes[victim].send_signal(signal.SIGKILL)
        coordinator.processes[victim].wait()
        coordinator.flush()
        assert coordinator.dropped_mutations >= 1
        assert victim not in coordinator.live_shards

        with pytest.raises(ShardUnavailableError) as excinfo:
            coordinator.search("travel food")
        assert excinfo.value.shard_index == victim
        with pytest.raises(ShardUnavailableError):
            coordinator.rank()

        # Degraded reads serve the live partitions only.
        owned_by_victim = {
            source_id
            for source_id in corpus.source_ids()
            if partition_shard(source_id, 3) == victim
        }
        degraded = coordinator.search("travel food", limit=20, allow_degraded=True)
        assert all(result.source_id not in owned_by_victim for result in degraded)
        degraded_rank = coordinator.rank(allow_degraded=True)
        assert owned_by_victim.isdisjoint(
            {source_id for source_id, _ in degraded_rank}
        )

        # Restart: per-shard recovery + resync put the cluster back
        # bit-identical to a single-process twin.
        coordinator.restart_shard(victim)
        assert coordinator.live_shards == [0, 1, 2]
        _assert_bit_identical(coordinator, corpus, travel_domain)

    def test_kill_during_scatter_marks_down_without_wedging(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(corpus, 3, domain=travel_domain)
        coordinator.search("travel", limit=3)
        coordinator.processes[2].send_signal(signal.SIGKILL)
        coordinator.processes[2].wait()
        results = coordinator.search("travel", limit=3, allow_degraded=True)
        assert coordinator.live_shards == [0, 1]
        assert all(partition_shard(r.source_id, 3) != 2 for r in results)
        coordinator.restart_shard(2)
        _assert_bit_identical(coordinator, corpus, travel_domain)

    def test_restart_of_live_shard_is_allowed(
        self, coordinator_factory, travel_domain
    ):
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(corpus, 2, domain=travel_domain)
        info = coordinator.restart_shard(1)
        assert info["version"] == corpus.version
        _assert_bit_identical(coordinator, corpus, travel_domain)


# -- per-shard persistence -------------------------------------------------------------


class TestPerShardPersistence:
    def test_shard_stamp_mismatch_is_rejected(self, tmp_path):
        corpus = _fresh_corpus(4)
        store = CorpusStore(tmp_path / "s", shard=(0, 2))
        store.attach(corpus)
        store.checkpoint()
        store.close()
        wrong = CorpusStore(tmp_path / "s", shard=(1, 2))
        with pytest.raises(PersistenceError, match="belongs to shard 0 of 2"):
            wrong.recover()
        # The matching identity still recovers.
        again = CorpusStore(tmp_path / "s", shard=(0, 2))
        result = again.recover()
        assert result.corpus.source_ids() == corpus.source_ids()

    def test_unstamped_snapshot_still_recovers_into_sharded_store(self, tmp_path):
        corpus = _fresh_corpus(4)
        store = CorpusStore(tmp_path / "s")
        store.attach(corpus)
        store.checkpoint()
        store.close()
        sharded = CorpusStore(tmp_path / "s", shard=(0, 2))
        assert sharded.recover().corpus.source_ids() == corpus.source_ids()

    def test_invalid_shard_tuple_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            CorpusStore(tmp_path / "s", shard=(2, 2))

    def test_cluster_recovery_matches_coordinator_state(
        self, coordinator_factory, travel_domain, tmp_path
    ):
        rng = random.Random(3)
        corpus = _fresh_corpus(8)
        coordinator = coordinator_factory(
            corpus, 3, domain=travel_domain, store_directory=tmp_path / "c"
        )
        for step in range(5):
            _mutate(rng, corpus, step)
        coordinator.quiesce()
        coordinator.checkpoint()
        coordinator.close()
        stack = ClusterStore(tmp_path / "c").recover_stack(domain=travel_domain)
        assert stack.corpus.version == corpus.version
        assert stack.corpus.source_ids() == sorted(corpus.source_ids())
        recovered_payloads = {
            payload["source_id"]: payload
            for payload in stack.corpus.to_dict()["sources"]
        }
        assert recovered_payloads == {
            source_id: corpus.get(source_id).to_dict()
            for source_id in corpus.source_ids()
        }
        # The recovered single-process stack ranks identically to a twin.
        expected = SourceQualityModel(travel_domain).rank(_twin(corpus))
        recovered = stack.source_model.rank(stack.corpus)
        assert [a.source_id for a in recovered] == [a.source_id for a in expected]
        for mine, theirs in zip(recovered, expected):
            assert mine.score.to_dict() == theirs.score.to_dict()

    def test_missing_shard_raises_typed_error(self, tmp_path):
        cluster = ClusterStore(tmp_path / "c", shard_count=3)
        for index in (0, 2):  # shard 1 never materialises
            store = cluster.shard_store(index)
            store.attach(SourceCorpus())
            store.close()
        with pytest.raises(MissingShardSnapshotError) as excinfo:
            cluster.recover_stack()
        assert excinfo.value.shard_index == 1
        assert "shard 1" in str(excinfo.value)

    def test_manifest_mismatch_rejected(self, tmp_path):
        ClusterStore(tmp_path / "c", shard_count=2)
        with pytest.raises(PersistenceError):
            ClusterStore(tmp_path / "c", shard_count=3)
        assert ClusterStore(tmp_path / "c").shard_count == 2

    def test_duplicate_source_across_shards_rejected(self, tmp_path):
        cluster = ClusterStore(tmp_path / "c", shard_count=2)
        for index in range(2):
            store = cluster.shard_store(index)
            store.attach(_twin_single("dup-source"))
            store.checkpoint()
            store.close()
        with pytest.raises(PersistenceError, match="more than one shard store"):
            cluster.recover_stack()

    def test_cli_recover_reads_cluster_and_names_missing_shard(
        self, coordinator_factory, travel_domain, tmp_path, capsys
    ):
        corpus = _fresh_corpus(6)
        coordinator = coordinator_factory(
            corpus, 2, domain=travel_domain, store_directory=tmp_path / "c"
        )
        coordinator.checkpoint()
        coordinator.close()
        assert cli_main(["recover", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "cluster (2 shard stores)" in out
        import shutil

        shutil.rmtree(tmp_path / "c" / "shard-1")
        assert cli_main(["recover", str(tmp_path / "c")]) == 1
        out = capsys.readouterr().out
        assert "shard 1" in out and "error:" in out


def _twin_single(source_id: str) -> SourceCorpus:
    corpus = SourceCorpus()
    corpus.add(_extra_source(source_id, seed=9))
    return corpus


# -- stress matrix (make shard-stress) -------------------------------------------------


@pytest.mark.shard_stress
class TestShardStress:
    def test_long_stream_with_interleaved_kills(
        self, coordinator_factory, travel_domain, tmp_path
    ):
        """Seeded long-run: mutation bursts, random SIGKILLs, always recovers."""
        rng = random.Random(97)
        corpus = _fresh_corpus(10, seed=13)
        coordinator = coordinator_factory(
            corpus,
            4,
            domain=travel_domain,
            store_directory=tmp_path / "stress",
            fsync=True,
        )
        step = 0
        for round_index in range(4):
            for _ in range(rng.randint(4, 8)):
                _mutate(rng, corpus, step)
                step += 1
            if round_index % 2 == 1:
                victim = rng.randrange(4)
                coordinator.quiesce()
                coordinator.checkpoint()
                coordinator.processes[victim].send_signal(signal.SIGKILL)
                coordinator.processes[victim].wait()
                corpus.touch(rng.choice(corpus.source_ids()))
                coordinator.flush()
                coordinator.restart_shard(victim)
            _assert_bit_identical(coordinator, corpus, travel_domain)
        assert coordinator.live_shards == [0, 1, 2, 3]
