"""Rule-based sentiment analyser.

The analyser scores a text by summing the polarities of its opinion words,
applying negation (a negation token flips the polarity of the next few
opinion words) and intensity modifiers ("very good" scores more than
"good").  The final score is squashed into ``[-1, 1]`` and complemented
with a subjectivity ratio (opinionated tokens over total tokens), which the
indicator layer uses to ignore texts with no opinion content.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SentimentError
from repro.perf.cache import LRUCache
from repro.sentiment.lexicon import SentimentLexicon, default_lexicon

__all__ = ["SentimentScore", "SentimentAnalyzer"]

_TOKEN_PATTERN = re.compile(r"[a-z][a-z\-']+")


@dataclass(frozen=True)
class SentimentScore:
    """Sentiment of one text."""

    polarity: float
    subjectivity: float
    positive_hits: int
    negative_hits: int
    token_count: int

    @property
    def label(self) -> str:
        """Coarse label: ``positive`` / ``negative`` / ``neutral``."""
        if self.polarity > 0.1:
            return "positive"
        if self.polarity < -0.1:
            return "negative"
        return "neutral"

    @property
    def is_opinionated(self) -> bool:
        """True when the text contains at least one opinion word."""
        return (self.positive_hits + self.negative_hits) > 0

    def to_dict(self) -> dict[str, float | int | str]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "polarity": self.polarity,
            "subjectivity": self.subjectivity,
            "positive_hits": self.positive_hits,
            "negative_hits": self.negative_hits,
            "token_count": self.token_count,
            "label": self.label,
        }


class SentimentAnalyzer:
    """Score texts with a polarity lexicon, negation and intensity handling."""

    #: Default number of memoised per-text scores.  Sized above the distinct
    #: text count of the bench-scale corpora: an LRU smaller than the
    #: working set degrades to zero hits under sequential scans.
    CACHE_SIZE = 65536

    def __init__(
        self,
        lexicon: Optional[SentimentLexicon] = None,
        negation_window: int = 3,
        cache_size: Optional[int] = None,
    ) -> None:
        if negation_window < 1:
            raise SentimentError("negation_window must be >= 1")
        self._lexicon = lexicon or default_lexicon()
        self._negation_window = negation_window
        # Scoring is a pure function of (lexicon, negation_window, text) and
        # both configuration inputs are fixed per analyser, so per-text
        # memoisation is safe; SentimentScore is frozen and shared freely.
        # ``cache_size=0`` disables the memo.
        self._cache = LRUCache(
            maxsize=self.CACHE_SIZE if cache_size is None else cache_size
        )

    @property
    def lexicon(self) -> SentimentLexicon:
        """The polarity lexicon in use."""
        return self._lexicon

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss statistics of the per-text score memo."""
        return self._cache.stats()

    @staticmethod
    def tokenize(text: str) -> list[str]:
        """Lower-case tokenisation shared with the lexicon keys."""
        return _TOKEN_PATTERN.findall(text.lower())

    def score(self, text: str) -> SentimentScore:
        """Score a single text (memoised per distinct text)."""
        key = text or ""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._score_uncached(key)
        self._cache.put(key, result)
        return result

    def _score_uncached(self, text: str) -> SentimentScore:
        tokens = self.tokenize(text or "")
        if not tokens:
            return SentimentScore(
                polarity=0.0, subjectivity=0.0, positive_hits=0,
                negative_hits=0, token_count=0,
            )

        total = 0.0
        positive_hits = 0
        negative_hits = 0
        negation_countdown = 0
        modifier = 1.0

        for token in tokens:
            if self._lexicon.is_negation(token):
                negation_countdown = self._negation_window
                modifier = 1.0
                continue
            token_modifier = self._lexicon.modifier(token)
            if token_modifier != 1.0:
                modifier *= token_modifier
                continue

            polarity = self._lexicon.polarity(token)
            if polarity == 0.0:
                if negation_countdown > 0:
                    negation_countdown -= 1
                modifier = 1.0
                continue

            effective = polarity * modifier
            if negation_countdown > 0:
                effective = -effective
                negation_countdown = 0
            if effective > 0:
                positive_hits += 1
            elif effective < 0:
                negative_hits += 1
            total += effective
            modifier = 1.0

        opinion_hits = positive_hits + negative_hits
        polarity_score = math.tanh(total / math.sqrt(opinion_hits)) if opinion_hits else 0.0
        subjectivity = opinion_hits / len(tokens)
        return SentimentScore(
            polarity=polarity_score,
            subjectivity=subjectivity,
            positive_hits=positive_hits,
            negative_hits=negative_hits,
            token_count=len(tokens),
        )

    def score_many(self, texts: Iterable[str]) -> list[SentimentScore]:
        """Score a batch of texts."""
        return [self.score(text) for text in texts]

    def average_polarity(self, texts: Iterable[str], opinionated_only: bool = True) -> float:
        """Average polarity over a batch of texts.

        When ``opinionated_only`` is set (the default) texts without opinion
        words are excluded from the average; an empty batch scores 0.0.
        """
        scores = self.score_many(texts)
        if opinionated_only:
            scores = [score for score in scores if score.is_opinionated]
        if not scores:
            return 0.0
        return sum(score.polarity for score in scores) / len(scores)
