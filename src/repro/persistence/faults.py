"""Fault-injection harness for the persistence layer.

Every byte the persistence layer puts on disk flows through the I/O
channel in :mod:`repro.persistence.format` (write / fsync / replace).
This module installs a channel that *kills the process* — by raising
:class:`InjectedCrash` — at a chosen byte boundary:

* **mid-write** (``kill_after_bytes``): the first ``k`` bytes of the
  doomed write reach the file, the rest never do — the torn-record /
  torn-header classes;
* **on fsync** (``kill_on_fsync``): the data was written but the fsync
  never acknowledged — the record may or may not be durable, and
  recovery keeping it is allowed (keeping *more* than acknowledged is
  fine; losing acknowledged data is not);
* **on rename** (``kill_on_replace``): the snapshot bytes are complete
  in the temporary file but the atomic rename never happened — the
  post-data-pre-rename class; the previous snapshot must still load.

The harness counts *matching* operations (optionally filtered by file
name substring) and triggers on the Nth one, so a test can walk the kill
point across every operation a scenario performs::

    plan = FaultPlan(kill_after_bytes=7, operation_index=2, match="journal")
    with inject_faults(plan):
        with pytest.raises(InjectedCrash):
            corpus.add(source)          # the 3rd journal write dies mid-record

After the ``with`` block the real channel is restored; the test then
runs recovery against the files the "crash" left behind and asserts the
durability contract.  The simulated process death is an exception rather
than an actual ``os._exit`` so one test process can run the whole kill
matrix; the write-side code paths never catch :class:`InjectedCrash`
(it deliberately subclasses :class:`BaseException`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator, Optional

from contextlib import contextmanager

from repro.persistence import format as _format

__all__ = ["InjectedCrash", "FaultPlan", "FaultyIO", "inject_faults"]


class InjectedCrash(BaseException):
    """Simulated process death at an injected kill point.

    A ``BaseException``: production persistence code must not be able to
    swallow it with a broad ``except Exception`` — a real crash cannot be
    caught either.
    """


@dataclass
class FaultPlan:
    """Where to kill the next matching I/O operation.

    Exactly one trigger should be set.  ``operation_index`` selects the
    Nth matching operation (0-based) counted per trigger kind; ``match``
    restricts matching to paths whose name contains the substring.
    """

    #: Kill a write after this many bytes of it reached the file.
    kill_after_bytes: Optional[int] = None
    #: Kill at the fsync call (data written, durability unacknowledged).
    kill_on_fsync: bool = False
    #: Kill at the atomic rename (tmp file complete, never renamed).
    kill_on_replace: bool = False
    #: Trigger on the Nth matching operation of the trigger's kind.
    operation_index: int = 0
    #: Only operations on paths whose name contains this substring match.
    match: str = ""
    #: Internal per-kind counters (writes/fsyncs/replaces seen so far).
    counts: dict = field(default_factory=lambda: {"write": 0, "fsync": 0, "replace": 0})
    fired: bool = False

    def _matches(self, path: Path) -> bool:
        return self.match in path.name

    def _due(self, kind: str, path: Path) -> bool:
        if self.fired or not self._matches(path):
            return False
        index = self.counts[kind]
        self.counts[kind] = index + 1
        if index == self.operation_index:
            self.fired = True
            return True
        return False


class FaultyIO:
    """I/O channel that executes a :class:`FaultPlan` (see module docstring)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def write(self, handle: BinaryIO, path: Path, data: bytes) -> None:
        plan = self.plan
        if plan.kill_after_bytes is not None and plan._due("write", path):
            kept = max(0, min(len(data), plan.kill_after_bytes))
            handle.write(data[:kept])
            # The torn prefix is what a real crash can leave on disk; make
            # it visible to the recovery that follows.
            handle.flush()
            os.fsync(handle.fileno())
            raise InjectedCrash(
                f"write of {len(data)} bytes to {path.name} killed after {kept}"
            )
        handle.write(data)

    def fsync(self, handle: BinaryIO, path: Path) -> None:
        handle.flush()
        if self.plan.kill_on_fsync and self.plan._due("fsync", path):
            os.fsync(handle.fileno())
            raise InjectedCrash(f"fsync of {path.name} killed")
        os.fsync(handle.fileno())

    def replace(self, source: Path, destination: Path) -> None:
        if self.plan.kill_on_replace and self.plan._due("replace", destination):
            raise InjectedCrash(
                f"rename {source.name} -> {destination.name} killed before rename"
            )
        os.replace(source, destination)


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` on the persistence I/O channel for the ``with`` body."""
    previous = _format._install_io(FaultyIO(plan))
    try:
        yield plan
    finally:
        _format._install_io(previous)
