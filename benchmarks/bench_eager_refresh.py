#!/usr/bin/env python
"""Post-mutation first-read latency: eager (coalescing) vs lazy refresh.

Builds a large corpus (1000 sources by default) served by a
:class:`~repro.search.engine.SearchEngine` and a
:class:`~repro.core.source_quality.SourceQualityModel`, then drives a
stream of mutation *bursts* (several add/remove/grow/touch events per
burst) against two identical deployments:

* **lazy** — the PR 1–3 stack on its own: consumers refresh on read, so
  the first read after a burst absorbs the whole incremental patch;
* **eager** — the same consumers registered with an
  :class:`~repro.serving.EagerRefreshScheduler` in coalescing mode: the
  burst coalesces into one background patch per consumer
  (``flush()`` stands in for the background worker's wake-up, keeping the
  measurement deterministic), and the first read then finds a clean
  dirty flag and serves in O(1).

Per burst the harness measures the *first-read latency* — one
``model.assessment_context`` plus one ``engine.search`` — on each
deployment.  Before timing counts, every burst asserts the eager
deployment is **bit-identical** to the lazy one (rankings, overall
scores, raw/normalised matrices, search results) and, on the final
state, to from-scratch rebuilds; the coalescing guarantee (one patch per
consumer per burst) is counter-asserted too.  The eager patch cost is
recorded honestly alongside — eager mode moves work off the read path,
it does not delete it.

Results are merged into ``BENCH_perf.json`` under the ``eager_refresh``
key.  Run with ``make perf`` or::

    PYTHONPATH=src python benchmarks/bench_eager_refresh.py

``--strict`` exits non-zero when the ≥5x first-read speedup target is
missed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.domain import DomainOfInterest, TimeInterval
from repro.core.source_quality import SourceQualityModel
from repro.perf.buildinfo import git_build_stamp
from repro.persistence.format import atomic_write_json
from repro.search.engine import SearchEngine
from repro.serving import EagerRefreshScheduler, RefreshMode
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import CorpusGenerator, CorpusSpec
from repro.sources.models import Discussion, Post
from repro.sources.webstats import AlexaLikeService

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: First-read latency target recorded in the JSON so future PRs see the
#: goalposts: eager mode must serve the first post-burst read ≥5x faster.
TARGET_FIRST_READ_SPEEDUP = 5.0

FIRST_READ_QUERY = "travel flight resort"


def _domain() -> DomainOfInterest:
    return DomainOfInterest(
        categories=("travel", "food"),
        time_interval=TimeInterval(0.0, 365.0),
        locations=("Milan",),
        name="bench-eager-refresh",
    )


def _build_dataset(source_count: int, spare_count: int) -> tuple[SourceCorpus, list]:
    """Generate ``source_count`` sources plus a held-back add stream."""
    corpus = CorpusGenerator(
        CorpusSpec(
            source_count=source_count + spare_count,
            seed=29,
            discussion_budget=10,
            user_budget=10,
        )
    ).generate()
    spare_ids = corpus.source_ids()[source_count:]
    spares = [corpus.remove(source_id) for source_id in spare_ids]
    return corpus, spares


def _grow(source, tag: str) -> None:
    discussion = Discussion(
        discussion_id=f"eager-stream-{tag}",
        category="travel",
        title="travel flight resort late breaking",
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"eager-stream-post-{tag}",
            author_id="u1",
            day=2.0,
            text="travel flight resort beach hotel",
        )
    )
    source.add_discussion(discussion)


def _mutate(corpus: SourceCorpus, spares: list, event: int) -> str:
    """Apply one streaming mutation; rotate through the four mutation kinds.

    Applied identically to the lazy and the eager corpus (same seed, same
    event sequence), so the two deployments always hold the same content.
    """
    kind = event % 4
    if kind == 0 and spares:
        corpus.add(spares.pop())
        return "add"
    if kind == 1:
        corpus.remove(corpus.source_ids()[event % len(corpus)])
        return "remove"
    if kind == 2:
        _grow(corpus.sources()[event % len(corpus)], str(event))
        return "grow"
    source = corpus.sources()[event % len(corpus)]
    post = next(iter(source.posts()), None)
    if post is not None:
        post.text = f"reworded travel content {event}"
    corpus.touch(source.source_id)
    return "touch"


def _first_read(model: SourceQualityModel, corpus: SourceCorpus, engine: SearchEngine):
    """The latency-critical serving read: one ranking plus one query."""
    context = model.assessment_context(corpus)
    results = engine.search(FIRST_READ_QUERY, 20)
    return context, results


def _assert_bit_identical(eager, lazy, label: str) -> None:
    eager_context, eager_results = eager
    lazy_context, lazy_results = lazy
    if [a.source_id for a in eager_context.ranking] != [
        a.source_id for a in lazy_context.ranking
    ]:
        raise AssertionError(f"{label}: ranking diverged between eager and lazy")
    for source_id, expected in lazy_context.assessments.items():
        if eager_context.assessments[source_id].overall != expected.overall:
            raise AssertionError(f"{label}: overall diverged for {source_id!r}")
    if eager_context.raw_vectors != lazy_context.raw_vectors:
        raise AssertionError(f"{label}: raw measure matrix diverged")
    if eager_context.normalized_vectors != lazy_context.normalized_vectors:
        raise AssertionError(f"{label}: normalised matrix diverged")
    if eager_results != lazy_results:
        raise AssertionError(f"{label}: search results diverged")


def _assert_matches_rebuild(domain, corpus, eager) -> None:
    """The eager deployment must equal from-scratch rebuilds, bit for bit."""
    eager_context, eager_results = eager
    rebuilt_context = SourceQualityModel(domain).assessment_context(corpus)
    rebuilt_results = SearchEngine(corpus, panel=AlexaLikeService()).search(
        FIRST_READ_QUERY, 20
    )
    if [a.source_id for a in eager_context.ranking] != [
        a.source_id for a in rebuilt_context.ranking
    ]:
        raise AssertionError("final state: eager ranking diverged from rebuild")
    if eager_context.normalized_vectors != rebuilt_context.normalized_vectors:
        raise AssertionError("final state: eager matrix diverged from rebuild")
    if eager_results != rebuilt_results:
        raise AssertionError("final state: eager results diverged from rebuild")


def run(
    output_path: Path,
    source_count: int,
    spare_count: int,
    events: int,
    burst: int,
) -> dict:
    """Run the burst stream and merge the section into the report."""
    print(
        f"building twin corpora ({source_count} sources + {spare_count} spare)...",
        flush=True,
    )
    domain = _domain()
    lazy_corpus, lazy_spares = _build_dataset(source_count, spare_count)
    eager_corpus, eager_spares = _build_dataset(source_count, spare_count)

    lazy_model = SourceQualityModel(domain)
    lazy_engine = SearchEngine(lazy_corpus, panel=AlexaLikeService())
    eager_model = SourceQualityModel(domain)
    eager_engine = SearchEngine(eager_corpus, panel=AlexaLikeService())

    scheduler = EagerRefreshScheduler(eager_corpus, RefreshMode.COALESCING)
    scheduler.register_search_engine(eager_engine, name="engine")
    scheduler.register_source_model(eager_model, name="model")

    # Warm both deployments so every later patch is incremental.
    _first_read(lazy_model, lazy_corpus, lazy_engine)
    _first_read(eager_model, eager_corpus, eager_engine)

    lazy_seconds: list[float] = []
    eager_seconds: list[float] = []
    patch_seconds: list[float] = []
    kinds: list[str] = []
    for event in range(events):
        burst_kinds = []
        for step in range(burst):
            index = event * burst + step
            kind = _mutate(lazy_corpus, lazy_spares, index)
            if _mutate(eager_corpus, eager_spares, index) != kind:
                raise AssertionError("twin corpora diverged in mutation kind")
            burst_kinds.append(kind)
        kinds.append("+".join(burst_kinds))

        # Eager: the coalesced background patch runs off the read path...
        patches_before = scheduler.counters.get("patches_applied")
        start = time.perf_counter()
        patched = scheduler.flush()
        patch_seconds.append(time.perf_counter() - start)
        if patched != 2 or scheduler.counters.get("patches_applied") != patches_before + 1:
            raise AssertionError(
                f"event {event}: burst of {burst} did not coalesce into one patch"
            )
        # ...so the first read finds clean flags.
        start = time.perf_counter()
        eager_read = _first_read(eager_model, eager_corpus, eager_engine)
        eager_seconds.append(time.perf_counter() - start)

        # Lazy: the first read absorbs the whole patch.
        start = time.perf_counter()
        lazy_read = _first_read(lazy_model, lazy_corpus, lazy_engine)
        lazy_seconds.append(time.perf_counter() - start)

        _assert_bit_identical(eager_read, lazy_read, f"event {event}")
        print(
            f"  event {event:2d} [{kinds[-1]:>24s}]"
            f"  eager first read {eager_seconds[-1]*1e3:8.3f} ms"
            f"  lazy first read {lazy_seconds[-1]*1e3:8.3f} ms"
            f"  (eager patch {patch_seconds[-1]*1e3:8.2f} ms off-path)",
            flush=True,
        )

    print("asserting final state against from-scratch rebuilds...", flush=True)
    _assert_matches_rebuild(
        domain, eager_corpus, _first_read(eager_model, eager_corpus, eager_engine)
    )
    scheduler.close()

    lazy_total = sum(lazy_seconds)
    eager_total = sum(eager_seconds)
    speedup = lazy_total / eager_total if eager_total > 0 else float("inf")
    section = {
        "sources": source_count,
        "events": events,
        "burst": burst,
        "event_kinds": kinds,
        "mode": "coalescing",
        "lazy_first_read_seconds": lazy_total,
        "eager_first_read_seconds": eager_total,
        "eager_patch_seconds": sum(patch_seconds),
        "mean_lazy_first_read_ms": lazy_total / events * 1e3,
        "mean_eager_first_read_ms": eager_total / events * 1e3,
        "speedup": speedup,
        "target_speedup": TARGET_FIRST_READ_SPEEDUP,
        "scheduler_counters": scheduler.counters.snapshot(),
        "model_counters": eager_model.counters.snapshot(),
    }

    report: dict = {}
    if output_path.exists():
        try:
            report = json.loads(output_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            report = {}
    report.setdefault(
        "meta",
        {"python": platform.python_version(), "platform": platform.platform()},
    )
    report["meta"].update(git_build_stamp())
    report["eager_refresh"] = section
    try:
        atomic_write_json(output_path, report)
    except OSError as exc:
        print(f"FATAL: could not write {output_path}: {exc}", file=sys.stderr)
        sys.exit(1)
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON report to merge into (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--sources", type=int, default=1000,
        help="corpus size served while mutations stream in (default: 1000)",
    )
    parser.add_argument(
        "--events", type=int, default=6,
        help="number of mutation bursts (default: 6)",
    )
    parser.add_argument(
        "--burst", type=int, default=4,
        help="mutations per burst, coalesced into one eager patch (default: 4)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    args = parser.parse_args(argv)
    spare_count = (args.events * args.burst + 3) // 4 + 1  # one spare per 'add'

    section = run(args.output, args.sources, spare_count, args.events, args.burst)
    status = (
        "[ok]"
        if section["speedup"] >= section["target_speedup"]
        else f"[BELOW {section['target_speedup']}x TARGET]"
    )
    print(
        f"eager_refresh   lazy first read {section['lazy_first_read_seconds']:8.3f}s  "
        f"eager first read {section['eager_first_read_seconds']:8.3f}s  "
        f"speedup {section['speedup']:7.1f}x  {status}"
    )
    print(f"wrote {args.output}")
    if args.strict and section["speedup"] < section["target_speedup"]:
        print("FATAL: eager-refresh first-read speedup target missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
