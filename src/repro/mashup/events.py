"""Event bus used to synchronise mashup components.

DashMash components communicate through events (the paper's "further
synchronization with another map and another list-based viewer"): selecting
an item in a viewer publishes an event; subscribed components react by
updating their own state.  The bus is intentionally simple — synchronous,
in-process, topic based — which keeps compositions deterministic and easy
to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "EventBus"]


@dataclass(frozen=True)
class Event:
    """A single event published on the bus."""

    topic: str
    payload: Any
    publisher: Optional[str] = None


class EventBus:
    """Synchronous topic-based publish/subscribe bus."""

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Callable[[Event], None]]] = {}
        self._history: list[Event] = []

    def subscribe(self, topic: str, handler: Callable[[Event], None]) -> None:
        """Register ``handler`` for every event published on ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Callable[[Event], None]) -> None:
        """Remove a previously registered handler (no-op when absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, event: Event) -> int:
        """Deliver ``event`` to every subscriber of its topic.

        Returns the number of handlers notified.  Delivery is synchronous
        and in subscription order.
        """
        self._history.append(event)
        handlers = list(self._subscribers.get(event.topic, ()))
        for handler in handlers:
            handler(event)
        return len(handlers)

    def emit(self, topic: str, payload: Any, publisher: Optional[str] = None) -> int:
        """Convenience wrapper building and publishing an :class:`Event`."""
        return self.publish(Event(topic=topic, payload=payload, publisher=publisher))

    def history(self, topic: Optional[str] = None) -> list[Event]:
        """Events published so far (optionally restricted to one topic)."""
        if topic is None:
            return list(self._history)
        return [event for event in self._history if event.topic == topic]

    def clear_history(self) -> None:
        """Forget the recorded event history (subscriptions are kept)."""
        self._history.clear()
