"""Unit tests for the Web 2.0 entity model (repro.sources.models)."""

from __future__ import annotations

import pytest

from repro.sources.models import (
    AccountKind,
    Discussion,
    Interaction,
    InteractionType,
    Post,
    Source,
    SourceType,
    UserProfile,
)


def make_post(post_id="p1", author="u1", day=10.0, **kwargs) -> Post:
    return Post(post_id=post_id, author_id=author, day=day, **kwargs)


class TestUserProfile:
    def test_age_is_measured_from_registration(self):
        profile = UserProfile(user_id="u1", name="alice", registered_at=100.0)
        assert profile.age(150.0) == pytest.approx(50.0)

    def test_age_never_negative(self):
        profile = UserProfile(user_id="u1", name="alice", registered_at=100.0)
        assert profile.age(50.0) == 0.0

    def test_roundtrip_serialisation(self):
        profile = UserProfile(
            user_id="u1", name="alice", registered_at=3.5,
            location="Milan", account_kind=AccountKind.NEWS,
        )
        assert UserProfile.from_dict(profile.to_dict()) == profile

    def test_default_account_kind_is_person(self):
        assert UserProfile(user_id="u", name="n").account_kind is AccountKind.PERSON


class TestPost:
    def test_distinct_tags_deduplicates(self):
        post = make_post(tags=("a", "b", "a"))
        assert post.distinct_tags() == {"a", "b"}

    def test_roundtrip_serialisation(self):
        post = make_post(
            text="hello", category="travel", tags=("t1", "t2"),
            location="Milan", on_topic=False, read_count=4,
            feedback_count=2, reply_count=1,
        )
        assert Post.from_dict(post.to_dict()) == post


class TestDiscussion:
    def make_discussion(self) -> Discussion:
        discussion = Discussion(
            discussion_id="d1", category="travel", title="A trip", opened_at=10.0
        )
        discussion.posts.append(make_post("p0", "opener", 10.0))
        discussion.posts.append(make_post("p1", "u1", 12.0))
        discussion.posts.append(make_post("p2", "u2", 20.0))
        return discussion

    def test_opener_and_comments_split(self):
        discussion = self.make_discussion()
        assert discussion.opener.post_id == "p0"
        assert [post.post_id for post in discussion.comments] == ["p1", "p2"]
        assert discussion.comment_count == 2

    def test_empty_discussion_has_no_opener(self):
        discussion = Discussion("d", "travel", "t", opened_at=1.0)
        assert discussion.opener is None
        assert discussion.comment_count == 0

    def test_age_and_last_activity(self):
        discussion = self.make_discussion()
        assert discussion.age(30.0) == pytest.approx(20.0)
        assert discussion.last_activity_day() == pytest.approx(20.0)

    def test_participants(self):
        assert self.make_discussion().participants() == {"opener", "u1", "u2"}

    def test_comments_per_day_uses_thread_lifetime(self):
        discussion = self.make_discussion()
        assert discussion.comments_per_day(20.0) == pytest.approx(2 / 10.0)

    def test_comments_per_day_with_fresh_thread_uses_one_day_floor(self):
        discussion = self.make_discussion()
        assert discussion.comments_per_day(10.2) == pytest.approx(2.0)

    def test_distinct_tags_union(self):
        discussion = self.make_discussion()
        discussion.posts[1] = make_post("p1", "u1", 12.0, tags=("x", "y"))
        discussion.posts[2] = make_post("p2", "u2", 20.0, tags=("y", "z"))
        assert discussion.distinct_tags() == {"x", "y", "z"}

    def test_roundtrip_serialisation(self):
        discussion = self.make_discussion()
        rebuilt = Discussion.from_dict(discussion.to_dict())
        assert rebuilt.discussion_id == discussion.discussion_id
        assert len(rebuilt.posts) == 3
        assert rebuilt.posts[1].post_id == "p1"


class TestSource:
    def make_source(self) -> Source:
        source = Source(
            source_id="s1",
            name="Source 1",
            url="https://s1.example.org",
            source_type=SourceType.FORUM,
            categories=("travel",),
            created_at=0.0,
            observation_day=100.0,
        )
        open_discussion = Discussion("d1", "travel", "t1", opened_at=5.0, is_open=True)
        open_discussion.posts.extend([make_post("p1", "u1", 5.0), make_post("p2", "u2", 6.0)])
        closed_discussion = Discussion("d2", "food", "t2", opened_at=8.0, is_open=False)
        closed_discussion.posts.append(make_post("p3", "u1", 8.0))
        source.add_discussion(open_discussion)
        source.add_discussion(closed_discussion)
        source.add_user(UserProfile(user_id="u1", name="u1"))
        source.add_interaction(
            Interaction(InteractionType.LIKE, actor_id="u2", target_user_id="u1", day=7.0)
        )
        return source

    def test_post_and_comment_counts(self):
        source = self.make_source()
        assert source.post_count() == 3
        assert source.comment_count() == 1

    def test_open_discussions_filtering(self):
        source = self.make_source()
        assert [d.discussion_id for d in source.open_discussions()] == ["d1"]

    def test_covered_categories_and_per_category_lookup(self):
        source = self.make_source()
        assert source.covered_categories() == {"travel", "food"}
        assert len(source.discussions_in_category("travel")) == 1

    def test_contributors_are_post_authors(self):
        assert self.make_source().contributors() == {"u1", "u2"}

    def test_interactions_lookup_by_direction(self):
        source = self.make_source()
        assert len(source.interactions_for_user("u1")) == 1
        assert len(source.interactions_by_user("u2")) == 1
        assert source.interactions_for_user("u2") == []

    def test_discussions_opened_between(self):
        source = self.make_source()
        assert len(source.discussions_opened_between(0.0, 6.0)) == 1
        assert len(source.discussions_opened_between(0.0, 10.0)) == 2

    def test_observation_window_has_one_day_floor(self):
        source = self.make_source()
        source.created_at = source.observation_day
        assert source.observation_window() == 1.0

    def test_roundtrip_serialisation(self):
        source = self.make_source()
        rebuilt = Source.from_dict(source.to_dict())
        assert rebuilt.source_id == source.source_id
        assert rebuilt.post_count() == source.post_count()
        assert rebuilt.users.keys() == source.users.keys()
        assert len(rebuilt.interactions) == len(source.interactions)
        assert rebuilt.latent_popularity == source.latent_popularity
