"""Concrete computation of the Table 2 (contributor) measures.

Every measure is a pure function of a :class:`ContributorMeasurementContext`
bundling the contributor crawl snapshot and the Domain of Interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.core.domain import DomainOfInterest
from repro.core.measures import MeasureRegistry, contributor_measure_registry
from repro.errors import UnknownMeasureError
from repro.sources.crawler import ContributorSnapshot

__all__ = [
    "ContributorMeasurementContext",
    "compute_contributor_measure",
    "compute_contributor_measures",
    "CONTRIBUTOR_MEASURE_FUNCTIONS",
]


@dataclass(frozen=True)
class ContributorMeasurementContext:
    """Everything needed to evaluate the Table 2 measures for one user."""

    snapshot: ContributorSnapshot
    domain: DomainOfInterest


def _avg_comments_per_category(context: ContributorMeasurementContext) -> float:
    """Average number of the user's comments per DI content category."""
    categories = context.domain.categories
    if not categories:
        return 0.0
    return context.snapshot.comments_in_categories(categories) / len(categories)


def _centrality(context: ContributorMeasurementContext) -> float:
    """Number of DI categories the user has contributed to."""
    return float(len(context.snapshot.covered(context.domain.categories)))


def _open_discussions(context: ContributorMeasurementContext) -> float:
    """Number of open discussions the user participates in."""
    return float(context.snapshot.open_discussions)


def _total_interactions(context: ContributorMeasurementContext) -> float:
    """Total number of interactions performed plus received (activity)."""
    snapshot = context.snapshot
    return float(snapshot.interactions_performed + snapshot.interactions_received)


def _interactions_per_counterpart(context: ContributorMeasurementContext) -> float:
    """Average number of interactions per counterpart user."""
    return context.snapshot.interactions_per_counterpart


def _user_age(context: ContributorMeasurementContext) -> float:
    """Age of the user account in days."""
    return context.snapshot.account_age


def _reads_received(context: ContributorMeasurementContext) -> float:
    """Number of times the user's comments have been read by others."""
    return float(context.snapshot.reads_received)


def _interactions_per_day(context: ContributorMeasurementContext) -> float:
    """Average number of new interactions per day."""
    return context.snapshot.interactions_per_day


def _distinct_tags_per_post(context: ContributorMeasurementContext) -> float:
    """Average number of distinct tags per post."""
    return context.snapshot.average_distinct_tags_per_post


def _replies_per_comment(context: ContributorMeasurementContext) -> float:
    """Average number of replies received per authored post (relative mentions)."""
    return context.snapshot.replies_per_comment


def _replies_received(context: ContributorMeasurementContext) -> float:
    """Number of replies received (absolute mentions)."""
    return float(context.snapshot.replies_received)


def _feedback_per_comment(context: ContributorMeasurementContext) -> float:
    """Average number of feedbacks received per authored post (relative retweets)."""
    return context.snapshot.feedback_per_comment


def _comments_per_discussion(context: ContributorMeasurementContext) -> float:
    """Average number of the user's comments per discussion they joined."""
    return context.snapshot.comments_per_discussion


def _feedback_received(context: ContributorMeasurementContext) -> float:
    """Number of feedback interactions received (absolute retweets)."""
    return float(context.snapshot.feedback_received)


def _interactions_per_discussion_per_day(
    context: ContributorMeasurementContext,
) -> float:
    """Average number of interactions per discussion per day."""
    return context.snapshot.interactions_per_discussion_per_day


#: Dispatch table mapping Table 2 measure names to their implementations.
CONTRIBUTOR_MEASURE_FUNCTIONS: Mapping[
    str, Callable[[ContributorMeasurementContext], float]
] = {
    "user_avg_comments_per_category": _avg_comments_per_category,
    "user_centrality": _centrality,
    "user_open_discussions": _open_discussions,
    "user_total_interactions": _total_interactions,
    "user_interactions_per_counterpart": _interactions_per_counterpart,
    "user_age": _user_age,
    "user_reads_received": _reads_received,
    "user_interactions_per_day": _interactions_per_day,
    "user_distinct_tags_per_post": _distinct_tags_per_post,
    "user_replies_per_comment": _replies_per_comment,
    "user_replies_received": _replies_received,
    "user_feedback_per_comment": _feedback_per_comment,
    "user_comments_per_discussion": _comments_per_discussion,
    "user_feedback_received": _feedback_received,
    "user_interactions_per_discussion_per_day": _interactions_per_discussion_per_day,
}


def compute_contributor_measure(
    name: str, context: ContributorMeasurementContext
) -> float:
    """Compute the Table 2 measure ``name`` for the given context."""
    try:
        function = CONTRIBUTOR_MEASURE_FUNCTIONS[name]
    except KeyError as exc:
        raise UnknownMeasureError(name) from exc
    return float(function(context))


def compute_contributor_measures(
    context: ContributorMeasurementContext,
    registry: Optional[MeasureRegistry] = None,
    names: Optional[Iterable[str]] = None,
) -> dict[str, float]:
    """Compute a set of Table 2 measures (all of them by default)."""
    if names is None:
        registry = registry or contributor_measure_registry()
        names = registry.names()
    return {name: compute_contributor_measure(name, context) for name in names}
