"""Query workload generator for the Section 4.1 ranking study.

The paper runs "over 100 queries with Google, limiting the results of each
query to the first 20 blogs and forums".  The workload generator produces a
comparable set of keyword queries built from the category vocabularies used
by the corpus generator, so every query has a meaningful answer set in the
synthetic corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.sources.text import GENERIC_CATEGORIES, default_vocabularies

__all__ = ["QueryWorkloadSpec", "QueryWorkload"]


@dataclass(frozen=True)
class QueryWorkloadSpec:
    """Configuration of the query workload."""

    query_count: int = 100
    seed: int = 17
    categories: tuple[str, ...] = GENERIC_CATEGORIES
    terms_per_query: tuple[int, int] = (1, 3)
    results_per_query: int = 20

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` when the spec is invalid."""
        if self.query_count < 1:
            raise ConfigurationError("query_count must be >= 1")
        if not self.categories:
            raise ConfigurationError("categories must not be empty")
        low, high = self.terms_per_query
        if not 1 <= low <= high:
            raise ConfigurationError("terms_per_query must satisfy 1 <= low <= high")
        if self.results_per_query < 1:
            raise ConfigurationError("results_per_query must be >= 1")


@dataclass(frozen=True)
class Query:
    """A single keyword query of the workload."""

    query_id: str
    text: str
    category: str


class QueryWorkload:
    """Deterministically generate the keyword queries of the ranking study."""

    def __init__(self, spec: QueryWorkloadSpec = QueryWorkloadSpec()) -> None:
        spec.validate()
        self._spec = spec
        self._queries = self._build()

    @property
    def spec(self) -> QueryWorkloadSpec:
        """The workload specification."""
        return self._spec

    def _build(self) -> list[Query]:
        spec = self._spec
        rng = random.Random(spec.seed)
        vocabularies = default_vocabularies(spec.categories)
        queries: list[Query] = []
        low, high = spec.terms_per_query
        for index in range(spec.query_count):
            category = rng.choice(list(spec.categories))
            vocabulary = vocabularies[category]
            term_count = rng.randint(low, high)
            population = list(vocabulary.topic_words)
            rng.shuffle(population)
            terms = population[:term_count]
            # Anchor each query with the category name so that specialised
            # sources are retrievable even when topic terms are rare.
            text = " ".join([category.replace("_", " ")] + terms)
            queries.append(Query(query_id=f"q{index:04d}", text=text, category=category))
        return queries

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def queries(self) -> list[Query]:
        """Return the generated queries in order."""
        return list(self._queries)

    def texts(self) -> list[str]:
        """Return only the query strings."""
        return [query.text for query in self._queries]
