"""Durable corpus store: checkpoint scheduling and crash recovery.

:class:`CorpusStore` owns one directory with three files::

    snapshot.rpss        newest checkpoint (corpus + consumer sections)
    snapshot.prev.rpss   the checkpoint before it (corruption fallback)
    journal.rpjl         write-ahead journal of changes since the snapshot

**Write path.**  :meth:`CorpusStore.attach` registers a
:class:`~repro.sources.diffing.DurableJournalSubscriber` on the corpus's
invalidation bus whose sink appends to a
:class:`~repro.persistence.journal.JournalWriter` — every corpus mutation
is on disk (fsynced) before the mutating call returns.
:meth:`CorpusStore.checkpoint` then folds the journal into a fresh
snapshot: inside the subscriber's ``paused()`` window (so no event can
slip into the journal between export and reset) it exports the corpus and
every attached consumer, rotates the previous snapshot aside, writes the
new one atomically, and resets the journal to the snapshot's corpus
version.  The orderings are what make every crash window recoverable:

* crash before the snapshot rename — the old snapshot and the full
  journal are intact; nothing happened;
* crash between rename and journal reset — the journal holds records the
  new snapshot already contains; replay skips them by version cross-check;
* crash mid-append — the torn tail is detected by CRC and truncated; every
  *acknowledged* append is before it.

**Recovery path.**  :meth:`CorpusStore.recover` loads the newest valid
snapshot (falling back to the previous one, then to a journal-only start),
pins the corpus version, and collects the journal tail.
:meth:`CorpusStore.recover_stack` additionally rebuilds the consumers from
their snapshot sections — search index, source-quality context, per-source
contributor contexts — *before* replaying the tail, so the replayed events
flow through the exact incremental patch machinery live mutations use:
a warm start is bit-identical to a cold rebuild by construction, just
without the crawling.  Any section that fails validation degrades that one
consumer to a cold build; it never fails recovery and never serves
partial data.

**Checkpoint scheduling.**  :meth:`CorpusStore.checkpoint_if_due` is a
zero-argument callable fit for
:meth:`~repro.serving.scheduler.EagerRefreshScheduler.register` (see
``register_checkpoint_store``): registered as a fourth consumer queue it
turns checkpoints into just another eagerly scheduled consumer, coalesced
per burst and driven off the mutating thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.errors import JournalReplayError, PersistenceError
from repro.persistence.codec import encode_index_state
from repro.persistence.format import atomic_write_bytes
from repro.persistence.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.persistence.snapshot import (
    snapshot_version,
    try_read_snapshot,
    write_snapshot,
)
from repro.serving.rwlock import ordered
from repro.sources.corpus import SourceCorpus
from repro.sources.diffing import DurableJournalSubscriber
from repro.sources.models import Source

__all__ = [
    "CorpusStore",
    "RecoveryResult",
    "RecoveredStack",
    "replay_journal",
    "register_checkpoint_store",
]


def _overlay_source(live: Source, payload: Mapping[str, Any]) -> None:
    """Copy the serialised content state onto the live source object.

    In-place on purpose: consumers restored before replay hold references
    to the live object (fingerprints key on ``id()``), so a touch replay
    must mutate it, exactly like the original in-place mutation did.
    """
    template = Source.from_dict(dict(payload))
    live.name = template.name
    live.url = template.url
    live.source_type = template.source_type
    live.categories = template.categories
    live.created_at = template.created_at
    live.observation_day = template.observation_day
    live.latent_popularity = template.latent_popularity
    live.latent_engagement = template.latent_engagement
    live.latent_stickiness = template.latent_stickiness
    live.discussions = template.discussions
    live.users = template.users
    live.interactions = template.interactions


def replay_journal(
    corpus: SourceCorpus, records: list[dict[str, Any]]
) -> tuple[int, int]:
    """Apply journal records to ``corpus``; return ``(applied, skipped)``.

    Records are replayed in *version* order (concurrent mutators may have
    appended slightly out of order) and idempotently: a record whose
    version the corpus already reached is skipped, so replaying the same
    journal twice — or a journal whose head the snapshot already contains
    — converges to the same state.  Replay drives the ordinary corpus
    mutation API, so every restored consumer is invalidated and patched
    through the same incremental paths live mutations use.
    """
    applied = 0
    skipped = 0
    for record in sorted(records, key=lambda r: int(r.get("version", 0))):
        try:
            version = int(record["version"])
            op = record["op"]
            source_id = record["source_id"]
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalReplayError(f"malformed journal record: {exc!r}") from exc
        if version <= corpus.version:
            skipped += 1
            continue
        try:
            if op == "remove":
                if source_id in corpus:
                    corpus.remove(source_id)
                    applied += 1
                else:
                    skipped += 1
            elif op in ("add", "touch"):
                payload = record.get("source")
                if payload is None:
                    # Contentless record: the source was removed again
                    # before the event was journaled; the trailing remove
                    # record restores the net state.
                    skipped += 1
                elif source_id in corpus:
                    _overlay_source(corpus.get(source_id), payload)
                    corpus.touch(source_id)
                    applied += 1
                else:
                    corpus.add(Source.from_dict(dict(payload)))
                    applied += 1
            else:
                raise JournalReplayError(
                    f"unknown journal op {op!r} at version {version}"
                )
        except JournalReplayError:
            raise
        except Exception as exc:
            raise JournalReplayError(
                f"cannot replay journal record version {version}: {exc!r}"
            ) from exc
        corpus._restore_version(version)
    return applied, skipped


@dataclass
class RecoveryResult:
    """What :meth:`CorpusStore.recover` reconstructed, and from where."""

    corpus: SourceCorpus
    #: Snapshot sections, lazily decoded ({} on a journal-only or empty start).
    sections: Mapping[str, Any] = field(default_factory=dict)
    #: Which snapshot file was used: "current", "previous" or None.
    snapshot_used: Optional[str] = None
    #: Corpus version the snapshot pinned (0 without a snapshot).
    base_version: int = 0
    #: Valid journal records awaiting :meth:`replay`.
    journal_records: list = field(default_factory=list)
    #: True when a journal existed but could not bridge to the snapshot.
    journal_rejected: bool = False
    torn_tail_truncated: bool = False
    #: Human-readable degradation notes, in the order they happened.
    notes: list = field(default_factory=list)
    applied: int = 0
    skipped: int = 0

    def replay(self) -> int:
        """Apply the journal tail onto the recovered corpus; return applies."""
        applied, skipped = replay_journal(self.corpus, self.journal_records)
        self.applied += applied
        self.skipped += skipped
        return applied


@dataclass
class RecoveredStack:
    """A fully rebuilt serving stack (see :meth:`CorpusStore.recover_stack`)."""

    corpus: SourceCorpus
    engine: Optional[Any]
    source_model: Optional[Any]
    #: source_id -> restored ContributorQualityModel.
    contributor_models: dict = field(default_factory=dict)
    result: Optional[RecoveryResult] = None


class CorpusStore:
    """Durable snapshot + write-ahead-journal store for one corpus.

    See the module docstring for the crash-window analysis.  ``fsync``
    can be disabled for benchmarks and for tests that model durability
    through the fault harness; ``checkpoint_every`` is the due-ness
    threshold of :meth:`checkpoint_if_due` in journaled events.
    """

    SNAPSHOT_NAME = "snapshot.rpss"
    PREVIOUS_NAME = "snapshot.prev.rpss"
    JOURNAL_NAME = "journal.rpjl"

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        checkpoint_every: int = 256,
        shard: Optional[tuple[int, int]] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise PersistenceError("checkpoint_every must be at least 1")
        if shard is not None and not (0 <= shard[0] < shard[1]):
            raise PersistenceError(
                f"shard index {shard[0]} is not within a {shard[1]}-way split"
            )
        #: ``(shard index, shard count)`` when this store holds one shard
        #: of a partitioned corpus (see :class:`ClusterStore`); stamped
        #: into every checkpoint and validated on recovery so a shard
        #: store can never be silently recovered as the wrong partition.
        self.shard = shard
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self.checkpoint_every = checkpoint_every
        #: Serialises attach/checkpoint/close against each other.
        self._lock = threading.RLock()
        self._corpus: Optional[SourceCorpus] = None
        self._engine: Optional[Any] = None
        self._source_model: Optional[Any] = None
        self._contributor_models: dict[str, Any] = {}
        self._journal: Optional[JournalWriter] = None
        self._subscriber: Optional[DurableJournalSubscriber] = None
        self.checkpoints_written = 0

    # -- paths ---------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def previous_snapshot_path(self) -> Path:
        return self.directory / self.PREVIOUS_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    @property
    def attached(self) -> bool:
        """True while a corpus is journaling into this store."""
        return self._subscriber is not None and not self._subscriber.closed

    @property
    def journal(self) -> Optional[JournalWriter]:
        """The live journal writer (None before :meth:`attach`)."""
        return self._journal

    @property
    def subscriber(self) -> Optional[DurableJournalSubscriber]:
        """The live bus subscriber (None before :meth:`attach`)."""
        return self._subscriber

    # -- write path ------------------------------------------------------------------

    def _journal_sink(self, record: dict[str, Any]) -> None:
        journal = self._journal
        if journal is None:
            raise PersistenceError("journal writer detached", path=self.journal_path)
        try:
            journal.append(record)
        except OSError as exc:
            raise PersistenceError(
                f"journal append failed: {exc}", path=self.journal_path
            ) from exc

    def attach(
        self,
        corpus: SourceCorpus,
        *,
        engine: Optional[Any] = None,
        source_model: Optional[Any] = None,
        contributor_models: Optional[Mapping[str, Any]] = None,
    ) -> DurableJournalSubscriber:
        """Start journaling ``corpus`` mutations; remember consumers to snapshot.

        From this call on, every corpus mutation is durably appended
        before the mutating call returns.  The optional consumers are
        exported into every later :meth:`checkpoint` so recovery can warm
        them; passing none still yields a fully recoverable corpus (the
        consumers just cold-build).
        """
        with ordered(self._lock, "store.lock"):
            if self.attached:
                raise PersistenceError(
                    "store is already attached to a corpus", path=self.directory
                )
            self._corpus = corpus
            self._engine = engine
            self._source_model = source_model
            self._contributor_models = dict(contributor_models or {})
            self._journal = JournalWriter(
                self.journal_path, base_version=corpus.version, fsync=self._fsync
            )
            self._subscriber = DurableJournalSubscriber(corpus, self._journal_sink)
            return self._subscriber

    def bind_consumers(
        self,
        *,
        engine: Optional[Any] = None,
        source_model: Optional[Any] = None,
        contributor_models: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Bind consumers created *after* :meth:`attach` into later checkpoints.

        The sharded worker builds its search engine lazily (an empty shard
        has nothing to index); this lets it hand the engine to the store
        once built, so the next checkpoint exports the index section just
        as an attach-time binding would.  Only the given consumers are
        replaced; passing None leaves the existing binding untouched.
        """
        with ordered(self._lock, "store.lock"):
            if not self.attached:
                raise PersistenceError(
                    "bind_consumers requires an attached corpus", path=self.directory
                )
            if engine is not None:
                self._engine = engine
            if source_model is not None:
                self._source_model = source_model
            if contributor_models is not None:
                self._contributor_models = dict(contributor_models)

    def checkpoint(self) -> int:
        """Fold the journal into a fresh snapshot; return the version captured.

        Runs inside the journal subscriber's ``paused()`` window, so the
        export, the snapshot rename and the journal reset form one atomic
        epoch switch with respect to concurrent mutators (they block
        briefly at their journal append).  Ordering: previous snapshot
        rotated aside, new snapshot renamed into place, journal reset —
        a crash between the last two leaves only already-snapshotted
        records in the journal, which replay skips.
        """
        with ordered(self._lock, "store.lock"):
            corpus = self._corpus
            subscriber = self._subscriber
            if corpus is None or subscriber is None or self._journal is None:
                raise PersistenceError(
                    "checkpoint requires an attached corpus (call attach/recover_stack)",
                    path=self.directory,
                )
            with subscriber.paused():
                version = corpus.version
                sections: dict[str, Any] = {"corpus": corpus.to_dict()}
                if self.shard is not None:
                    sections["shard"] = {
                        "index": self.shard[0],
                        "count": self.shard[1],
                    }
                if len(corpus):
                    if self._engine is not None:
                        sections["index"] = encode_index_state(
                            self._engine.export_index_state()
                        )
                    if self._source_model is not None:
                        sections["source_model"] = (
                            self._source_model.export_assessment_state(corpus)
                        )
                    contributors = {
                        source_id: model.export_community_state(corpus.get(source_id))
                        for source_id, model in self._contributor_models.items()
                        if source_id in corpus
                    }
                    if contributors:
                        sections["contributors"] = contributors
                if self.snapshot_path.exists():
                    atomic_write_bytes(
                        self.previous_snapshot_path,
                        self.snapshot_path.read_bytes(),
                        fsync=self._fsync,
                    )
                write_snapshot(
                    self.snapshot_path,
                    sections,
                    corpus_version=version,
                    fsync=self._fsync,
                )
                self._journal.reset(version)
                subscriber.mark_checkpoint()
            self.checkpoints_written += 1
            return version

    def checkpoint_if_due(self) -> int:
        """Checkpoint when enough events accumulated; return checkpoints run.

        The scheduler-facing entry point (see
        :func:`register_checkpoint_store`): cheap when not due, so it can
        be driven once per coalesced mutation burst.
        """
        subscriber = self._subscriber
        if subscriber is None:
            return 0
        if subscriber.events_since_checkpoint < self.checkpoint_every:
            return 0
        self.checkpoint()
        return 1

    def close(self) -> None:
        """Detach from the corpus and close the journal (idempotent).

        Does *not* checkpoint: the journal already holds everything since
        the last one, which is exactly what recovery replays.
        """
        with ordered(self._lock, "store.lock"):
            if self._subscriber is not None:
                self._subscriber.close()
                self._subscriber = None
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            self._corpus = None
            self._engine = None
            self._source_model = None
            self._contributor_models = {}

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- recovery path ------------------------------------------------------------------

    def recover(self) -> RecoveryResult:
        """Reconstruct the corpus from disk; journal tail left for :meth:`replay`.

        Degradation ladder, never raising for damage a crash can cause:
        newest snapshot → previous snapshot → journal-only start (empty
        corpus, every record replayed) → empty start.  A torn journal
        tail is truncated; a journal that cannot bridge to the loaded
        snapshot (its base version is ahead — e.g. the current snapshot
        was corrupt and recovery fell back to the previous one) is
        rejected rather than replayed into the wrong epoch.
        """
        notes: list[str] = []
        corpus: Optional[SourceCorpus] = None
        sections: Any = None
        used: Optional[str] = None
        candidates = (
            ("current", self.snapshot_path),
            ("previous", self.previous_snapshot_path),
        )
        for label, path in candidates:
            if not path.exists():
                continue
            candidate = try_read_snapshot(path)
            if candidate is not None:
                try:
                    # Sections decode lazily: a corpus payload only a broken
                    # writer could have produced (CRC-valid, undecodable)
                    # surfaces here and falls through the same ladder.
                    corpus = SourceCorpus.from_dict(candidate["corpus"])
                    corpus._restore_version(snapshot_version(candidate))
                except (PersistenceError, KeyError, TypeError, ValueError):
                    corpus = None
            if corpus is not None:
                sections = candidate
                used = label
                if label == "previous":
                    notes.append("recovered from the previous snapshot")
                break
            notes.append(
                "current snapshot corrupt; trying previous snapshot"
                if label == "current"
                else "previous snapshot corrupt; journal-only start"
            )
        if corpus is None:
            corpus = SourceCorpus()
            sections = {}
        if self.shard is not None and used is not None:
            # Shard identity mismatch is operator error (a store moved
            # between partitions), not crash damage: fail loudly instead
            # of degrading down the ladder into silently wrong ownership.
            try:
                recorded = sections.get("shard")
            except PersistenceError:
                recorded = None
            if recorded is not None:
                stamped = (int(recorded.get("index", -1)), int(recorded.get("count", -1)))
                if stamped != self.shard:
                    raise PersistenceError(
                        f"snapshot belongs to shard {stamped[0]} of {stamped[1]} "
                        f"but the store was opened as shard {self.shard[0]} of "
                        f"{self.shard[1]}",
                        path=self.snapshot_path,
                    )
        result = RecoveryResult(
            corpus=corpus,
            sections=sections,
            snapshot_used=used,
            base_version=corpus.version,
            notes=notes,
        )
        journal_path = self.journal_path
        if journal_path.exists() and journal_path.stat().st_size > 0:
            try:
                reader = read_journal(journal_path)
            except PersistenceError as exc:
                # A corrupt header implies no record was ever durable
                # (the header is fsynced before the first append returns).
                notes.append(f"journal unusable: {exc}")
                reader = None
            if reader is not None:
                if reader.torn:
                    result.torn_tail_truncated = truncate_torn_tail(reader)
                    notes.append(
                        f"torn journal tail truncated at byte {reader.valid_length}"
                    )
                if used is not None and reader.base_version > corpus.version:
                    result.journal_rejected = True
                    notes.append(
                        "journal base version "
                        f"{reader.base_version} is ahead of the recovered snapshot "
                        f"(version {corpus.version}); journal rejected"
                    )
                else:
                    result.journal_records = list(reader.records)
        return result

    def _section(self, result: RecoveryResult, name: str) -> Optional[Any]:
        """Decode one consumer section, degrading to None on corruption.

        Sections decode lazily (:class:`~repro.persistence.snapshot.SnapshotSections`),
        so a payload only a broken writer could have produced surfaces at
        this access — note it and let the consumer cold-build.
        """
        try:
            return result.sections.get(name)
        except PersistenceError as exc:
            result.notes.append(f"{name} section undecodable ({exc}); cold build")
            return None

    def recover_stack(
        self,
        *,
        domain: Optional[Any] = None,
        build_engine: bool = True,
        attach: bool = True,
        result: Optional[RecoveryResult] = None,
    ) -> RecoveredStack:
        """Recover the corpus *and* its consumers, warm from their sections.

        Consumers are restored **before** the journal tail is replayed —
        their snapshot sections describe the snapshot-time corpus — so
        the tail flows through their ordinary incremental patch paths and
        the warm results are bit-identical to a cold rebuild's.  That
        ordering is also what makes the sections' ``post_totals`` /
        ``post_total`` fingerprint hints sound: each consumer recomposes
        its per-source fingerprints in O(1) via
        :func:`~repro.perf.cache.compose_source_fingerprint` instead of
        rescanning every discussion of every source.  Quality
        models need ``domain`` (a
        :class:`~repro.core.domain.DomainOfInterest`); without it their
        sections are skipped.  With ``attach=True`` the store resumes
        journaling the recovered corpus, ready for the next checkpoint.

        ``result`` accepts a pre-collected (not yet replayed)
        :meth:`recover` outcome, separating corpus materialisation from
        consumer warm-up — the persistence benchmark times the two phases
        independently.
        """
        if result is None:
            result = self.recover()
        corpus = result.corpus
        engine: Optional[Any] = None
        source_model: Optional[Any] = None
        contributor_models: dict[str, Any] = {}

        if len(corpus) and build_engine:
            from repro.search.engine import SearchEngine

            index_state = self._section(result, "index")
            if index_state is not None:
                try:
                    engine = SearchEngine(corpus, index_state=index_state)
                except Exception as exc:  # noqa: BLE001 - degrade to cold build
                    result.notes.append(f"index section unusable ({exc!r}); rebuilding")
            if engine is None:
                engine = SearchEngine(corpus)
        if len(corpus) and domain is not None:
            from repro.core.contributor_quality import ContributorQualityModel
            from repro.core.source_quality import SourceQualityModel

            source_model = SourceQualityModel(domain)
            model_state = self._section(result, "source_model")
            if model_state is not None:
                try:
                    # Installs the context *and* its incremental entry, so
                    # the tail replay patches instead of rebuilding.
                    source_model.restore_assessment_state(corpus, model_state)
                except PersistenceError as exc:
                    result.notes.append(
                        f"source model section unusable ({exc}); cold build on first read"
                    )
            for source_id, payload in (self._section(result, "contributors") or {}).items():
                if source_id not in corpus:
                    continue
                model = ContributorQualityModel(domain)
                try:
                    model.restore_community_state(corpus.get(source_id), payload)
                    model.refresh(corpus.get(source_id))  # install the entry pre-replay
                except PersistenceError as exc:
                    result.notes.append(
                        f"contributor section for {source_id!r} unusable ({exc}); "
                        "cold build on first read"
                    )
                contributor_models[source_id] = model

        result.replay()

        if len(corpus) and build_engine and engine is None:
            # Journal-only start: the corpus only exists after the replay.
            from repro.search.engine import SearchEngine

            engine = SearchEngine(corpus)
        if attach:
            self.attach(
                corpus,
                engine=engine,
                source_model=source_model,
                contributor_models=contributor_models,
            )
        return RecoveredStack(
            corpus=corpus,
            engine=engine,
            source_model=source_model,
            contributor_models=contributor_models,
            result=result,
        )


def register_checkpoint_store(
    scheduler: Any, store: CorpusStore, name: str = "checkpoint"
) -> str:
    """Register ``store.checkpoint_if_due`` as a scheduler consumer queue.

    Checkpointing becomes a fourth eagerly driven consumer: coalesced per
    mutation burst, run off the mutating thread by the scheduler's worker
    (or its poll/flush pump), with failures recorded in the queue's
    :class:`~repro.serving.queues.ConsumerStats` like any other consumer.
    """
    scheduler.register(name, store.checkpoint_if_due)
    return name
