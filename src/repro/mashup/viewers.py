"""Viewer components.

Figure 1's dashboard shows a list-based viewer of influencers integrated
with a map of their locations, synchronised with a second list/map pair
showing the selected influencer's posts.  Viewers here are headless: they
consume content items, keep a render state (a plain dictionary) and
participate in selection synchronisation through the composition's event
bus.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.errors import MashupError
from repro.mashup.component import Component, ContentItem, Port
from repro.mashup.events import Event

__all__ = ["ListViewer", "MapViewer", "ChartViewer", "SELECTION_TOPIC"]

#: Bus topic used for selection synchronisation between viewers.
SELECTION_TOPIC = "viewer.selection"


class _BaseViewer(Component):
    """Shared behaviour of every viewer: render state plus selection sync."""

    INPUT_PORTS = (Port("items"),)
    OUTPUT_PORTS = (Port("view"),)

    def __init__(
        self,
        component_id: str,
        title: str = "",
        sync_group: Optional[str] = None,
        **parameters: Any,
    ) -> None:
        super().__init__(component_id, title=title, sync_group=sync_group, **parameters)
        self._title = title or component_id
        self._sync_group = sync_group
        self._items: list[ContentItem] = []
        self._selected_id: Optional[str] = None

    # -- state -------------------------------------------------------------------------

    @property
    def items(self) -> list[ContentItem]:
        """The items currently displayed."""
        return list(self._items)

    @property
    def selected_id(self) -> Optional[str]:
        """Identifier of the currently selected item (if any)."""
        return self._selected_id

    @property
    def sync_group(self) -> Optional[str]:
        """Name of the synchronisation group this viewer belongs to."""
        return self._sync_group

    # -- selection ----------------------------------------------------------------------

    def select(self, item_id: str) -> None:
        """Select an item and broadcast the selection to the sync group."""
        if all(item.item_id != item_id for item in self._items):
            raise MashupError(
                f"viewer {self.component_id!r} displays no item {item_id!r}"
            )
        self._selected_id = item_id
        selected = self.selected_item()
        self.emit(
            SELECTION_TOPIC,
            {
                "item_id": item_id,
                "sync_group": self._sync_group,
                "author_id": selected.author_id if selected else None,
                "source_id": selected.source_id if selected else None,
            },
        )

    def selected_item(self) -> Optional[ContentItem]:
        """The currently selected item, when it is still displayed."""
        for item in self._items:
            if item.item_id == self._selected_id:
                return item
        return None

    def on_event(self, event: Event) -> None:
        """Follow selections published by other viewers of the same group."""
        if event.topic != SELECTION_TOPIC or event.publisher == self.component_id:
            return
        payload = event.payload or {}
        if self._sync_group is None or payload.get("sync_group") != self._sync_group:
            return
        item_id = payload.get("item_id")
        if item_id and any(item.item_id == item_id for item in self._items):
            self._selected_id = item_id
        else:
            # Synchronise on the author when the exact item is not displayed
            # (e.g. the posts viewer showing the selected influencer's posts).
            author_id = payload.get("author_id")
            self._selected_id = None
            if author_id:
                for item in self._items:
                    if item.author_id == author_id:
                        self._selected_id = item.item_id
                        break

    # -- rendering ------------------------------------------------------------------------

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        self._items = self.require_items(inputs)
        if self._selected_id is not None and self.selected_item() is None:
            self._selected_id = None
        return {"view": self.render()}

    def render(self) -> dict[str, Any]:
        """Render the viewer state as a plain dictionary."""
        raise NotImplementedError


class ListViewer(_BaseViewer):
    """Tabular list of items (title, author, category, sentiment)."""

    TYPE_NAME = "viewer.list"

    def __init__(
        self,
        component_id: str,
        title: str = "",
        sync_group: Optional[str] = None,
        max_rows: int = 50,
        **parameters: Any,
    ) -> None:
        super().__init__(component_id, title=title, sync_group=sync_group, **parameters)
        if max_rows < 1:
            raise MashupError("max_rows must be >= 1")
        self._max_rows = max_rows

    def render(self) -> dict[str, Any]:
        rows = [
            {
                "item_id": item.item_id,
                "author_id": item.author_id,
                "source_id": item.source_id,
                "category": item.category,
                "day": item.day,
                "sentiment": item.sentiment,
                "text": item.text[:120],
                "selected": item.item_id == self.selected_id,
            }
            for item in self._items[: self._max_rows]
        ]
        return {
            "viewer": "list",
            "title": self._title,
            "row_count": len(self._items),
            "rows": rows,
            "selected_id": self.selected_id,
        }


class MapViewer(_BaseViewer):
    """Geographical viewer grouping the items by location."""

    TYPE_NAME = "viewer.map"

    def render(self) -> dict[str, Any]:
        markers: dict[str, dict[str, Any]] = {}
        for item in self._items:
            location = item.location or "unknown"
            marker = markers.setdefault(
                location, {"location": location, "item_count": 0, "item_ids": []}
            )
            marker["item_count"] += 1
            marker["item_ids"].append(item.item_id)
        selected = self.selected_item()
        return {
            "viewer": "map",
            "title": self._title,
            "markers": [markers[key] for key in sorted(markers)],
            "selected_location": selected.location if selected else None,
            "selected_id": self.selected_id,
        }


class ChartViewer(_BaseViewer):
    """Bar-chart viewer aggregating item sentiment per category."""

    TYPE_NAME = "viewer.chart"

    def render(self) -> dict[str, Any]:
        buckets: dict[str, list[float]] = {}
        counts: dict[str, int] = {}
        for item in self._items:
            category = item.category or "uncategorised"
            counts[category] = counts.get(category, 0) + 1
            if item.sentiment is not None:
                buckets.setdefault(category, []).append(item.sentiment)
        bars = [
            {
                "category": category,
                "item_count": counts[category],
                "average_sentiment": (
                    sum(buckets[category]) / len(buckets[category])
                    if buckets.get(category)
                    else 0.0
                ),
            }
            for category in sorted(counts)
        ]
        return {
            "viewer": "chart",
            "title": self._title,
            "bars": bars,
            "selected_id": self.selected_id,
        }
