"""``durability-discipline``: all persistence goes through ``format.py``.

PR 6's crash-recovery guarantees rest on one discipline: every durable
artefact is produced by :func:`repro.persistence.format.atomic_write_bytes`
/ ``atomic_write_json`` — write to a temp file, ``fsync``, atomically
rename into place — and every rename is the *commit point* of such a
write.  A raw ``open(path, "w")`` (or ``Path.write_text``, ``json.dump``
to a file handle, a bare ``os.rename``) can leave a torn file after a
crash and silently invalidates the recovery tests.

Rules, enforced everywhere in the package except the two modules that
*implement* the discipline (``persistence/format.py``,
``persistence/journal.py``):

* ``raw-write``  — ``open()`` with a writable mode, ``Path.write_text``
  / ``write_bytes``, ``json.dump`` / ``pickle.dump`` to a stream;
* ``raw-rename`` — ``os.rename`` / ``os.replace`` / ``shutil.move``
  (a rename outside the atomic helpers is a commit point without a
  durable payload).

Read-side IO (``open(path)``, ``read_text``, ``json.load``) is
unrestricted.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.astutil import dotted_name, iter_functions, parse_module
from repro.analysis.findings import Finding

__all__ = ["CHECKER", "ALLOWED_FILES", "check"]

CHECKER = "durability-discipline"

#: The modules that implement the atomic-write discipline — including the
#: fault-injectable IO channel the recovery tests drive it through.
ALLOWED_FILES = frozenset(
    {
        "src/repro/persistence/format.py",
        "src/repro/persistence/journal.py",
        "src/repro/persistence/faults.py",
    }
)

_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})
_DUMP_CALLS = frozenset({"json.dump", "pickle.dump", "marshal.dump"})
_RENAME_CALLS = frozenset({"os.rename", "os.replace", "shutil.move"})


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string when this ``open``/``.open`` call can write."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(flag in mode.value for flag in ("w", "a", "x", "+")):
            return mode.value
        return None
    return "<dynamic>"  # non-literal mode: conservatively a write


def _symbols(tree: ast.Module) -> list[tuple[str, int, int]]:
    table = []
    for cls, func in iter_functions(tree):
        name = f"{cls}.{func.name}" if cls else func.name
        end = getattr(func, "end_lineno", func.lineno) or func.lineno
        table.append((name, func.lineno, end))
    return table


def _symbol_at(table: Sequence[tuple[str, int, int]], line: int) -> str:
    for name, start, end in table:
        if start <= line <= end:
            return name
    return ""


def check(root: Path, files: Optional[Sequence[str]] = None) -> list[Finding]:
    """Run durability-discipline over every package module under ``root``."""
    if files is None:
        package = root / "src" / "repro"
        selected = sorted(
            str(path.relative_to(root)) for path in package.rglob("*.py")
        )
    else:
        selected = list(files)
    findings: list[Finding] = []
    for relative in selected:
        if relative.replace("\\", "/") in ALLOWED_FILES:
            continue
        path = root / relative
        if not path.exists():
            continue
        module = parse_module(path, root)
        table = _symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            symbol = _symbol_at(table, node.lineno)
            name = dotted_name(node.func)
            if name == "open" or name.endswith(".open"):
                mode = _write_mode(node)
                if mode is not None:
                    findings.append(
                        Finding(
                            CHECKER,
                            "raw-write",
                            module.relative,
                            node.lineno,
                            f"open(..., {mode!r}) bypasses the atomic "
                            "write-tmp→fsync→rename helpers — use "
                            "repro.persistence.format.atomic_write_bytes/"
                            "atomic_write_json",
                            symbol=symbol,
                        )
                    )
            elif isinstance(node.func, ast.Attribute) and (
                node.func.attr in _WRITE_ATTRS
            ):
                findings.append(
                    Finding(
                        CHECKER,
                        "raw-write",
                        module.relative,
                        node.lineno,
                        f".{node.func.attr}() writes without tmp/fsync/rename "
                        "— a crash can leave a torn file; use "
                        "repro.persistence.format.atomic_write_bytes/"
                        "atomic_write_json",
                        symbol=symbol,
                    )
                )
            elif name in _DUMP_CALLS:
                findings.append(
                    Finding(
                        CHECKER,
                        "raw-write",
                        module.relative,
                        node.lineno,
                        f"{name}() serialises straight to a stream — build "
                        "the payload in memory and persist it via "
                        "repro.persistence.format.atomic_write_json",
                        symbol=symbol,
                    )
                )
            elif name in _RENAME_CALLS:
                findings.append(
                    Finding(
                        CHECKER,
                        "raw-rename",
                        module.relative,
                        node.lineno,
                        f"{name}() is a commit point outside the atomic "
                        "helpers — the payload may not be durable at rename "
                        "time",
                        symbol=symbol,
                    )
                )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
