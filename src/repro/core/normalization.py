"""Normalisation of raw measure values.

The paper computes the overall source quality as "a weighted average of the
different measures that are normalized by considering benchmarks derived
from the assessment of well-known, highly-ranked sources".  The default
:class:`BenchmarkNormalizer` implements exactly that strategy; two common
alternatives (min-max and z-score) are provided for the ablation study
described in DESIGN.md.

All normalizers map raw values into ``[0, 1]`` where 1 is best, taking the
``higher_is_better`` flag of each measure into account (e.g. traffic rank
and bounce rate improve as they decrease).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.columnar import freeze
from repro.core.measures import MeasureDefinition, MeasureRegistry
from repro.errors import NormalizationError

__all__ = [
    "Normalizer",
    "BenchmarkNormalizer",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "confine_renormalization",
]


def _log1p_column(column: np.ndarray) -> np.ndarray:
    """``math.log1p(max(0.0, v))`` per value, as an array.

    numpy's vectorized ``log1p`` dispatches to SIMD implementations whose
    results differ from ``math.log1p`` by an ulp on some platforms (they
    do on this one), which would break the bit-identity contract between
    columnar and scalar normalisation — so the transcendental stays a
    per-value ``math`` call.
    """
    return np.asarray(
        [math.log1p(value) if value > 0.0 else 0.0 for value in column.tolist()],
        dtype=np.float64,
    )


class Normalizer(ABC):
    """Base class for measure normalisation strategies.

    A normalizer is *fitted* on the raw measure values of a reference set of
    sources (or contributors) and then used to normalise the values of any
    individual.  Fitting is per measure name.

    ``fit_is_order_invariant`` declares whether a strategy's fit depends
    only on the *multiset* of reference values (True) or also on their
    order (False).  Order-invariant fits can be computed from per-shard
    pre-sorted columns merged in any order — the basis of the sharded
    rank pre-merge (see :meth:`SourceQualityModel.shard_sorted_fit_columns`);
    order-dependent fits (like the z-score's sequential sum) must see the
    corpus in its canonical order and fall back to the full-matrix path.
    """

    #: True when :meth:`fit` depends only on the multiset of reference
    #: values, never their order.  Strategies that set this True must also
    #: implement :meth:`fit_state` / :meth:`load_fit_state` so a fit can
    #: travel to shard workers.
    fit_is_order_invariant = False

    def __init__(self, registry: MeasureRegistry) -> None:
        self._registry = registry
        self._fitted = False
        self._fit_count = 0

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._fitted

    @property
    def fit_count(self) -> int:
        """Monotonic count of :meth:`fit` calls.

        Incremental consumers record the count their cached normalised
        values were computed with; a mismatch means the normalizer was
        re-fitted in between — possibly by *another* model sharing this
        instance, or by code calling :meth:`fit` directly — and the cached
        fit must be re-established before the instance is reused.
        """
        return self._fit_count

    def fit(self, reference_values: Mapping[str, Sequence[float]]) -> "Normalizer":
        """Fit the normalizer on per-measure reference values."""
        if not reference_values:
            raise NormalizationError("reference values must not be empty")
        for name, values in reference_values.items():
            if len(values) == 0:
                raise NormalizationError(f"measure {name!r} has no reference values")
            self._fit_measure(name, [float(value) for value in values])
        self._fitted = True
        self._fit_count += 1
        return self

    def fit_signature(self) -> dict[str, tuple]:
        """Per-measure signature of the fitted state, for refit confinement.

        Each entry captures *everything* :meth:`_normalize_measure` reads
        for that measure, so two fits with equal signatures for a measure
        are guaranteed to normalise it identically — a refit whose
        signature did not move for a measure leaves every previously
        normalised value of that measure valid bit for bit.  Incremental
        consumers (the quality models) compare signatures across refits and
        re-normalise only the measures whose fit actually moved
        (see :meth:`renormalize_measures`).

        The base implementation returns ``{}``, meaning "signatures
        unavailable": consumers must then treat every measure as moved.
        The built-in normalizers all override it.
        """
        return {}

    def fit_state(self) -> Optional[dict]:
        """JSON-serialisable snapshot of the fitted state, or None.

        A non-None state round-trips through :meth:`load_fit_state` into a
        normalizer that scores every value bit-identically to this one:
        the floats travel verbatim (JSON's ``repr`` round-trip is exact
        for float64), and the loaded instance runs exactly the same
        :meth:`_normalize_measure` arithmetic.  This is how a coordinator
        fits once and broadcasts the fit to shard workers.  The base
        implementation returns None ("not transportable"); the built-in
        strategies all override it.
        """
        return None

    def load_fit_state(self, state: Mapping[str, Any]) -> "Normalizer":
        """Adopt a fit produced by another instance's :meth:`fit_state`.

        Counts as one fit for :attr:`fit_count` purposes, exactly like
        :meth:`fit` — incremental consumers must notice the swap.
        """
        raise NormalizationError(
            f"{type(self).__name__} does not support transportable fit state"
        )

    def _adopt_fit(self) -> "Normalizer":
        """Mark the instance fitted after a :meth:`load_fit_state`."""
        self._fitted = True
        self._fit_count += 1
        return self

    def renormalize_measures(
        self,
        vectors: Mapping[str, Mapping[str, float]],
        names: Iterable[str],
        previous: Mapping[str, Mapping[str, float]],
    ) -> dict[str, dict[str, float]]:
        """Re-normalise only the measures in ``names``, reusing ``previous``.

        For every vector in ``vectors`` whose subject also appears in
        ``previous``, measures outside ``names`` copy the previously
        normalised value; measures in ``names`` (and every measure of a
        subject missing from ``previous``) are recomputed with exactly the
        arithmetic of :meth:`normalize_many`.  Provided ``previous`` was
        produced by a fit whose signature differs from the current one only
        on ``names`` (see :meth:`fit_signature`) and the raw vectors are
        unchanged, the result is bit-identical to a full
        :meth:`normalize_many` pass over ``vectors``.
        """
        if not self._fitted:
            raise NormalizationError("normalizer must be fitted before use")
        stale = set(names)
        directions: dict[str, bool] = {}
        normalized_vectors: dict[str, dict[str, float]] = {}
        for subject_id, values in vectors.items():
            previous_values = previous.get(subject_id)
            normalized: dict[str, float] = {}
            for name, value in values.items():
                if (
                    previous_values is not None
                    and name not in stale
                    and name in previous_values
                ):
                    normalized[name] = previous_values[name]
                    continue
                higher_is_better = directions.get(name)
                if higher_is_better is None:
                    higher_is_better = self._registry.get(name).higher_is_better
                    directions[name] = higher_is_better
                normalized[name] = self._normalize_directed(
                    name, value, higher_is_better
                )
            normalized_vectors[subject_id] = normalized
        return normalized_vectors

    def _normalize_directed(
        self, name: str, value: float, higher_is_better: bool
    ) -> float:
        """Single home of the per-value arithmetic: scale, clamp, flip.

        Every public normalisation path (:meth:`normalize`,
        :meth:`normalize_many`, :meth:`renormalize_measures`) goes through
        this helper, so partially renormalised matrices can never drift
        from full passes.
        """
        score = self._normalize_measure(name, float(value))
        score = min(1.0, max(0.0, score))
        if not higher_is_better:
            score = 1.0 - score
        return score

    def normalize(self, name: str, value: float) -> float:
        """Normalise ``value`` of measure ``name`` into ``[0, 1]`` (1 = best)."""
        if not self._fitted:
            raise NormalizationError("normalizer must be fitted before use")
        definition = self._registry.get(name)
        return self._normalize_directed(name, value, definition.higher_is_better)

    def normalize_all(self, values: Mapping[str, float]) -> dict[str, float]:
        """Normalise a full measure vector."""
        return {name: self.normalize(name, value) for name, value in values.items()}

    def normalize_many(
        self, vectors: Mapping[str, Mapping[str, float]]
    ) -> dict[str, dict[str, float]]:
        """Normalise a batch of measure vectors keyed by subject identifier.

        Arithmetic is identical to calling :meth:`normalize_all` per vector;
        the batch form resolves each measure definition once instead of once
        per (subject, measure) pair, which matters on corpus-sized batches.
        """
        if not self._fitted:
            raise NormalizationError("normalizer must be fitted before use")
        directions: dict[str, bool] = {}
        normalized_vectors: dict[str, dict[str, float]] = {}
        for subject_id, values in vectors.items():
            normalized: dict[str, float] = {}
            for name, value in values.items():
                higher_is_better = directions.get(name)
                if higher_is_better is None:
                    higher_is_better = self._registry.get(name).higher_is_better
                    directions[name] = higher_is_better
                normalized[name] = self._normalize_directed(
                    name, value, higher_is_better
                )
            normalized_vectors[subject_id] = normalized
        return normalized_vectors

    # -- columnar kernels ---------------------------------------------------------

    def fit_columns(
        self, reference_columns: Mapping[str, np.ndarray]
    ) -> "Normalizer":
        """Columnar twin of :meth:`fit` over per-measure float64 columns.

        Delegates to the :meth:`_fit_measure_column` hook, whose base
        implementation falls back to the scalar :meth:`_fit_measure` —
        custom normalizer subclasses stay bit-identical without opting in
        to vectorized fits.  Counts as one :meth:`fit` for
        :attr:`fit_count` purposes.
        """
        if not reference_columns:
            raise NormalizationError("reference values must not be empty")
        for name, column in reference_columns.items():
            if len(column) == 0:
                raise NormalizationError(f"measure {name!r} has no reference values")
            self._fit_measure_column(
                name, np.asarray(column, dtype=np.float64)
            )
        self._fitted = True
        self._fit_count += 1
        return self

    def normalize_column(self, name: str, column: np.ndarray) -> np.ndarray:
        """Normalise one measure column; bit-identical to :meth:`normalize`.

        The clamp adds ``+ 0.0`` after ``np.maximum``: Python's
        ``max(0.0, score)`` never yields ``-0.0`` (it returns its first
        argument on ties) while ``np.maximum`` preserves the sign of zero,
        and ``-0.0 + 0.0 == +0.0`` restores the scalar bit pattern without
        touching any other value.
        """
        if not self._fitted:
            raise NormalizationError("normalizer must be fitted before use")
        column = np.asarray(column, dtype=np.float64)
        scores = self._normalize_column(name, column)
        scores = np.minimum(1.0, np.maximum(scores, 0.0) + 0.0)
        if not self._registry.get(name).higher_is_better:
            scores = 1.0 - scores
        return freeze(scores)

    def normalize_columns(
        self, columns: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Normalise a full set of measure columns (batch of
        :meth:`normalize_column`)."""
        if not self._fitted:
            raise NormalizationError("normalizer must be fitted before use")
        return {
            name: self.normalize_column(name, column)
            for name, column in columns.items()
        }

    # -- strategy-specific hooks --------------------------------------------------

    @abstractmethod
    def _fit_measure(self, name: str, values: list[float]) -> None:
        """Record whatever statistics the strategy needs for one measure."""

    @abstractmethod
    def _normalize_measure(self, name: str, value: float) -> float:
        """Map a raw value into [0, 1] *before* direction correction."""

    def _fit_measure_column(self, name: str, column: np.ndarray) -> None:
        """Columnar fit hook; the default defers to the scalar fit."""
        self._fit_measure(name, column.tolist())

    def _normalize_column(self, name: str, column: np.ndarray) -> np.ndarray:
        """Columnar normalisation hook (pre-clamp, pre-flip).

        The default runs the scalar :meth:`_normalize_measure` per value,
        so any subclass is columnar-correct out of the box; the built-in
        strategies override it with vectorized kernels.
        """
        return np.asarray(
            [self._normalize_measure(name, value) for value in column.tolist()],
            dtype=np.float64,
        )

    def _definition(self, name: str) -> MeasureDefinition:
        return self._registry.get(name)


class BenchmarkNormalizer(Normalizer):
    """Normalise against a benchmark derived from highly-ranked sources.

    For each measure the benchmark is a high quantile (by default the 90th
    percentile) of the reference values; a value equal to or above the
    benchmark scores 1.0 and smaller values scale linearly.  This mirrors
    the paper's "benchmarks derived from the assessment of well-known,
    highly-ranked sources".

    Panel measures such as daily visitors or inbound links span several
    orders of magnitude; comparing them to a high-quantile benchmark on a
    linear scale would squash almost every source to ~0 and erase the
    distinctions among mid-sized sources.  When a measure's benchmark is
    more than ``log_scale_threshold`` times its median, the ratio is
    therefore computed on a ``log1p`` scale.
    """

    #: Quantile/floor/median picks read ``np.sort(values)`` only — the fit
    #: depends on the sorted multiset, never the input order.
    fit_is_order_invariant = True

    def __init__(
        self,
        registry: MeasureRegistry,
        quantile: float = 0.9,
        log_scale_threshold: float = 20.0,
    ) -> None:
        super().__init__(registry)
        if not 0.0 < quantile <= 1.0:
            raise NormalizationError("quantile must be in (0, 1]")
        if log_scale_threshold <= 1.0:
            raise NormalizationError("log_scale_threshold must be > 1")
        self._quantile = quantile
        self._log_scale_threshold = log_scale_threshold
        self._benchmarks: dict[str, float] = {}
        self._floors: dict[str, float] = {}
        self._log_scaled: set[str] = set()

    @property
    def benchmarks(self) -> dict[str, float]:
        """Per-measure benchmark values (after fitting)."""
        return dict(self._benchmarks)

    def fit_signature(self) -> dict[str, tuple]:
        """Per-measure ``(benchmark, floor, log-scaled)`` fit signature."""
        return {
            name: (
                self._benchmarks[name],
                self._floors[name],
                name in self._log_scaled,
            )
            for name in self._benchmarks
        }

    def fit_state(self) -> dict:
        """Transportable ``{benchmarks, floors, log_scaled}`` fit snapshot."""
        return {
            "strategy": "benchmark",
            "benchmarks": dict(self._benchmarks),
            "floors": dict(self._floors),
            "log_scaled": sorted(self._log_scaled),
        }

    def load_fit_state(self, state: Mapping[str, Any]) -> "Normalizer":
        if state.get("strategy") != "benchmark":
            raise NormalizationError(
                f"fit state strategy {state.get('strategy')!r} is not 'benchmark'"
            )
        self._benchmarks = {name: float(v) for name, v in state["benchmarks"].items()}
        self._floors = {name: float(v) for name, v in state["floors"].items()}
        self._log_scaled = set(state["log_scaled"])
        return self._adopt_fit()

    def _fit_measure(self, name: str, values: list[float]) -> None:
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(round(self._quantile * (len(ordered) - 1))))
        low_index = max(0, int(round((1.0 - self._quantile) * (len(ordered) - 1))))
        definition = self._definition(name)
        median = ordered[len(ordered) // 2]
        # Membership in the log-scaled set is recomputed (not just added)
        # per fit: a re-fit must normalise exactly like a fresh instance
        # fitted on the same values, or long-lived incremental models
        # would diverge from from-scratch rebuilds once a measure's
        # spread crosses the threshold downward.
        if definition.higher_is_better:
            self._benchmarks[name] = ordered[index]
            self._floors[name] = ordered[0]
            log_scaled = (
                median > 0
                and self._benchmarks[name] / median > self._log_scale_threshold
            )
        else:
            # For lower-is-better measures the "benchmark" is the low quantile.
            self._benchmarks[name] = ordered[-1]
            self._floors[name] = ordered[low_index]
            log_scaled = (
                self._floors[name] > 0
                and self._benchmarks[name] / self._floors[name]
                > self._log_scale_threshold
            )
        if log_scaled:
            self._log_scaled.add(name)
        else:
            self._log_scaled.discard(name)

    def _fit_measure_column(self, name: str, column: np.ndarray) -> None:
        # ``np.sort`` + element picks reproduce ``sorted(values)[i]``
        # exactly, so the vectorized fit shares the scalar fit's index
        # arithmetic verbatim.
        ordered = np.sort(column)
        index = min(len(ordered) - 1, int(round(self._quantile * (len(ordered) - 1))))
        low_index = max(0, int(round((1.0 - self._quantile) * (len(ordered) - 1))))
        definition = self._definition(name)
        median = float(ordered[len(ordered) // 2])
        if definition.higher_is_better:
            self._benchmarks[name] = float(ordered[index])
            self._floors[name] = float(ordered[0])
            log_scaled = (
                median > 0
                and self._benchmarks[name] / median > self._log_scale_threshold
            )
        else:
            self._benchmarks[name] = float(ordered[-1])
            self._floors[name] = float(ordered[low_index])
            log_scaled = (
                self._floors[name] > 0
                and self._benchmarks[name] / self._floors[name]
                > self._log_scale_threshold
            )
        if log_scaled:
            self._log_scaled.add(name)
        else:
            self._log_scaled.discard(name)

    def _normalize_column(self, name: str, column: np.ndarray) -> np.ndarray:
        definition = self._definition(name)
        log_scaled = name in self._log_scaled
        if definition.higher_is_better:
            benchmark = self._benchmarks[name]
            if log_scaled:
                scaled_benchmark = math.log1p(max(0.0, benchmark))
                if scaled_benchmark <= 0:
                    return np.where(column >= benchmark, 1.0, 0.0)
                return _log1p_column(column) / scaled_benchmark
            if benchmark <= 0:
                return np.where(column >= benchmark, 1.0, 0.0)
            return column / benchmark
        floor = self._floors[name]
        worst = self._benchmarks[name]
        values = column
        if log_scaled:
            floor = math.log1p(max(0.0, floor))
            worst = math.log1p(max(0.0, worst))
            values = _log1p_column(column)
        span = worst - floor
        if span <= 0:
            return np.where(values <= floor, 0.0, 1.0)
        return (values - floor) / span

    def _normalize_measure(self, name: str, value: float) -> float:
        definition = self._definition(name)
        log_scaled = name in self._log_scaled
        if definition.higher_is_better:
            benchmark = self._benchmarks[name]
            if log_scaled:
                scaled_benchmark = math.log1p(max(0.0, benchmark))
                if scaled_benchmark <= 0:
                    return 1.0 if value >= benchmark else 0.0
                return math.log1p(max(0.0, value)) / scaled_benchmark
            if benchmark <= 0:
                return 1.0 if value >= benchmark else 0.0
            return value / benchmark
        # Lower-is-better: map [floor, worst] linearly onto [0, 1] where the
        # floor (best observed region) maps to 0 so that the direction flip in
        # :meth:`normalize` turns it into 1.
        floor = self._floors[name]
        worst = self._benchmarks[name]
        if log_scaled:
            floor = math.log1p(max(0.0, floor))
            worst = math.log1p(max(0.0, worst))
            value = math.log1p(max(0.0, value))
        span = worst - floor
        if span <= 0:
            return 0.0 if value <= floor else 1.0
        return (value - floor) / span


class MinMaxNormalizer(Normalizer):
    """Classic min-max normalisation over the reference values."""

    #: min/max of a multiset do not depend on input order.
    fit_is_order_invariant = True

    def __init__(self, registry: MeasureRegistry) -> None:
        super().__init__(registry)
        self._minima: dict[str, float] = {}
        self._maxima: dict[str, float] = {}

    def fit_signature(self) -> dict[str, tuple]:
        """Per-measure ``(minimum, maximum)`` fit signature."""
        return {
            name: (self._minima[name], self._maxima[name]) for name in self._minima
        }

    def fit_state(self) -> dict:
        """Transportable ``{minima, maxima}`` fit snapshot."""
        return {
            "strategy": "min_max",
            "minima": dict(self._minima),
            "maxima": dict(self._maxima),
        }

    def load_fit_state(self, state: Mapping[str, Any]) -> "Normalizer":
        if state.get("strategy") != "min_max":
            raise NormalizationError(
                f"fit state strategy {state.get('strategy')!r} is not 'min_max'"
            )
        self._minima = {name: float(v) for name, v in state["minima"].items()}
        self._maxima = {name: float(v) for name, v in state["maxima"].items()}
        return self._adopt_fit()

    def _fit_measure(self, name: str, values: list[float]) -> None:
        self._minima[name] = min(values)
        self._maxima[name] = max(values)

    def _fit_measure_column(self, name: str, column: np.ndarray) -> None:
        self._minima[name] = float(column.min())
        self._maxima[name] = float(column.max())

    def _normalize_measure(self, name: str, value: float) -> float:
        low = self._minima[name]
        high = self._maxima[name]
        span = high - low
        if span <= 0:
            return 0.5
        return (value - low) / span

    def _normalize_column(self, name: str, column: np.ndarray) -> np.ndarray:
        low = self._minima[name]
        span = self._maxima[name] - low
        if span <= 0:
            return np.full(len(column), 0.5)
        return (column - low) / span


class ZScoreNormalizer(Normalizer):
    """Z-score normalisation squashed into [0, 1] with a logistic function."""

    def __init__(self, registry: MeasureRegistry, scale: float = 1.0) -> None:
        super().__init__(registry)
        if scale <= 0:
            raise NormalizationError("scale must be positive")
        self._scale = scale
        self._means: dict[str, float] = {}
        self._stds: dict[str, float] = {}

    def fit_signature(self) -> dict[str, tuple]:
        """Per-measure ``(mean, standard deviation)`` fit signature."""
        return {name: (self._means[name], self._stds[name]) for name in self._means}

    def fit_state(self) -> dict:
        """Transportable ``{means, stds}`` fit snapshot.

        The *fit* stays order-dependent (its sequential ``sum`` rounds
        differently under reordering, so ``fit_is_order_invariant`` is
        False and sharded pre-merge cannot rebuild it from sorted
        columns) — but an already-computed fit is just two float maps and
        transports exactly.
        """
        return {
            "strategy": "z_score",
            "means": dict(self._means),
            "stds": dict(self._stds),
        }

    def load_fit_state(self, state: Mapping[str, Any]) -> "Normalizer":
        if state.get("strategy") != "z_score":
            raise NormalizationError(
                f"fit state strategy {state.get('strategy')!r} is not 'z_score'"
            )
        self._means = {name: float(v) for name, v in state["means"].items()}
        self._stds = {name: float(v) for name, v in state["stds"].items()}
        return self._adopt_fit()

    def _fit_measure(self, name: str, values: list[float]) -> None:
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        self._means[name] = mean
        self._stds[name] = math.sqrt(variance)

    def _normalize_measure(self, name: str, value: float) -> float:
        std = self._stds[name]
        if std == 0:
            return 0.5
        # Clamp the z-score so that the logistic never overflows for values
        # lying extremely far outside the reference distribution.
        z = max(-50.0, min(50.0, (value - self._means[name]) / std))
        return 1.0 / (1.0 + math.exp(-z / self._scale))

    def _normalize_column(self, name: str, column: np.ndarray) -> np.ndarray:
        # The fit stays sequential-scalar (``sum``'s rounding differs from
        # numpy's pairwise reduction) and so does the logistic's ``exp``
        # (SIMD ulp drift, same reason as ``_log1p_column``); only the
        # z-score arithmetic and its clamp vectorize.
        std = self._stds[name]
        if std == 0:
            return np.full(len(column), 0.5)
        z = np.maximum(-50.0, np.minimum(50.0, (column - self._means[name]) / std))
        return np.asarray(
            [1.0 / (1.0 + math.exp(-value / self._scale)) for value in z.tolist()],
            dtype=np.float64,
        )


def confine_renormalization(
    normalizer: Normalizer,
    counters: Any,
    raw_vectors: Mapping[str, Mapping[str, float]],
    changed_ids: "set[str]",
    previous_normalized: Mapping[str, Mapping[str, float]],
    previous_signature: Mapping[str, tuple],
    fit_signature: Mapping[str, tuple],
) -> dict:
    """Normalise a patched matrix after a refit, confined per measure.

    Shared by both quality models (ROADMAP (f)).  Subjects whose raw
    vector changed (``changed_ids``) or that have no previous normalised
    vector are normalised in full.  For the rest, the refit's per-measure
    fit signatures are compared against the previous fit's: measures
    whose fit did not move keep their previously normalised values
    verbatim, and only the moved measures are recomputed.  When either
    signature is unavailable the whole matrix is renormalised.  The
    result is bit-identical to a full :meth:`Normalizer.normalize_many`
    pass in every branch; ``counters`` (a
    :class:`~repro.perf.counters.PerfCounters`) records which branch ran
    (``fit_signature_skips`` / ``partial_renormalisations`` +
    ``measures_renormalized``).
    """
    if not previous_signature or not fit_signature:
        return normalizer.normalize_many(raw_vectors)
    stale = {
        name
        for name, signature in fit_signature.items()
        if previous_signature.get(name) != signature
    }
    changed = {
        subject_id: vector
        for subject_id, vector in raw_vectors.items()
        if subject_id in changed_ids or subject_id not in previous_normalized
    }
    unchanged = {
        subject_id: vector
        for subject_id, vector in raw_vectors.items()
        if subject_id not in changed
    }
    normalized_changed = normalizer.normalize_many(changed) if changed else {}
    if not stale:
        # The refit reproduced the previous fit exactly: every cached
        # normalised value is still exact.
        counters.increment("fit_signature_skips")
        normalized_unchanged = {
            subject_id: previous_normalized[subject_id] for subject_id in unchanged
        }
    elif len(stale) < len(fit_signature):
        counters.increment("partial_renormalisations")
        counters.increment("measures_renormalized", len(stale))
        normalized_unchanged = normalizer.renormalize_measures(
            unchanged, stale, previous_normalized
        )
    else:
        normalized_unchanged = (
            normalizer.normalize_many(unchanged) if unchanged else {}
        )
    return {
        subject_id: (
            normalized_changed[subject_id]
            if subject_id in normalized_changed
            else normalized_unchanged[subject_id]
        )
        for subject_id in raw_vectors
    }


def collect_reference_values(
    measure_vectors: Iterable[Mapping[str, float]],
    names: Optional[Iterable[str]] = None,
) -> dict[str, list[float]]:
    """Pivot per-individual measure vectors into per-measure value lists.

    Convenience helper used by the quality models to fit normalizers on the
    measure vectors of a reference (benchmark) population.
    """
    vectors = list(measure_vectors)
    if not vectors:
        raise NormalizationError("no measure vectors provided")
    if names is None:
        names = vectors[0].keys()
    reference: dict[str, list[float]] = {name: [] for name in names}
    for vector in vectors:
        for name in reference:
            if name in vector:
                reference[name].append(float(vector[name]))
    return {name: values for name, values in reference.items() if values}
