"""``lock-discipline``: the serving core's lock order, machine-checked.

The concurrent serving core is deadlock-free by a *declared* total order
over its lock classes (see ``docs/INVARIANTS.md``): every thread must
acquire locks in non-decreasing rank.  This checker rebuilds that
argument from the AST — per-function lock-acquisition events, a
closed-world call graph over the serving/consumer modules, and a
fixpoint of which lock classes each function may transitively acquire —
then flags:

* ``lock-order``   — a lock acquired (directly or via a resolved call)
  while a higher-ranked lock is held;
* ``lock-cycle``   — a cycle in the aggregated lock-class graph
  (subsumed by ``lock-order`` under a total order, reported separately
  because the cycle is the actual deadlock witness);
* ``read-upgrade`` — ``rwlock.write`` acquired while ``rwlock.read`` is
  held (:class:`~repro.serving.rwlock.ReadWriteLock` upgrades deadlock
  by design and raise at runtime; this catches them before that);
* ``self-deadlock`` — a non-reentrant lock class acquired while already
  held;
* ``mutation-under-gate`` — a corpus mutation (``add``/``remove``/
  ``touch``) issued while holding any consumer-side lock;
* ``notify-under-lock`` — notification delivery (listener/hook
  invocation, outbox flush) while holding the corpus mutation lock or
  the bus intake lock — the exact PR 5 deadlock class.

Known model limits (false negatives, never false positives):

* Lock classes conflate instances — the scheduler's composite locks walk
  *different* consumers' gates in sorted-name order, which a class-level
  rank model cannot distinguish; their protocol is covered by the
  runtime validator instead.
* Property accesses that acquire locks (e.g. ``BusSubscription.dirty``)
  are invisible to call resolution.
* Calls that resolve to nothing (external receivers) propagate nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.astutil import ParsedModule, dotted_name, iter_functions, parse_module
from repro.analysis.findings import Finding

__all__ = ["CHECKER", "LOCK_RANKS", "LOCK_FILES", "check"]

CHECKER = "lock-discipline"

#: The declared total order: acquire in non-decreasing rank only.
LOCK_RANKS: dict[str, int] = {
    "checkpoint.gate": 1,   # the checkpoint consumer queue's refresh gate
    "checkpoint.drain": 2,  # its drain mutex
    "store.lock": 3,        # CorpusStore._lock
    "journal.append": 4,    # DurableJournalSubscriber._lock (paused() window)
    "scheduler.intake": 5,  # EagerRefreshScheduler._intake
    "shard.io": 6,          # ShardCoordinator._io (lifecycle + mutation drain)
    "shard.conn": 7,        # _Shard.lock (one wire round-trip per hold)
    "consumer.gate": 10,    # ConsumerQueue.refresh_gate / consumer refresh_mutex
    "consumer.drain": 20,   # ConsumerQueue._drain_mutex
    "rwlock.write": 30,     # ReadWriteLock write side
    "rwlock.read": 31,      # ReadWriteLock read side (no read->write upgrade)
    "corpus.mutation": 40,  # SourceCorpus._mutation_lock
    "bus.intake": 50,       # InvalidationBus._intake
    "rwlock.internal": 60,  # ReadWriteLock._condition (leaf; never nested)
}

#: ``threading.Lock`` classes — re-acquisition on the same thread deadlocks.
NON_REENTRANT = frozenset({"bus.intake"})

#: Holding any of these means "a consumer refresh/read is in flight".
CONSUMER_LOCKS = frozenset(
    {
        "checkpoint.gate",
        "checkpoint.drain",
        "consumer.gate",
        "consumer.drain",
        "rwlock.read",
        "rwlock.write",
    }
)

#: The concurrent serving core — the modules the call graph closes over.
LOCK_FILES: tuple[str, ...] = (
    "src/repro/serving/rwlock.py",
    "src/repro/serving/queues.py",
    "src/repro/serving/scheduler.py",
    "src/repro/sources/diffing.py",
    "src/repro/sources/corpus.py",
    "src/repro/search/engine.py",
    "src/repro/core/source_quality.py",
    "src/repro/core/contributor_quality.py",
    "src/repro/persistence/store.py",
    "src/repro/sharding/coordinator.py",
)

#: Context-manager methods that alias a lock class.
_CM_ALIASES = {"_mutating": "corpus.mutation", "paused": "journal.append"}

#: ``.read_lock()``-style calls that *are* acquisitions.
_CALL_LOCKS = {
    "read_lock": "rwlock.read",
    "acquire_read": "rwlock.read",
    "write_lock": "rwlock.write",
    "acquire_write": "rwlock.write",
}
_CALL_RELEASES = {
    "release_read": "rwlock.read",
    "release_write": "rwlock.write",
}

#: Receiver-name hints (matched on the final dotted segment, first hit
#: wins) — the closed world's answer to "what class is ``queue``?".
_RECEIVER_HINTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("subscription", ("BusSubscription",)),
    ("subscriber", ("DurableJournalSubscriber",)),
    ("marker", ("BusSubscription",)),
    ("tracker", ("CorpusChangeTracker",)),
    ("queue", ("ConsumerQueue",)),
    ("previous", ("ConsumerQueue",)),
    ("corpus", ("SourceCorpus",)),
    ("bus", ("InvalidationBus",)),
    ("rwlock", ("ReadWriteLock",)),
    ("engine", ("SearchEngine",)),
    ("scheduler", ("EagerRefreshScheduler",)),
    ("store", ("CorpusStore",)),
    ("model", ("SourceQualityModel", "ContributorQualityModel")),
)

#: Methods whose return type we know, for chained receivers like
#: ``corpus.invalidation_bus().subscribe(...)``.
_RETURN_TYPES = {"invalidation_bus": "InvalidationBus", "queue": "ConsumerQueue"}

#: ``ConsumerQueue`` is analysed once per refresh target: the checkpoint
#: store's queue sits *below* the consumer locks in the order (its
#: refresh drives other consumers' gates through the journal pause), so
#: its gate/drain are distinct lock classes.
_QUEUE_SPECS: dict[str, dict[str, object]] = {
    "consumer": {
        "gate": "consumer.gate",
        "drain": "consumer.drain",
        "_refresh": (
            "SearchEngine.refresh",
            "SourceQualityModel.assessment_context",
            "ContributorQualityModel.refresh",
        ),
    },
    "checkpoint": {
        "gate": "checkpoint.gate",
        "drain": "checkpoint.drain",
        "_refresh": ("CorpusStore.checkpoint_if_due",),
    },
}

_CORPUS_MUTATORS = frozenset({"add", "remove", "touch"})

#: Name-call patterns that *are* notification delivery.
_NOTIFY_NAME_PARTS = ("listener", "callback", "hook")
_NOTIFY_ATTRS = frozenset({"_flush_outbox"})


@dataclass
class _Ctx:
    """Where a function body lives: module, class, queue specialisation."""

    module: ParsedModule
    cls: Optional[str]
    spec: Optional[str] = None

    def key(self, name: str) -> str:
        if self.cls is None:
            return f"{Path(self.module.relative).stem}::{name}"
        if self.spec is not None:
            return f"{self.cls}#{self.spec}.{name}"
        return f"{self.cls}.{name}"


@dataclass
class _Event:
    """One acquisition / call / mutation / delivery with the held set."""

    kind: str  # "acquire" | "call" | "mutate" | "notify"
    line: int
    held: frozenset[str]
    lock: Optional[str] = None
    callees: tuple[str, ...] = ()
    detail: str = ""


@dataclass
class _FunctionInfo:
    key: str
    ctx: _Ctx
    events: list[_Event] = field(default_factory=list)
    direct_acquires: set[str] = field(default_factory=set)
    callees: set[str] = field(default_factory=set)
    delivers: bool = False
    mutates: bool = False


class _World:
    """Every analysed function plus the class table, for call resolution."""

    def __init__(self) -> None:
        self.functions: dict[str, _FunctionInfo] = {}
        self.classes: set[str] = set()
        #: class name -> method name -> list of function keys (specs fan out)
        self.methods: dict[str, dict[str, list[str]]] = {}

    def register(self, info: _FunctionInfo, method: str) -> None:
        self.functions[info.key] = info
        if info.ctx.cls is not None:
            self.methods.setdefault(info.ctx.cls, {}).setdefault(method, []).append(
                info.key
            )

    def resolve_method(self, cls: str, method: str) -> tuple[str, ...]:
        return tuple(self.methods.get(cls, {}).get(method, ()))


def _final_segment(name: str) -> str:
    return name.split(".")[-1].lower()


def _receiver_classes(receiver: ast.expr, ctx: _Ctx, world: _World) -> tuple[str, ...]:
    """The possible classes of a method call's receiver (may be empty)."""
    if isinstance(receiver, ast.Call):
        returned = _RETURN_TYPES.get(dotted_name(receiver.func).split(".")[-1])
        return (returned,) if returned in world.classes else ()
    name = dotted_name(receiver)
    if name == "self" and ctx.cls is not None:
        return (ctx.cls,)
    segment = _final_segment(name)
    for hint, classes in _RECEIVER_HINTS:
        if hint in segment:
            return tuple(cls for cls in classes if cls in world.classes)
    return ()


def _attr_lock(attr: str, receiver_name: str, ctx: _Ctx) -> Optional[str]:
    """Lock class of an attribute like ``self._mutation_lock`` (or None)."""
    if attr == "_mutation_lock":
        return "corpus.mutation"
    if attr == "_intake":
        if "bus" in _final_segment(receiver_name):
            return "bus.intake"
        if ctx.cls in ("InvalidationBus", "BusSubscription"):
            return "bus.intake"
        if ctx.cls == "EagerRefreshScheduler":
            return "scheduler.intake"
        return None
    if attr in ("refresh_gate", "refresh_mutex", "_refresh_mutex"):
        spec = _QUEUE_SPECS.get(ctx.spec or "consumer", _QUEUE_SPECS["consumer"])
        return str(spec["gate"])
    if attr == "_drain_mutex":
        spec = _QUEUE_SPECS.get(ctx.spec or "consumer", _QUEUE_SPECS["consumer"])
        return str(spec["drain"])
    if attr == "_condition" and ctx.cls == "ReadWriteLock":
        return "rwlock.internal"
    if attr == "_io" and ctx.cls == "ShardCoordinator":
        return "shard.io"
    if attr == "lock" and "shard" in _final_segment(receiver_name):
        return "shard.conn"
    if attr == "_lock":
        if ctx.cls == "DurableJournalSubscriber" or "subscriber" in _final_segment(
            receiver_name
        ):
            return "journal.append"
        if ctx.cls == "CorpusStore" or "store" in _final_segment(receiver_name):
            return "store.lock"
    return None


#: Runtime-validator wrappers (``with ordered(lock, "class"): ...``);
#: classified by unwrapping their first argument, so instrumenting a
#: with-block never blinds the static checker to the lock it holds.
_ORDERED_WRAPPERS = {"ordered", "_journal_append_lock"}


def _classify_lock_expr(node: ast.expr, ctx: _Ctx) -> Optional[str]:
    """Lock class of a with-item / acquire-receiver expression."""
    if isinstance(node, ast.Attribute):
        return _attr_lock(node.attr, dotted_name(node.value), ctx)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        name = node.func.attr
        if name in _CALL_LOCKS:
            return _CALL_LOCKS[name]
        if name in _CM_ALIASES:
            return _CM_ALIASES[name]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ORDERED_WRAPPERS
        and node.args
    ):
        return _classify_lock_expr(node.args[0], ctx)
    return None


class _FunctionVisitor:
    """Sequential walk of one function body, tracking the held-lock set."""

    def __init__(self, info: _FunctionInfo, world: _World) -> None:
        self.info = info
        self.world = world
        self.held: set[str] = set()

    # -- statement dispatch ----------------------------------------------------------

    def visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            self._visit_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, ast.While):
                self.scan_expr(stmt.test)
            else:
                self.scan_expr(stmt.iter)
            # Two passes: an acquisition in iteration N is held in N+1
            # (the composite-lock pattern); events dedupe via held sets.
            self.visit_block(stmt.body)
            self.visit_block(stmt.body)
            self.visit_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.visit_block(stmt.body)
            for handler in stmt.handlers:
                self.visit_block(handler.body)
            self.visit_block(stmt.orelse)
            self.visit_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs run later, not here
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.scan_expr(child)

    def _visit_branches(self, blocks: Sequence[Sequence[ast.stmt]]) -> None:
        """Path-insensitive merge: held-after = union of branch outcomes."""
        before = set(self.held)
        merged: set[str] = set()
        for block in blocks:
            self.held = set(before)
            self.visit_block(block)
            merged |= self.held
        self.held = merged

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            lock = _classify_lock_expr(item.context_expr, self.info.ctx)
            if lock is not None:
                self._acquire(lock, item.context_expr.lineno)
                if lock not in self.held:
                    self.held.add(lock)
                    acquired.append(lock)
            else:
                self.scan_expr(item.context_expr)
        self.visit_block(stmt.body)
        for lock in acquired:
            self.held.discard(lock)

    # -- expression scan (evaluation order, skipping lambdas) ------------------------

    def scan_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            return  # runs later, under whatever locks the *caller* holds
        if isinstance(node, ast.Call):
            # Receiver/arguments evaluate before the call fires.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.scan_expr(child)
            self._visit_call(node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.scan_expr(child)

    # -- call handling ---------------------------------------------------------------

    def _visit_call(self, call: ast.Call) -> None:
        ctx = self.info.ctx
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = func.value
            receiver_name = dotted_name(receiver)
            # 1. Lock operations.  ``read_lock()``/``write_lock()`` are
            # factories whose holding the enclosing ``with`` models;
            # ``acquire_read``/``acquire_write`` hold from here on.
            if name in _CALL_LOCKS:
                lock = _CALL_LOCKS[name]
                self._acquire(lock, call.lineno)
                if name.startswith("acquire_") and lock not in self.held:
                    self.held.add(lock)
                return
            if name in _CALL_RELEASES:
                self.held.discard(_CALL_RELEASES[name])
                return
            if name in _CM_ALIASES:
                self._acquire(_CM_ALIASES[name], call.lineno)
                return
            if name == "acquire":
                lock = _classify_lock_expr(receiver, ctx)
                if lock is not None:
                    self._acquire(lock, call.lineno)
                    if lock not in self.held:
                        self.held.add(lock)
                return
            if name == "release":
                lock = _classify_lock_expr(receiver, ctx)
                if lock is not None:
                    self.held.discard(lock)
                return
            # 2. Notification delivery / corpus mutation.
            if name in _NOTIFY_ATTRS:
                self.info.events.append(
                    _Event("notify", call.lineno, frozenset(self.held), detail=name)
                )
                self.info.delivers = True
            if name in _CORPUS_MUTATORS and (
                "corpus" in _final_segment(receiver_name)
                or (receiver_name == "self" and ctx.cls == "SourceCorpus")
            ):
                self.info.events.append(
                    _Event("mutate", call.lineno, frozenset(self.held), detail=name)
                )
            # 3. Closed-world resolution.
            callees = self._resolve_attr_call(name, receiver)
            if callees:
                self.info.callees.update(callees)
                self.info.events.append(
                    _Event(
                        "call",
                        call.lineno,
                        frozenset(self.held),
                        callees=callees,
                        detail=f"{receiver_name}.{name}()",
                    )
                )
        elif isinstance(func, ast.Name):
            lowered = func.id.lower()
            if lowered == "on_event" or any(p in lowered for p in _NOTIFY_NAME_PARTS):
                self.info.events.append(
                    _Event("notify", call.lineno, frozenset(self.held), detail=func.id)
                )
                self.info.delivers = True
                return
            if func.id in self.world.classes:
                callees: tuple[str, ...] = ()
                for key in self.world.resolve_method(func.id, "__init__"):
                    callees += (key,)
                if callees:
                    self.info.callees.update(callees)
                    self.info.events.append(
                        _Event(
                            "call",
                            call.lineno,
                            frozenset(self.held),
                            callees=callees,
                            detail=f"{func.id}()",
                        )
                    )

    def _resolve_attr_call(self, name: str, receiver: ast.expr) -> tuple[str, ...]:
        ctx = self.info.ctx
        if dotted_name(receiver) == "self":
            if ctx.cls == "ConsumerQueue" and name == "_refresh":
                spec = _QUEUE_SPECS[ctx.spec or "consumer"]
                return tuple(
                    key for key in spec["_refresh"] if key in self.world.functions  # type: ignore[union-attr]
                )
            if ctx.cls is not None:
                return tuple(
                    key
                    for key in self.world.resolve_method(ctx.cls, name)
                    if _spec_of(key) in (None, ctx.spec)
                )
            return ()
        resolved: tuple[str, ...] = ()
        for cls in _receiver_classes(receiver, ctx, self.world):
            resolved += self.world.resolve_method(cls, name)
        return resolved

    # -- acquisition bookkeeping ------------------------------------------------------

    def _acquire(self, lock: str, line: int) -> None:
        """Record an acquisition event against the current held set."""
        self.info.events.append(
            _Event("acquire", line, frozenset(self.held), lock=lock)
        )
        self.info.direct_acquires.add(lock)


def _spec_of(key: str) -> Optional[str]:
    if "#" in key:
        return key.split("#", 1)[1].split(".", 1)[0]
    return None


# -- world construction ---------------------------------------------------------------


def _build_world(modules: Sequence[ParsedModule]) -> _World:
    world = _World()
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                world.classes.add(node.name)
    for module in modules:
        for cls, func in iter_functions(module.tree):
            specs: tuple[Optional[str], ...] = (None,)
            if cls == "ConsumerQueue":
                specs = tuple(_QUEUE_SPECS)
            for spec in specs:
                ctx = _Ctx(module=module, cls=cls, spec=spec)
                info = _FunctionInfo(key=ctx.key(func.name), ctx=ctx)
                world.register(info, func.name)
    # Visit bodies only after every function is registered, so calls
    # resolve forward references.
    for module in modules:
        for cls, func in iter_functions(module.tree):
            specs = (None,) if cls != "ConsumerQueue" else tuple(_QUEUE_SPECS)
            for spec in specs:
                ctx = _Ctx(module=module, cls=cls, spec=spec)
                info = world.functions[ctx.key(func.name)]
                _FunctionVisitor(info, world).visit_block(func.body)
    return world


def _fixpoint(world: _World) -> tuple[dict[str, set[str]], dict[str, bool]]:
    """Transitive may-acquire sets and may-deliver flags."""
    may_acquire = {key: set(info.direct_acquires) for key, info in world.functions.items()}
    delivers = {key: info.delivers for key, info in world.functions.items()}
    changed = True
    while changed:
        changed = False
        for key, info in world.functions.items():
            for callee in info.callees:
                target = world.functions.get(callee)
                if target is None:
                    continue
                if not may_acquire[key].issuperset(may_acquire[callee]):
                    may_acquire[key] |= may_acquire[callee]
                    changed = True
                if delivers[callee] and not delivers[key]:
                    delivers[key] = True
                    changed = True
    return may_acquire, delivers


# -- rule evaluation ------------------------------------------------------------------


def _check_edge(
    held: str,
    acquired: str,
    info: _FunctionInfo,
    line: int,
    via: str,
    findings: list[Finding],
    reported: set[tuple[str, str, str]],
) -> None:
    if LOCK_RANKS.get(acquired, 0) >= LOCK_RANKS.get(held, 0):
        return
    if (info.key, held, acquired) in reported:
        return
    reported.add((info.key, held, acquired))
    suffix = f" via {via}" if via else ""
    if held == "rwlock.read" and acquired == "rwlock.write":
        findings.append(
            Finding(
                CHECKER,
                "read-upgrade",
                info.ctx.module.relative,
                line,
                "rwlock.write acquired while rwlock.read is held"
                f"{suffix} — ReadWriteLock upgrades deadlock by design; "
                "release the read side first",
                symbol=info.key,
            )
        )
        return
    findings.append(
        Finding(
            CHECKER,
            "lock-order",
            info.ctx.module.relative,
            line,
            f"{acquired} (rank {LOCK_RANKS.get(acquired)}) acquired while "
            f"holding {held} (rank {LOCK_RANKS.get(held)}){suffix} — the "
            "declared order requires non-decreasing ranks",
            symbol=info.key,
        )
    )


def _evaluate(world: _World) -> list[Finding]:
    may_acquire, delivers = _fixpoint(world)
    findings: list[Finding] = []
    reported: set[tuple[str, str, str]] = set()
    #: lock-class graph edge -> first (function, line) witnessing it
    edges: dict[tuple[str, str], tuple[_FunctionInfo, int]] = {}

    for info in world.functions.values():
        for event in info.events:
            if event.kind == "acquire":
                lock = event.lock or ""
                if lock in event.held:
                    if lock in NON_REENTRANT:
                        findings.append(
                            Finding(
                                CHECKER,
                                "self-deadlock",
                                info.ctx.module.relative,
                                event.line,
                                f"{lock} is not reentrant and is already held "
                                "on this thread",
                                symbol=info.key,
                            )
                        )
                    continue
                for held in event.held:
                    edges.setdefault((held, lock), (info, event.line))
                    _check_edge(held, lock, info, event.line, "", findings, reported)
            elif event.kind == "call" and event.held:
                targets: set[str] = set()
                for callee in event.callees:
                    targets |= may_acquire.get(callee, set())
                for lock in sorted(targets - event.held):
                    for held in event.held:
                        edges.setdefault((held, lock), (info, event.line))
                        _check_edge(
                            held, lock, info, event.line, event.detail, findings, reported
                        )
                if any(delivers.get(callee) for callee in event.callees):
                    blocked = event.held & {"corpus.mutation", "bus.intake"}
                    if blocked:
                        findings.append(
                            Finding(
                                CHECKER,
                                "notify-under-lock",
                                info.ctx.module.relative,
                                event.line,
                                "notification delivery via "
                                f"{event.detail} while holding "
                                f"{', '.join(sorted(blocked))} — deliver after "
                                "release (the PR 5 deadlock class)",
                                symbol=info.key,
                            )
                        )
            elif event.kind == "notify":
                blocked = event.held & {"corpus.mutation", "bus.intake"}
                if blocked:
                    findings.append(
                        Finding(
                            CHECKER,
                            "notify-under-lock",
                            info.ctx.module.relative,
                            event.line,
                            f"notification delivery ({event.detail}) while "
                            f"holding {', '.join(sorted(blocked))} — deliver "
                            "after release (the PR 5 deadlock class)",
                            symbol=info.key,
                        )
                    )
            elif event.kind == "mutate":
                blocked = event.held & CONSUMER_LOCKS
                if blocked:
                    findings.append(
                        Finding(
                            CHECKER,
                            "mutation-under-gate",
                            info.ctx.module.relative,
                            event.line,
                            f"corpus mutation .{event.detail}() while holding "
                            f"{', '.join(sorted(blocked))} — mutating under a "
                            "consumer lock inverts the gate→mutation order",
                            symbol=info.key,
                        )
                    )

    findings.extend(_cycles(edges))
    return findings


def _cycles(
    edges: dict[tuple[str, str], tuple[_FunctionInfo, int]]
) -> list[Finding]:
    """Report each lock-class cycle once, anchored at a witnessing edge."""
    graph: dict[str, set[str]] = {}
    for held, acquired in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    index = 0
    stack: list[str] = []
    on_stack: set[str] = set()
    indices: dict[str, int] = {}
    low: dict[str, int] = {}
    components: list[list[str]] = []

    def strongconnect(node: str) -> None:
        nonlocal index
        indices[node] = low[node] = index
        index += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph[node]:
            if succ not in indices:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], indices[succ])
        if low[node] == indices[node]:
            component: list[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(component)

    for node in sorted(graph):
        if node not in indices:
            strongconnect(node)

    findings: list[Finding] = []
    for component in components:
        member_set = set(component)
        witness = min(
            (
                (info, line, f"{held}->{acquired}")
                for (held, acquired), (info, line) in edges.items()
                if held in member_set and acquired in member_set
            ),
            key=lambda item: (item[0].ctx.module.relative, item[1]),
        )
        info, line, edge = witness
        findings.append(
            Finding(
                CHECKER,
                "lock-cycle",
                info.ctx.module.relative,
                line,
                "lock-class cycle "
                + " -> ".join(sorted(member_set))
                + f" (witnessed by edge {edge}) — a deadlock is schedulable",
                symbol=info.key,
            )
        )
    return findings


# -- entry point ----------------------------------------------------------------------


def check(root: Path, files: Optional[Sequence[str]] = None) -> list[Finding]:
    """Run lock-discipline over ``root`` (default: the serving core files)."""
    selected = LOCK_FILES if files is None else tuple(files)
    modules = [
        parse_module(root / relative, root)
        for relative in selected
        if (root / relative).exists()
    ]
    if not modules:
        return []
    world = _build_world(modules)
    return sorted(
        _evaluate(world), key=lambda f: (f.path, f.line, f.rule, f.message)
    )
