"""Tests for the interaction-graph extension and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.sources.graph import (
    InteractionGraph,
    build_community_graph,
    build_source_graph,
)


class TestInteractionGraph:
    def make_graph(self) -> InteractionGraph:
        graph = InteractionGraph()
        graph.add_user("isolated")
        graph.add_interaction("a", "hub")
        graph.add_interaction("b", "hub")
        graph.add_interaction("c", "hub")
        graph.add_interaction("hub", "a")
        graph.add_interaction("a", "hub")  # repeated edge accumulates weight
        return graph

    def test_nodes_edges_and_volume(self):
        graph = self.make_graph()
        assert len(graph) == 5
        assert graph.edge_count() == 4
        assert graph.interaction_volume() == pytest.approx(5.0)

    def test_self_interactions_ignored(self):
        graph = InteractionGraph()
        graph.add_interaction("a", "a")
        assert graph.edge_count() == 0

    def test_influence_indicators(self):
        graph = self.make_graph()
        influence = graph.influence()
        assert set(influence) == {"a", "b", "c", "hub", "isolated"}
        hub = influence["hub"]
        assert hub.in_degree == pytest.approx(4.0)
        assert hub.pagerank == max(item.pagerank for item in influence.values())
        assert influence["isolated"].in_degree == 0.0

    def test_top_by_pagerank(self):
        graph = self.make_graph()
        assert graph.top_by_pagerank(1) == ["hub"]
        assert len(graph.top_by_pagerank(3)) == 3

    def test_reciprocity(self):
        graph = self.make_graph()
        assert 0.0 < graph.reciprocity() <= 1.0
        assert InteractionGraph().reciprocity() == 0.0

    def test_empty_graph_influence_rejected(self):
        with pytest.raises(ReproError):
            InteractionGraph().influence()

    def test_build_source_graph(self, single_source):
        graph = build_source_graph(single_source)
        assert set(single_source.users) <= set(graph.user_ids())
        assert graph.edge_count() > 0
        influence = graph.influence()
        assert all(item.pagerank >= 0 for item in influence.values())

    def test_build_community_graph(self, small_community):
        graph = build_community_graph(small_community)
        assert len(graph) == len(small_community)


class TestCli:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rank_command(self, capsys, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        small_corpus.save(path)
        exit_code = main(["rank", "--corpus", str(path), "--top", "3",
                          "--categories", "travel", "food"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "rank" in captured
        assert len(captured.strip().splitlines()) == 4  # header + 3 rows

    def test_rank_command_with_generated_corpus(self, capsys):
        exit_code = main(["rank", "--sources", "6", "--seed", "3", "--top", "2"])
        assert exit_code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_influencers_command(self, capsys):
        exit_code = main(["influencers", "--accounts", "60", "--seed", "5", "--top", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "influence" in captured

    def test_experiment_table1_command(self, capsys):
        exit_code = main(["experiment", "table1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "open_discussion_category_coverage" in captured

    def test_experiment_invalid_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "not-an-experiment"])
