#!/usr/bin/env python3
"""Run the invariant lint suite (``make lint``).

Exit status 0 when every finding is suppressed or baselined, 1 otherwise.

    python scripts/run_lint.py                  # lint the repo
    python scripts/run_lint.py --write-baseline # grandfather current findings

Also fails on committed bytecode (``git ls-files '*.pyc'``): compiled
artefacts in the tree shadow source edits and bloat diffs, and once
slipped into a PR unnoticed (commit 7815632).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.findings import Finding, write_baseline  # noqa: E402
from repro.analysis.runner import run_all  # noqa: E402


def tracked_bytecode(root: Path) -> list[Finding]:
    """``repo-hygiene/tracked-bytecode`` findings for committed .pyc/.pyo."""
    try:
        output = subprocess.run(
            ["git", "ls-files", "*.pyc", "*.pyo", "**/__pycache__/*"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return []  # not a git checkout (e.g. an exported tarball): skip
    findings = []
    for line in sorted(set(output.splitlines())):
        if line:
            findings.append(
                Finding(
                    checker="repo-hygiene",
                    rule="tracked-bytecode",
                    path=line,
                    line=1,
                    message="compiled bytecode is tracked by git — "
                    "`git rm --cached` it; .gitignore covers __pycache__/",
                )
            )
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    parser.add_argument(
        "--baseline", type=Path, default=None, help="baseline file (default: <root>/lint_baseline.json)"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding and exit 0",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    baseline_path = args.baseline if args.baseline is not None else root / "lint_baseline.json"

    started = time.monotonic()
    report = run_all(root, baseline_path=baseline_path)
    hygiene = tracked_bytecode(root)
    elapsed = time.monotonic() - started

    if args.write_baseline:
        write_baseline(baseline_path, report.fresh + hygiene)
        print(
            f"wrote {len(report.fresh) + len(hygiene)} finding(s) to {baseline_path}"
        )
        return 0

    for finding in hygiene:
        print(finding.render())
    print(report.render() + f" in {elapsed:.2f}s")
    return 0 if report.ok and not hygiene else 1


if __name__ == "__main__":
    raise SystemExit(main())
