"""Write-ahead journal of corpus mutations.

The journal is the durability tier between two snapshots: every
:class:`~repro.sources.corpus.CorpusChange` the corpus announces is
appended (with the mutated source's full serialised content, since the
change event itself carries only identifiers) and fsynced before the
append returns, so a crash at any instant loses nothing that the writer
acknowledged.

File layout::

    RPJL | u32 format version | u64 base corpus version
    [u32 len][u32 crc][JSON payload]  * N

``base version`` is the corpus version the journal starts *after* — on a
fresh checkpoint it equals the snapshot's recorded corpus version, so
recovery can cross-check that a journal belongs behind a snapshot.  Each
record payload is::

    {"version": <corpus version after the mutation>,
     "op": "add" | "remove" | "touch",
     "source_id": <id>,
     "source": <Source.to_dict() or null for removes>}

Reading is *tolerant by design*: the reader scans records until the first
invalid one (truncated header, truncated payload, CRC mismatch — the
torn-tail classes a mid-append crash produces) and reports how many bytes
were valid; :func:`truncate_torn_tail` cuts the file there so subsequent
appends extend a clean record stream.  Only a corrupt *header* makes the
whole journal unusable — and since the header is written and fsynced
before any append is acknowledged, a corrupt header implies no record was
ever durable, so recovery treats it as "no journal" rather than failing.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Optional

from repro.errors import CorruptSnapshotError, PersistenceError
from repro.persistence.format import (
    FORMAT_VERSION,
    JOURNAL_MAGIC,
    decode_json,
    fsync_file,
    json_record,
    read_record,
    write_bytes,
    write_record,
)

__all__ = ["JournalReader", "JournalWriter", "read_journal", "truncate_torn_tail"]

_HEADER = struct.Struct("<IQ")
HEADER_SIZE = len(JOURNAL_MAGIC) + _HEADER.size


def _pack_header(base_version: int) -> bytes:
    return JOURNAL_MAGIC + _HEADER.pack(FORMAT_VERSION, base_version)


@dataclass
class JournalReader:
    """Result of a tolerant journal scan (see :func:`read_journal`)."""

    path: Path
    #: Corpus version the journal's records follow (snapshot cross-check).
    base_version: int
    #: Decoded record payloads, in append order, up to the first invalid one.
    records: list[dict[str, Any]]
    #: File offset one past the last valid record — the truncation point.
    valid_length: int
    #: True when bytes beyond ``valid_length`` exist (a torn tail).
    torn: bool

    @property
    def last_version(self) -> int:
        """Corpus version of the newest valid record (base version if none)."""
        if not self.records:
            return self.base_version
        return max(int(record.get("version", 0)) for record in self.records)


def read_journal(path: str | Path) -> JournalReader:
    """Scan a journal, keeping every valid record before the first torn one.

    Raises :class:`CorruptSnapshotError` only for an unusable *header*
    (bad magic or unsupported version); record-level damage is expected
    (a crash mid-append) and reported through ``torn``/``valid_length``
    instead of raised.
    """
    path = Path(path)
    try:
        buffer = path.read_bytes()
    except OSError as exc:
        raise PersistenceError(f"cannot read journal: {exc}", path=path) from exc
    if len(buffer) < HEADER_SIZE:
        raise CorruptSnapshotError("truncated journal header", path=path, offset=0)
    if buffer[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise CorruptSnapshotError(
            f"bad journal magic {buffer[:len(JOURNAL_MAGIC)]!r}", path=path, offset=0
        )
    version, base_version = _HEADER.unpack_from(buffer, len(JOURNAL_MAGIC))
    if version != FORMAT_VERSION:
        raise CorruptSnapshotError(
            f"unsupported journal format version {version}",
            path=path,
            offset=len(JOURNAL_MAGIC),
        )
    records: list[dict[str, Any]] = []
    offset = HEADER_SIZE
    while offset < len(buffer):
        decoded = read_record(buffer, offset)
        if decoded is None:
            break  # torn tail: everything before `offset` stays valid
        payload, next_offset = decoded
        try:
            record = decode_json(payload, path=path, offset=offset)
        except CorruptSnapshotError:
            break  # CRC-valid garbage: treat like a torn record, stop here
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = next_offset
    return JournalReader(
        path=path,
        base_version=base_version,
        records=records,
        valid_length=offset,
        torn=offset < len(buffer),
    )


def truncate_torn_tail(reader: JournalReader) -> bool:
    """Cut the journal at the last valid record; True when bytes were dropped.

    Run during recovery so the re-attached writer appends after a clean
    record stream instead of after garbage that would shadow every later
    record from readers.
    """
    if not reader.torn:
        return False
    with open(reader.path, "r+b") as handle:
        handle.truncate(reader.valid_length)
        fsync_file(handle, reader.path)
    return True


class JournalWriter:
    """Append-only, fsync-per-record journal writer.

    Opening is crash-safe: a missing or empty file gets a fresh header
    (fsynced before the first append can be acknowledged); an existing
    file is scanned and its torn tail truncated, so the writer always
    appends to a valid record stream.  ``fsync=False`` trades the
    per-append durability guarantee for speed (benchmarks; tests that
    model durability through the fault harness instead).
    """

    def __init__(
        self, path: str | Path, *, base_version: int = 0, fsync: bool = True
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._handle: Optional[BinaryIO] = None
        self.records_written = 0
        if self.path.exists() and self.path.stat().st_size >= HEADER_SIZE:
            reader = read_journal(self.path)
            truncate_torn_tail(reader)
            self.base_version = reader.base_version
            self.records_written = len(reader.records)
            self._handle = open(self.path, "ab")
        else:
            self.base_version = base_version
            self._start_fresh(base_version)

    def _start_fresh(self, base_version: int) -> None:
        handle = open(self.path, "wb")
        write_bytes(handle, self.path, _pack_header(base_version))
        fsync_file(handle, self.path)
        self._handle = handle
        self.base_version = base_version
        self.records_written = 0

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one record; return the total records written.

        The record is on disk (fsynced, when enabled) by the time this
        returns — the write-ahead guarantee recovery tests assert: an
        acknowledged append survives any later crash.
        """
        if self._handle is None:
            raise PersistenceError("journal writer is closed", path=self.path)
        write_record(self._handle, self.path, json_record(record))
        if self._fsync:
            fsync_file(self._handle, self.path)
        self.records_written += 1
        return self.records_written

    def reset(self, base_version: int) -> None:
        """Start a new journal epoch after a checkpoint.

        Runs *after* the snapshot rename: a crash in between leaves the
        old journal with records the snapshot already contains, which
        replay skips by version cross-check — stale records are harmless,
        lost ones would not be.
        """
        if self._handle is not None:
            self._handle.close()
        self._start_fresh(base_version)

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
