"""Mutation-safety tests: corpus versioning, epochs, incremental index.

The contract under test: after any sequence of corpus mutations
(``add``/``remove``/``touch``/in-place growth), every read path — search
results, static ranking, panel observations, quality-model rankings,
corpus statistics — must be *bit-identical* to what a freshly constructed
engine/model computes over the mutated corpus, and the incremental
refresh must invalidate only what the mutation could have affected.
"""

from __future__ import annotations

import pytest

from repro.core.contributor_quality import ContributorQualityModel
from repro.core.source_quality import SourceQualityModel
from repro.errors import SearchError, UnknownSourceError
from repro.search.engine import SearchEngine
from repro.sources.corpus import CorpusChange, SourceCorpus
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.models import Discussion, Post, Source, SourceType
from repro.sources.webstats import AlexaLikeService


def _fresh_corpus(count: int = 10, seed: int = 21) -> SourceCorpus:
    return CorpusGenerator(
        CorpusSpec(source_count=count, seed=seed, discussion_budget=8, user_budget=10)
    ).generate()


def _extra_source(source_id: str = "extra-src", popularity: float = 0.9) -> Source:
    return SourceGenerator(
        SourceSpec(
            source_id=source_id,
            focus_categories=("travel", "food"),
            latent_popularity=popularity,
            latent_engagement=0.6,
            discussion_budget=6,
            user_budget=8,
        ),
        seed=91,
    ).generate()


def _grow(source: Source, text: str, category: str = "travel") -> None:
    discussion = Discussion(
        discussion_id=f"grown-{source.content_revision}",
        category=category,
        title=text,
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(post_id=f"grown-post-{source.content_revision}", author_id="u1", day=2.0, text=text)
    )
    source.add_discussion(discussion)


def _assert_bit_identical(engine: SearchEngine, corpus: SourceCorpus, queries) -> None:
    """Engine state must match a from-scratch rebuild over the same corpus."""
    rebuilt = SearchEngine(corpus, panel=AlexaLikeService(), config=engine.config)
    assert engine.static_rank() == rebuilt.static_rank()
    for source_id in corpus.source_ids():
        assert engine.static_score(source_id) == rebuilt.static_score(source_id)
    for query in queries:
        left = engine.search(query, 10)
        right = rebuilt.search(query, 10)
        assert [r.source_id for r in left] == [r.source_id for r in right]
        for a, b in zip(left, right):
            assert a.score == b.score
            assert a.static_score == b.static_score
            assert a.topical_score == b.topical_score


QUERIES = ("travel flight resort", "food recipe dinner", "travel review")


class TestCorpusVersioning:
    def test_version_bumps_on_every_mutation(self):
        corpus = _fresh_corpus(4)
        version = corpus.version
        extra = _extra_source()
        corpus.add(extra)
        assert corpus.version == version + 1
        corpus.touch(extra.source_id)
        assert corpus.version == version + 2
        corpus.remove(extra.source_id)
        assert corpus.version == version + 3

    def test_touch_bumps_source_revision(self):
        corpus = _fresh_corpus(3)
        source = corpus.sources()[0]
        revision = source.content_revision
        corpus.touch(source.source_id)
        assert source.content_revision == revision + 1

    def test_touch_unknown_source_rejected(self):
        with pytest.raises(UnknownSourceError):
            _fresh_corpus(3).touch("ghost")

    def test_subscribers_receive_ordered_changes(self):
        corpus = _fresh_corpus(3)
        events: list[CorpusChange] = []
        corpus.subscribe(events.append)
        corpus.subscribe(events.append)  # duplicate subscribe is a no-op
        extra = _extra_source()
        corpus.add(extra)
        corpus.touch(extra.source_id)
        corpus.remove(extra.source_id)
        assert [(e.op, e.source_id) for e in events] == [
            ("add", "extra-src"),
            ("touch", "extra-src"),
            ("remove", "extra-src"),
        ]
        assert [e.version for e in events] == sorted(e.version for e in events)
        corpus.unsubscribe(events.append)
        corpus.add(_extra_source("other"))
        assert len(events) == 3

    def test_epoch_changes_on_touch_even_with_identical_counts(self):
        corpus = _fresh_corpus(3)
        before = corpus.epoch()
        corpus.touch(corpus.source_ids()[0])
        assert corpus.epoch() != before

    def test_weak_subscribers_do_not_pin_discarded_engines(self):
        """Rebuilding engines over a long-lived corpus must not leak
        listeners or keep the discarded panels alive."""
        import gc
        import weakref

        corpus = _fresh_corpus(3)
        refs = []
        for _ in range(3):
            engine = SearchEngine(corpus, panel=AlexaLikeService())
            refs.append(weakref.ref(engine))
        del engine
        gc.collect()
        assert all(ref() is None for ref in refs)
        corpus.touch(corpus.source_ids()[0])  # prunes dead weak listeners
        # The corpus keeps exactly one listener: its shared invalidation
        # bus.  The discarded engines' bus subscriptions (weakly held by
        # the bus) and the panels' weak corpus subscriptions are gone.
        assert len(corpus._listeners) == 1
        assert corpus.invalidation_bus().subscription_count() == 0


class TestPanelObservationEpochs:
    """Regression: observations must not be served stale on replace/grow."""

    def test_replaced_source_is_remeasured(self):
        corpus = _fresh_corpus(4)
        panel = AlexaLikeService()
        source_id = corpus.source_ids()[0]
        stale = panel.observe(corpus.get(source_id))

        corpus.remove(source_id)
        replacement = SourceGenerator(
            SourceSpec(
                source_id=source_id,
                focus_categories=("travel",),
                latent_popularity=0.99,
                discussion_budget=4,
                user_budget=5,
            ),
            seed=77,
        ).generate()
        corpus.add(replacement)
        fresh = panel.observe(corpus.get(source_id))
        assert fresh.daily_visitors != stale.daily_visitors
        # An independent panel agrees: nothing stale was served.
        assert fresh == AlexaLikeService().observe(replacement)

    def test_grown_source_is_remeasured_not_served_from_stale_key(self):
        corpus = _fresh_corpus(4)
        panel = AlexaLikeService()
        source = corpus.sources()[0]
        panel.observe(source)
        source.latent_popularity = min(1.0, source.latent_popularity + 0.4)
        _grow(source, "brand new travel content")  # helper bumps the revision
        fresh = panel.observe(source)
        assert fresh == AlexaLikeService().observe(source)

    def test_touch_remeasures_count_preserving_edits(self):
        corpus = _fresh_corpus(4)
        panel = AlexaLikeService()
        source = corpus.sources()[0]
        stale = panel.observe(source)
        source.latent_popularity = min(1.0, source.latent_popularity + 0.4)
        corpus.touch(source.source_id)
        fresh = panel.observe(source)
        assert fresh.daily_visitors != stale.daily_visitors

    def test_watch_evicts_on_remove(self):
        corpus = _fresh_corpus(4)
        panel = AlexaLikeService()
        panel.watch(corpus)
        source_id = corpus.source_ids()[0]
        panel.observe(corpus.get(source_id))
        corpus.remove(source_id)
        assert source_id not in panel._cache


class TestIncrementalIndexEquivalence:
    """After any mutation, reads are bit-identical to a from-scratch rebuild."""

    def test_add_source(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)  # warm caches pre-mutation
        corpus.add(_extra_source())
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_remove_source(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)
        corpus.remove(corpus.source_ids()[0])
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_grow_source_in_place(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)
        _grow(corpus.sources()[2], "travel flight resort flight")
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_touch_after_count_preserving_edit(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)
        source = corpus.sources()[1]
        post = next(iter(source.posts()))
        post.text = "travel flight resort museum milan"
        corpus.touch(source.source_id)
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_mutation_sequence(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        for query in QUERIES:
            engine.search(query, 10)
        corpus.add(_extra_source("seq-a", popularity=0.95))
        engine.search(QUERIES[0], 10)
        corpus.remove(corpus.source_ids()[0])
        _grow(corpus.sources()[0], "food recipe dinner recipe")
        engine.search(QUERIES[1], 10)
        corpus.add(_extra_source("seq-b", popularity=0.05))
        corpus.touch("seq-a")
        corpus.remove("seq-b")
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_deep_refresh_catches_unannounced_post_growth(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)
        discussion = corpus.sources()[0].discussions[0]
        discussion.posts.append(
            Post(
                post_id="rogue-post",
                author_id="u1",
                day=3.0,
                text="travel flight resort resort resort",
            )
        )
        # Invisible to the O(1)/O(n) tiers (no helper, no touch, no length
        # change at source level) — the deep fingerprint tier catches it.
        assert engine.refresh(deep=True) is True
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_scoped_refresh_rescans_only_the_announced_burst(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search(QUERIES[0], 10)
        # Announce a touch on one source while another grows behind the
        # helpers' back: the burst-scoped diff fingerprints the announced
        # source only, so the rogue post stays unindexed...
        touched = corpus.sources()[1]
        touched.discussions[0].posts[0].text = "travel flight resort reworded"
        corpus.touch(touched.source_id)
        corpus.sources()[0].discussions[0].posts.append(
            Post(
                post_id="rogue-scoped",
                author_id="u1",
                day=3.0,
                text="travel flight resort resort resort",
            )
        )
        assert engine.refresh() is True
        assert engine.counters.get("scoped_diffs") == 1
        assert engine.counters.get("sources_reindexed") == 1
        # ...until deep=True forces the full content scan, after which the
        # index converges with a from-scratch build over the rogue post.
        assert engine.refresh(deep=True) is True
        _assert_bit_identical(engine, corpus, QUERIES)

    def test_refresh_return_value_and_noop_counter(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        assert engine.refresh() is False
        noops = engine.counters.get("refresh_noops")
        assert noops >= 1
        corpus.add(_extra_source())
        assert engine.refresh() is True
        assert engine.counters.get("incremental_refreshes") == 1
        assert engine.refresh() is False

    def test_statistics_reflect_mutation(self):
        corpus = _fresh_corpus()
        SearchEngine(corpus, panel=AlexaLikeService())  # engine does not freeze stats
        before = corpus.statistics()
        extra = _extra_source()
        corpus.add(extra)
        after = corpus.statistics()
        assert after.source_count == before.source_count + 1
        assert after.discussion_count == before.discussion_count + len(extra.discussions)
        assert after.post_count == before.post_count + extra.post_count()

    def test_emptied_corpus_rejected_on_read(self):
        corpus = _fresh_corpus(2)
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        for source_id in corpus.source_ids():
            corpus.remove(source_id)
        with pytest.raises(SearchError):
            engine.search("travel", 5)


def _hand_built_corpus() -> SourceCorpus:
    """Three tiny sources with disjoint vocabularies for cache-surgery tests."""

    def build(source_id: str, popularity: float, words: str) -> Source:
        source = Source(
            source_id=source_id,
            name=source_id,
            url=f"https://{source_id}.example.org",
            source_type=SourceType.BLOG,
            latent_popularity=popularity,
            latent_engagement=0.5,
            latent_stickiness=0.5,
        )
        discussion = Discussion(
            discussion_id=f"{source_id}-d0", category="travel", title=words, opened_at=1.0
        )
        discussion.posts.append(
            Post(post_id=f"{source_id}-p0", author_id="u1", day=2.0, text=words)
        )
        source.add_discussion(discussion)
        return source

    return SourceCorpus(
        [
            build("src-alpha", 0.9, "alpha beta gamma"),
            build("src-delta", 0.5, "delta epsilon zeta"),
            build("src-eta", 0.1, "eta theta iota"),
        ]
    )


class TestResultCacheEpochInvalidation:
    def test_touch_invalidates_only_affected_entries(self):
        corpus = _hand_built_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search("alpha", 5)
        engine.search("eta", 5)

        # Reword the low-popularity source (same counts, same observation:
        # corpus size and static maxima are untouched) — only queries over
        # its vocabulary may change.
        source = corpus.get("src-eta")
        source.discussions[0].posts[0].text = "eta kappa lambda"
        corpus.touch("src-eta")

        hits_before = engine.counters.get("result_cache_hits")
        engine.search("alpha", 5)  # unaffected entry survives the refresh
        assert engine.counters.get("result_cache_hits") == hits_before + 1
        assert engine.counters.get("result_cache_evictions") >= 1
        assert engine.counters.get("result_cache_flushes") == 0

        results = engine.search("kappa", 5)
        assert [r.source_id for r in results] == ["src-eta"]

    def test_add_flushes_all_entries(self):
        corpus = _hand_built_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        engine.search("alpha", 5)
        corpus.add(
            SourceGenerator(
                SourceSpec(source_id="flush-src", discussion_budget=2, user_budget=3),
                seed=5,
            ).generate()
        )
        hits_before = engine.counters.get("result_cache_hits")
        engine.search("alpha", 5)  # corpus size changed: IDF moved for everyone
        assert engine.counters.get("result_cache_hits") == hits_before
        assert engine.counters.get("result_cache_flushes") >= 1


class TestQualityModelEpochPropagation:
    def test_source_model_refreshes_after_touch(self, travel_domain):
        corpus = _fresh_corpus(6)
        model = SourceQualityModel(travel_domain)
        model.rank(corpus)
        assert model.counters.get("context_builds") == 1
        corpus.touch(corpus.source_ids()[0])
        model.rank(corpus)
        # The touch is detected, but instead of a second full build the
        # cached context is patched: one re-crawl, no wholesale rebuild.
        assert model.counters.get("context_builds") == 1
        assert model.counters.get("context_patches") == 1
        assert model.counters.get("sources_recrawled") == 1

    def test_source_model_matches_fresh_model_after_mutation(self, travel_domain):
        corpus = _fresh_corpus(6)
        model = SourceQualityModel(travel_domain)
        model.rank(corpus)
        corpus.add(_extra_source())
        _grow(corpus.sources()[0], "travel food review")
        incremental_ids = model.ranking_ids(corpus)
        fresh_ids = SourceQualityModel(travel_domain).ranking_ids(corpus)
        assert incremental_ids == fresh_ids
        left = model.assess_corpus(corpus)
        right = SourceQualityModel(travel_domain).assess_corpus(corpus)
        for source_id, assessment in left.items():
            assert abs(assessment.overall - right[source_id].overall) <= 1e-9

    def test_contributor_model_refreshes_after_touch(self, travel_domain):
        source = _extra_source("contrib-src")
        model = ContributorQualityModel(travel_domain)
        model.assess_source(source)
        assert model.counters.get("context_builds") == 1
        source.touch()
        result = model.assess_source(source)
        # The touch is detected via the mutation watcher, but instead of a
        # second full build the community is re-crawled in one shared walk
        # and every untouched assessment is reused.
        assert model.counters.get("context_builds") == 1
        assert model.counters.get("context_patches") == 1
        assert model.counters.get("community_recrawls") == 1
        fresh = ContributorQualityModel(travel_domain).assess_source(source)
        assert {u: a.overall for u, a in result.items()} == {
            u: a.overall for u, a in fresh.items()
        }


class TestWireBoundaryCoalescing:
    """InvalidationBus coalescing survives the sharding wire boundary.

    A mutation burst bridged onto the wire (``WireBridgeSubscriber`` →
    framed codec → ``replay_journal`` on a worker-side replica) must
    produce exactly the patch set the in-process bus delivers: same
    coalesced source-id/op sets, same event count, same final corpus
    payloads, same version.
    """

    def test_coalesced_burst_replays_to_same_patch_set(self):
        import socket as socket_module

        from repro.persistence.store import replay_journal
        from repro.sharding import WireConnection
        from repro.sources.diffing import WireBridgeSubscriber

        corpus = _fresh_corpus(5)
        replica = SourceCorpus.from_dict(corpus.to_dict())
        replica._restore_version(corpus.version)
        local_subscription = corpus.invalidation_bus().subscribe(name="in-process")
        replica_subscription = replica.invalidation_bus().subscribe(name="replayed")

        left_sock, right_sock = socket_module.socketpair()
        left = WireConnection(left_sock, timeout=10.0)
        right = WireConnection(right_sock, timeout=10.0)
        bridge = WireBridgeSubscriber(corpus, left.send, name="test-bridge")
        try:
            ids = corpus.source_ids()
            records = []
            # Drain the wire after each mutation: the bridge sends
            # synchronously and a socketpair buffer is finite (the real
            # coordinator batches through flush() instead).
            for _ in range(3):
                corpus.touch(ids[0])  # coalesces to one dirty source in-process
                records.append(right.recv())
            _grow(corpus.get(ids[1]), "travel growth across the wire")
            records.append(right.recv())
            corpus.add(_extra_source("wire-extra"))
            records.append(right.recv())
            corpus.remove(ids[2])
            records.append(right.recv())
            burst = 6
            assert all(record is not None for record in records)
            applied, skipped = replay_journal(replica, records)
            assert (applied, skipped) == (burst, 0)
        finally:
            bridge.close()
            left.close()
            right.close()

        in_process = local_subscription.drain()
        replayed = replica_subscription.drain()
        assert replayed.events == in_process.events == burst
        assert replayed.source_ids == in_process.source_ids
        assert replayed.ops == in_process.ops
        assert replayed.last_version == in_process.last_version == corpus.version
        assert replica.version == corpus.version
        assert replica.to_dict() == corpus.to_dict()

    def test_replaying_the_same_burst_twice_is_idempotent(self):
        from repro.persistence.store import replay_journal
        from repro.sources.diffing import WireBridgeSubscriber

        corpus = _fresh_corpus(4)
        replica = SourceCorpus.from_dict(corpus.to_dict())
        replica._restore_version(corpus.version)
        records: list[dict] = []
        bridge = WireBridgeSubscriber(corpus, records.append, name="dup-bridge")
        try:
            corpus.touch(corpus.source_ids()[0])
            corpus.add(_extra_source("idempotent-extra"))
        finally:
            bridge.close()
        assert replay_journal(replica, records) == (2, 0)
        assert replay_journal(replica, records) == (0, 2)
        assert replica.to_dict() == corpus.to_dict()
        assert replica.version == corpus.version
