"""Simulated general-purpose search engine baseline.

Section 4.1 of the paper compares the quality-based ranking against the
ranking returned by Google for more than 100 queries.  Google circa 2011 is
obviously not reproducible offline; what the experiment needs is a
*general-purpose* ranker whose ordering is dominated by traffic and inbound
links — which is precisely what the paper's regression analysis found
("Google rank is directly related to traffic and inbound links, privileging
mere number of contacts rather than the actual interest and participation
of the users").  :class:`SearchEngine` implements such a ranker on top of a
keyword index over the corpus, and :mod:`repro.search.queries` generates the
query workload.
"""

from repro.search.engine import SearchEngine, SearchEngineConfig, SearchResult
from repro.search.queries import QueryWorkload, QueryWorkloadSpec

__all__ = [
    "QueryWorkload",
    "QueryWorkloadSpec",
    "SearchEngine",
    "SearchEngineConfig",
    "SearchResult",
]
