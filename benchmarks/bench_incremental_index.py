#!/usr/bin/env python
"""Incremental index maintenance vs full rebuild under a mutation stream.

Builds a large corpus (2000 sources by default — the scale of the paper's
Section 4.1 study), then drives a stream of corpus mutations (source adds,
removes, in-place growth, announced ``touch`` edits) through a live
:class:`~repro.search.engine.SearchEngine`.  After every event the harness
times two ways of bringing the index back in sync:

* **incremental** — ``engine.refresh()``: the epoch diff plus patching of
  postings lists, document frequencies, static scores and the static
  order for just the affected sources;
* **full rebuild** — constructing a brand-new ``SearchEngine`` over the
  mutated corpus, exactly what a caller had to do before the index became
  mutation-safe.

Before timing counts, every event asserts the incrementally maintained
engine is *bit-identical* to the rebuilt one: same static ranking, same
result ids, bit-equal combined/static/topical scores on a probe workload.
A speedup can therefore never come from computing the wrong thing.

Results are merged into ``BENCH_perf.json`` under the
``incremental_index`` key (the other sections are preserved).  Run with
``make perf`` or::

    PYTHONPATH=src python benchmarks/bench_incremental_index.py

``--strict`` exits non-zero when the ≥10x speedup target is missed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.perf.buildinfo import git_build_stamp
from repro.persistence.format import atomic_write_json
from repro.search.engine import SearchEngine
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import CorpusGenerator, CorpusSpec
from repro.sources.models import Discussion, Post
from repro.sources.webstats import AlexaLikeService

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Speedup target recorded in the JSON so future PRs see the goalposts.
TARGET_INCREMENTAL_SPEEDUP = 10.0

PROBE_QUERIES = (
    "travel flight resort",
    "food recipe dinner",
    "music concert festival",
    "technology gadget review",
    "sports match final",
)


def _build_dataset(source_count: int, spare_count: int) -> tuple[SourceCorpus, list]:
    """Generate ``source_count`` indexed sources plus a held-back add stream."""
    corpus = CorpusGenerator(
        CorpusSpec(
            source_count=source_count + spare_count,
            seed=17,
            discussion_budget=12,
            user_budget=12,
        )
    ).generate()
    spare_ids = corpus.source_ids()[source_count:]
    spares = [corpus.remove(source_id) for source_id in spare_ids]
    return corpus, spares


def _grow(source, tag: int) -> None:
    discussion = Discussion(
        discussion_id=f"stream-{tag}",
        category="travel",
        title="travel flight resort late breaking",
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"stream-post-{tag}",
            author_id="u1",
            day=2.0,
            text="travel flight resort beach hotel",
        )
    )
    source.add_discussion(discussion)


def _mutate(corpus: SourceCorpus, spares: list, event: int) -> str:
    """Apply one streaming mutation; rotate through the four mutation kinds."""
    kind = event % 4
    if kind == 0 and spares:
        corpus.add(spares.pop())
        return "add"
    if kind == 1:
        corpus.remove(corpus.source_ids()[event % len(corpus)])
        return "remove"
    if kind == 2:
        _grow(corpus.sources()[event % len(corpus)], event)
        return "grow"
    source = corpus.sources()[event % len(corpus)]
    post = next(iter(source.posts()), None)
    if post is not None:
        post.text = f"reworded travel content {event}"
    corpus.touch(source.source_id)
    return "touch"


def _assert_bit_identical(engine: SearchEngine, rebuilt: SearchEngine, label: str) -> None:
    if engine.static_rank() != rebuilt.static_rank():
        raise AssertionError(f"{label}: static ranking diverged from rebuild")
    for query in PROBE_QUERIES:
        left = engine.search(query, 20)
        right = rebuilt.search(query, 20)
        if [r.source_id for r in left] != [r.source_id for r in right]:
            raise AssertionError(f"{label}: result ids diverged for {query!r}")
        for a, b in zip(left, right):
            if (
                a.score != b.score
                or a.static_score != b.static_score
                or a.topical_score != b.topical_score
            ):
                raise AssertionError(f"{label}: scores diverged for {query!r}")


def run(output_path: Path, source_count: int, spare_count: int, events: int) -> dict:
    """Run the mutation stream and merge the section into the report."""
    print(
        f"building corpus ({source_count} sources + {spare_count} spare)...",
        flush=True,
    )
    corpus, spares = _build_dataset(source_count, spare_count)
    engine = SearchEngine(corpus, panel=AlexaLikeService())
    for query in PROBE_QUERIES:  # warm the result cache so epoch eviction is exercised
        engine.search(query, 20)

    incremental_seconds: list[float] = []
    rebuild_seconds: list[float] = []
    kinds: list[str] = []
    for event in range(events):
        kind = _mutate(corpus, spares, event)
        kinds.append(kind)

        start = time.perf_counter()
        updated = engine.refresh()
        incremental_seconds.append(time.perf_counter() - start)
        if not updated:
            raise AssertionError(f"event {event} ({kind}): refresh saw no change")

        start = time.perf_counter()
        rebuilt = SearchEngine(corpus, panel=AlexaLikeService())
        rebuild_seconds.append(time.perf_counter() - start)

        _assert_bit_identical(engine, rebuilt, f"event {event} ({kind})")
        print(
            f"  event {event:2d} {kind:6s}  incremental {incremental_seconds[-1]*1e3:8.2f} ms"
            f"  rebuild {rebuild_seconds[-1]:6.3f} s",
            flush=True,
        )

    incremental_total = sum(incremental_seconds)
    rebuild_total = sum(rebuild_seconds)
    speedup = rebuild_total / incremental_total if incremental_total > 0 else float("inf")
    section = {
        "sources": source_count,
        "events": events,
        "event_kinds": kinds,
        "incremental_seconds": incremental_total,
        "full_rebuild_seconds": rebuild_total,
        "mean_incremental_ms": incremental_total / events * 1e3,
        "mean_rebuild_seconds": rebuild_total / events,
        "speedup": speedup,
        "target_speedup": TARGET_INCREMENTAL_SPEEDUP,
        "equivalence_queries": len(PROBE_QUERIES),
        "engine_counters": engine.counters.snapshot(),
    }

    report: dict = {}
    if output_path.exists():
        try:
            report = json.loads(output_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            report = {}
    report.setdefault(
        "meta",
        {"python": platform.python_version(), "platform": platform.platform()},
    )
    report["meta"].update(git_build_stamp())
    report["incremental_index"] = section
    try:
        atomic_write_json(output_path, report)
    except OSError as exc:
        print(f"FATAL: could not write {output_path}: {exc}", file=sys.stderr)
        sys.exit(1)
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON report to merge into (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--sources", type=int, default=2000,
        help="corpus size the engine serves while mutations stream in (default: 2000)",
    )
    parser.add_argument(
        "--events", type=int, default=12,
        help="number of streamed mutations (default: 12)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    args = parser.parse_args(argv)
    spare_count = (args.events + 3) // 4 + 1  # one spare per 'add' event

    section = run(args.output, args.sources, spare_count, args.events)
    status = (
        "[ok]"
        if section["speedup"] >= section["target_speedup"]
        else f"[BELOW {section['target_speedup']}x TARGET]"
    )
    print(
        f"incremental_index        rebuild {section['full_rebuild_seconds']:8.3f}s  "
        f"incremental {section['incremental_seconds']:8.3f}s  "
        f"speedup {section['speedup']:7.1f}x  {status}"
    )
    print(f"wrote {args.output}")
    if args.strict and section["speedup"] < section["target_speedup"]:
        print("FATAL: incremental-index speedup target missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
