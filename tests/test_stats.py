"""Tests for the statistics substrate (ranking, descriptive, regression,
factor analysis, ANOVA)."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import InsufficientDataError, StatisticsError
from repro.stats.anova import bonferroni_pairwise, one_way_anova
from repro.stats.descriptive import (
    correlation_matrix,
    describe,
    pearson_correlation,
    standardize,
)
from repro.stats.factor import factor_analysis, varimax_rotation
from repro.stats.ranking import (
    compare_rankings,
    displacement_statistics,
    kendall_tau,
    rank_displacements,
    spearman_rho,
)
from repro.stats.regression import linear_regression

import numpy as np


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_independence_is_near_zero(self):
        rng = random.Random(0)
        xs = [rng.random() for _ in range(300)]
        ys = [rng.random() for _ in range(300)]
        assert abs(kendall_tau(xs, ys)) < 0.1

    def test_ties_handled(self):
        value = kendall_tau([1, 1, 2, 3], [1, 2, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_tau_b_with_single_variable_ties_hand_computed(self):
        # xs ties: one pair; ys ties: one pair; C=4, D=0, n0=6, n1=1, n2=1.
        assert kendall_tau([1, 1, 2, 3], [1, 2, 2, 3]) == pytest.approx(
            4.0 / math.sqrt(5.0 * 5.0)
        )

    def test_tau_b_with_joint_ties_hand_computed(self):
        # Pair (0,1) is tied in BOTH samples: it must enter n1 and n2.
        # C=3, D=2, n0=6, n1=1, n2=1 -> (3-2)/sqrt(5*5) = 0.2.
        assert kendall_tau([1, 1, 2, 3], [2, 2, 1, 3]) == pytest.approx(0.2)
        # Joint tie (0,1) plus an x-only tie (2,3): C=4, D=0, n1=2, n2=1.
        assert kendall_tau([1, 1, 2, 2], [1, 1, 2, 3]) == pytest.approx(
            4.0 / math.sqrt(4.0 * 5.0)
        )

    def test_tau_b_matches_scipy_on_tie_heavy_samples(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(7)
        for _ in range(60):
            n = rng.randint(3, 15)
            xs = [rng.randint(0, 3) for _ in range(n)]
            ys = [rng.randint(0, 3) for _ in range(n)]
            expected = scipy_stats.kendalltau(xs, ys).correlation
            actual = kendall_tau(xs, ys)
            if math.isnan(expected):
                assert actual == 0.0  # constant sample: we define tau as 0
            else:
                assert actual == pytest.approx(expected, abs=1e-12)

    def test_constant_series_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(StatisticsError):
            kendall_tau([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(InsufficientDataError):
            kendall_tau([1], [1])


class TestSpearman:
    def test_monotone_relation_is_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [value**3 for value in xs]
        assert spearman_rho(xs, ys) == pytest.approx(1.0)

    def test_reverse_is_minus_one(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


class TestRankDisplacements:
    def test_identity_has_zero_displacement(self):
        displacements = rank_displacements(["a", "b", "c"], ["a", "b", "c"])
        assert all(value == 0 for value in displacements.values())

    def test_reversal_displacements(self):
        displacements = rank_displacements(["a", "b", "c"], ["c", "b", "a"])
        assert displacements == {"a": 2, "b": 0, "c": 2}

    def test_mismatched_items_rejected(self):
        with pytest.raises(StatisticsError):
            rank_displacements(["a", "b"], ["a", "c"])

    def test_duplicates_rejected(self):
        with pytest.raises(StatisticsError):
            rank_displacements(["a", "a"], ["a", "a"])

    def test_compare_rankings_statistics(self):
        result = compare_rankings(list("abcdefghij"), list("badcfehgji"))
        assert result.item_count == 10
        assert result.average_displacement == pytest.approx(1.0)
        assert result.fraction_coincident == 0.0
        assert result.fraction_displaced_over_5 == 0.0

    def test_displacement_statistics_fractions(self):
        stats = displacement_statistics([0, 0, 6, 11, 3])
        assert stats.fraction_coincident == pytest.approx(0.4)
        assert stats.fraction_displaced_over_5 == pytest.approx(0.4)
        assert stats.fraction_displaced_over_10 == pytest.approx(0.2)
        assert stats.max_displacement == 11

    def test_empty_displacements_rejected(self):
        with pytest.raises(InsufficientDataError):
            displacement_statistics([])


class TestDescriptive:
    def test_describe_summary(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_orders_of_magnitude(self):
        summary = describe([1.0, 10_000.0])
        assert summary.range_orders_of_magnitude == pytest.approx(4.0)

    def test_orders_of_magnitude_keeps_positive_sub_unit_minimum(self):
        # Regression: max(1.0, ...) used to clamp the 0.001 minimum to 1,
        # collapsing a 4-order span to a single order.
        summary = describe([0.001, 10.0])
        assert summary.range_orders_of_magnitude == pytest.approx(4.0)

    def test_orders_of_magnitude_entirely_sub_unit_sample(self):
        summary = describe([0.001, 0.01])
        assert summary.range_orders_of_magnitude == pytest.approx(1.0)

    def test_orders_of_magnitude_clamps_only_non_positive_values(self):
        assert describe([0.0, 100.0]).range_orders_of_magnitude == pytest.approx(2.0)
        assert describe([-5.0, 10.0]).range_orders_of_magnitude == pytest.approx(1.0)

    def test_orders_of_magnitude_never_negative(self):
        # Clamping the non-positive minimum to 1 can invert the pair when
        # the maximum is a positive sub-unit value; the span is then 0.
        assert describe([-5.0, 0.5]).range_orders_of_magnitude == 0.0
        assert describe([3.0, 3.0]).range_orders_of_magnitude == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(InsufficientDataError):
            describe([])

    def test_pearson_of_linear_relation(self):
        xs = list(range(50))
        ys = [3.0 * value + 2.0 for value in xs]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_pearson_constant_column_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_correlation_matrix_is_symmetric(self):
        matrix = correlation_matrix({"a": [1, 2, 3], "b": [3, 2, 1], "c": [1, 1, 2]})
        assert matrix[("a", "b")] == pytest.approx(matrix[("b", "a")])
        assert matrix[("a", "a")] == 1.0

    def test_correlation_matrix_rejects_ragged_columns(self):
        with pytest.raises(StatisticsError):
            correlation_matrix({"a": [1, 2, 3], "b": [1, 2]})

    def test_standardize_zero_mean_unit_variance(self):
        values = standardize([2.0, 4.0, 6.0, 8.0])
        assert sum(values) == pytest.approx(0.0)
        assert math.sqrt(sum(v * v for v in values) / len(values)) == pytest.approx(1.0)

    def test_standardize_constant_column(self):
        assert standardize([5.0, 5.0, 5.0]) == [0.0, 0.0, 0.0]

    def test_standardize_large_constant_column_with_float_residue(self):
        # The float mean of large near-identical values leaves a rounding
        # residue; the relative-std guard must still treat them as constant.
        values = [1e15 + 0.1, 1e15, 1e15 - 0.1, 1e15]
        assert standardize([1e15] * 4) == [0.0, 0.0, 0.0, 0.0]
        assert all(abs(v) < 10 for v in standardize(values))

    def test_standardize_tiny_varying_column_keeps_z_scores(self):
        # The guard is relative, not absolute: a genuinely varying column of
        # tiny values standardises like any other column.
        values = standardize([1e-13, 2e-13, 3e-13])
        assert values == pytest.approx([-math.sqrt(1.5), 0.0, math.sqrt(1.5)])


class TestLinearRegression:
    def test_recovers_known_coefficients(self):
        rng = random.Random(1)
        xs = [rng.uniform(-5, 5) for _ in range(200)]
        ys = [2.5 * x - 1.0 + rng.gauss(0, 0.1) for x in xs]
        result = linear_regression([xs], ys, predictor_names=["x"])
        assert result.coefficient("x") == pytest.approx(2.5, abs=0.05)
        assert result.intercept == pytest.approx(-1.0, abs=0.05)
        assert result.p_value("x") < 1e-6
        assert result.direction("x") == "positive"
        assert result.r_squared > 0.95

    def test_detects_non_significant_predictor(self):
        rng = random.Random(2)
        xs = [rng.uniform(-5, 5) for _ in range(200)]
        ys = [rng.gauss(0, 1.0) for _ in xs]
        result = linear_regression([xs], ys)
        assert not result.is_significant("x0", alpha=0.01)

    def test_multiple_predictors(self):
        rng = random.Random(3)
        x1 = [rng.uniform(0, 1) for _ in range(300)]
        x2 = [rng.uniform(0, 1) for _ in range(300)]
        ys = [1.0 * a - 2.0 * b + rng.gauss(0, 0.05) for a, b in zip(x1, x2)]
        result = linear_regression([x1, x2], ys, predictor_names=["a", "b"])
        assert result.coefficient("a") == pytest.approx(1.0, abs=0.05)
        assert result.coefficient("b") == pytest.approx(-2.0, abs=0.05)
        assert result.direction("b") == "negative"

    def test_collinear_predictors_rejected(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        with pytest.raises(StatisticsError):
            linear_regression([xs, xs], [1, 2, 3, 4, 5])

    def test_too_few_observations_rejected(self):
        with pytest.raises(InsufficientDataError):
            linear_regression([[1.0, 2.0]], [1.0, 2.0])

    def test_unknown_predictor_name_rejected(self):
        result = linear_regression([[1.0, 2.0, 3.0, 4.0]], [1.0, 2.1, 2.9, 4.2])
        with pytest.raises(StatisticsError):
            result.coefficient("missing")


class TestFactorAnalysis:
    @staticmethod
    def three_factor_columns(n=400, seed=4):
        rng = random.Random(seed)
        columns = {name: [] for name in ("t1", "t2", "p1", "p2", "s1", "s2")}
        for _ in range(n):
            traffic = rng.gauss(0, 1)
            participation = rng.gauss(0, 1)
            stickiness = rng.gauss(0, 1)
            columns["t1"].append(traffic + rng.gauss(0, 0.3))
            columns["t2"].append(0.9 * traffic + rng.gauss(0, 0.3))
            columns["p1"].append(participation + rng.gauss(0, 0.3))
            columns["p2"].append(0.8 * participation + rng.gauss(0, 0.3))
            columns["s1"].append(stickiness + rng.gauss(0, 0.3))
            columns["s2"].append(-0.9 * stickiness + rng.gauss(0, 0.3))
        return columns

    def test_recovers_block_structure(self):
        result = factor_analysis(self.three_factor_columns(), component_count=3)
        assert result.assignments["t1"] == result.assignments["t2"]
        assert result.assignments["p1"] == result.assignments["p2"]
        assert result.assignments["s1"] == result.assignments["s2"]
        groups = {
            result.assignments["t1"],
            result.assignments["p1"],
            result.assignments["s1"],
        }
        assert len(groups) == 3

    def test_explained_variance_is_a_partition(self):
        result = factor_analysis(self.three_factor_columns(), component_count=3)
        assert all(0.0 <= ratio <= 1.0 for ratio in result.explained_variance_ratio)
        assert sum(result.explained_variance_ratio) <= 1.0 + 1e-9

    def test_component_scores_have_one_row_per_observation(self):
        columns = self.three_factor_columns(n=150)
        result = factor_analysis(columns, component_count=3)
        assert len(result.component_scores) == 150
        assert len(result.component_score_column(0)) == 150

    def test_varimax_preserves_shape(self):
        loadings = np.array([[0.8, 0.1], [0.7, 0.2], [0.1, 0.9], [0.2, 0.8]])
        rotated = varimax_rotation(loadings)
        assert rotated.shape == loadings.shape

    def test_too_many_components_rejected(self):
        with pytest.raises(StatisticsError):
            factor_analysis({"a": [1, 2, 3, 4], "b": [2, 1, 4, 3]}, component_count=5)

    def test_too_few_observations_rejected(self):
        with pytest.raises(InsufficientDataError):
            factor_analysis({"a": [1, 2], "b": [2, 1], "c": [0, 1]}, component_count=2)

    def test_unknown_measure_lookup_rejected(self):
        result = factor_analysis(self.three_factor_columns(n=100), component_count=2)
        with pytest.raises(StatisticsError):
            result.loading("missing", 0)


class TestAnova:
    def test_detects_clear_mean_difference(self):
        rng = random.Random(5)
        groups = {
            "low": [rng.gauss(0, 1) for _ in range(80)],
            "high": [rng.gauss(3, 1) for _ in range(80)],
            "mid": [rng.gauss(1.5, 1) for _ in range(80)],
        }
        result = one_way_anova(groups)
        assert result.is_significant(0.001)
        assert result.group_means["high"] > result.group_means["low"]
        assert result.between_df == 2
        assert result.within_df == 237

    def test_no_difference_is_not_significant(self):
        rng = random.Random(6)
        groups = {
            "a": [rng.gauss(0, 1) for _ in range(60)],
            "b": [rng.gauss(0, 1) for _ in range(60)],
        }
        assert not one_way_anova(groups).is_significant(0.01)

    def test_requires_two_groups_with_enough_data(self):
        with pytest.raises(StatisticsError):
            one_way_anova({"only": [1.0, 2.0]})
        with pytest.raises(InsufficientDataError):
            one_way_anova({"a": [1.0], "b": [1.0, 2.0]})

    def test_bonferroni_signs_follow_differences(self):
        rng = random.Random(7)
        groups = {
            "low": [rng.gauss(0, 1) for _ in range(100)],
            "high": [rng.gauss(4, 1) for _ in range(100)],
            "same": [rng.gauss(0, 1) for _ in range(100)],
        }
        comparisons = {
            (item.first, item.second): item for item in bonferroni_pairwise(groups)
        }
        assert comparisons[("low", "high")].sign == "<"
        assert comparisons[("low", "same")].sign == "="
        assert comparisons[("high", "same")].sign == ">"

    def test_bonferroni_correction_inflates_p_values(self):
        rng = random.Random(8)
        groups = {
            "a": [rng.gauss(0, 1) for _ in range(40)],
            "b": [rng.gauss(0.4, 1) for _ in range(40)],
            "c": [rng.gauss(0.8, 1) for _ in range(40)],
        }
        from scipy import stats as scipy_stats

        raw_p = float(scipy_stats.ttest_ind(groups["a"], groups["b"], equal_var=False)[1])
        adjusted = {
            (item.first, item.second): item.p_value for item in bonferroni_pairwise(groups)
        }[("a", "b")]
        assert adjusted >= raw_p
        assert adjusted <= 1.0

    def test_bonferroni_explicit_pairs_and_unknown_group(self):
        groups = {"a": [1.0, 2.0, 3.0], "b": [1.5, 2.5, 3.5]}
        comparisons = bonferroni_pairwise(groups, pairs=[("a", "b")])
        assert len(comparisons) == 1
        with pytest.raises(StatisticsError):
            bonferroni_pairwise(groups, pairs=[("a", "ghost")])

    def test_degenerate_constant_groups(self):
        groups = {"a": [2.0, 2.0, 2.0], "b": [2.0, 2.0, 2.0]}
        comparisons = bonferroni_pairwise(groups)
        assert comparisons[0].sign == "="
