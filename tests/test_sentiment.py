"""Tests for the sentiment lexicon, analyser and indicators."""

from __future__ import annotations

import pytest

from repro.core.domain import DomainOfInterest, TimeInterval
from repro.errors import SentimentError
from repro.sentiment.analyzer import SentimentAnalyzer
from repro.sentiment.indicators import SentimentIndicatorService
from repro.sentiment.lexicon import SentimentLexicon, default_lexicon, tourism_lexicon
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Discussion, Post, Source, SourceType


class TestLexicon:
    def test_default_lexicon_polarities(self):
        lexicon = default_lexicon()
        assert lexicon.polarity("wonderful") > 0
        assert lexicon.polarity("terrible") < 0
        assert lexicon.polarity("table") == 0.0

    def test_negations_and_modifiers(self):
        lexicon = default_lexicon()
        assert lexicon.is_negation("not")
        assert not lexicon.is_negation("very")
        assert lexicon.modifier("very") > 1.0
        assert lexicon.modifier("slightly") < 1.0
        assert lexicon.modifier("table") == 1.0

    def test_tourism_lexicon_extends_default(self):
        lexicon = tourism_lexicon()
        assert lexicon.polarity("overrated") < 0
        assert lexicon.polarity("wonderful") > 0

    def test_extended_with_overrides(self):
        lexicon = default_lexicon().extended_with({"meh": -0.2, "good": 0.9})
        assert lexicon.polarity("meh") == -0.2
        assert lexicon.polarity("good") == 0.9

    def test_invalid_lexicon_rejected(self):
        with pytest.raises(SentimentError):
            SentimentLexicon(polarities={})
        with pytest.raises(SentimentError):
            SentimentLexicon(polarities={"x": 2.0})

    def test_opinion_words_excludes_zero_polarity(self):
        lexicon = default_lexicon().extended_with({"flat": 0.0})
        assert "flat" not in lexicon.opinion_words()


class TestAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self) -> SentimentAnalyzer:
        return SentimentAnalyzer()

    def test_positive_and_negative_texts(self, analyzer):
        positive = analyzer.score("The hotel was wonderful and the staff friendly")
        negative = analyzer.score("Terrible service, dirty room, rude staff")
        assert positive.polarity > 0.2
        assert positive.label == "positive"
        assert negative.polarity < -0.2
        assert negative.label == "negative"

    def test_neutral_text(self, analyzer):
        score = analyzer.score("We took the metro to the station at noon")
        assert score.label == "neutral"
        assert not score.is_opinionated

    def test_negation_flips_polarity(self, analyzer):
        plain = analyzer.score("the food was good")
        negated = analyzer.score("the food was not good")
        assert plain.polarity > 0
        assert negated.polarity < plain.polarity
        assert negated.polarity <= 0

    def test_intensifier_strengthens(self, analyzer):
        plain = analyzer.score("the view was nice")
        boosted = analyzer.score("the view was very nice")
        assert boosted.polarity >= plain.polarity

    def test_empty_text(self, analyzer):
        score = analyzer.score("")
        assert score.polarity == 0.0
        assert score.token_count == 0

    def test_polarity_bounded(self, analyzer):
        score = analyzer.score(" ".join(["amazing wonderful excellent superb"] * 20))
        assert -1.0 <= score.polarity <= 1.0

    def test_average_polarity_skips_non_opinionated(self, analyzer):
        texts = ["great trip", "the tram was on line four", "awful queue"]
        selective = analyzer.average_polarity(texts)
        everything = analyzer.average_polarity(texts, opinionated_only=False)
        assert selective != 0.0
        assert abs(everything) <= abs(selective) + 1e-9

    def test_invalid_negation_window_rejected(self):
        with pytest.raises(SentimentError):
            SentimentAnalyzer(negation_window=0)


def _make_opinionated_source(source_id: str, polarity_word: str) -> Source:
    source = Source(
        source_id=source_id,
        name=source_id,
        url=f"https://{source_id}.example.org",
        source_type=SourceType.REVIEW_SITE,
        observation_day=100.0,
    )
    discussion = Discussion(
        discussion_id=f"{source_id}-d0", category="attractions", title="t", opened_at=1.0
    )
    for index in range(4):
        discussion.posts.append(
            Post(
                post_id=f"{source_id}-p{index}",
                author_id="u1",
                day=2.0 + index,
                text=f"The museum was {polarity_word}",
                category="attractions",
            )
        )
    source.add_discussion(discussion)
    return source


class TestIndicatorService:
    def test_indicator_over_corpus(self):
        corpus = SourceCorpus(
            [
                _make_opinionated_source("happy", "wonderful"),
                _make_opinionated_source("angry", "terrible"),
            ]
        )
        service = SentimentIndicatorService()
        indicator = service.indicator(corpus)
        assert not indicator.weighted
        assert indicator.source("happy").average_polarity > 0
        assert indicator.source("angry").average_polarity < 0
        assert indicator.category("attractions").post_count == 8

    def test_quality_weighting_shifts_overall(self):
        corpus = SourceCorpus(
            [
                _make_opinionated_source("happy", "wonderful"),
                _make_opinionated_source("angry", "terrible"),
            ]
        )
        service = SentimentIndicatorService()
        favour_happy = service.indicator(corpus, quality_weights={"happy": 1.0, "angry": 0.1})
        favour_angry = service.indicator(corpus, quality_weights={"happy": 0.1, "angry": 1.0})
        assert favour_happy.overall_polarity > favour_angry.overall_polarity
        assert favour_happy.weighted

    def test_domain_filter_restricts_posts(self):
        source = _make_opinionated_source("happy", "wonderful")
        domain = DomainOfInterest(
            categories=("transport",), time_interval=TimeInterval(0.0, 100.0)
        )
        service = SentimentIndicatorService(domain=domain)
        sentiment = service.source_sentiment(source)
        assert sentiment.post_count == 0
        assert sentiment.average_polarity == 0.0

    def test_empty_corpus_rejected(self):
        with pytest.raises(SentimentError):
            SentimentIndicatorService().indicator(SourceCorpus())

    def test_unknown_source_or_category_lookup_rejected(self):
        corpus = SourceCorpus([_make_opinionated_source("happy", "wonderful")])
        indicator = SentimentIndicatorService().indicator(corpus)
        with pytest.raises(SentimentError):
            indicator.source("ghost")
        with pytest.raises(SentimentError):
            indicator.category("ghost")
