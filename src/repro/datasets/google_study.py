"""Dataset of the Section 4.1 ranking study.

The paper ran more than 100 Google queries, keeping the first 20 blogs and
forums of each (over 2000 analysed sites in total), then re-ranked the
results with the quality model.  The offline equivalent is a corpus of
synthetic blogs/forums large enough that every query of the workload can
return 20 topically matching sources, plus the query workload itself and a
popularity-dominated search engine indexed over the corpus.

Two deliberate choices of the default corpus spec encode documented facts
rather than free parameters:

* the engagement latent is *negatively* correlated with the popularity
  latent (very large sites tend to have proportionally shallower
  participation), which is what lets the factor-analysis experiment
  reproduce the negative participation/time regressions of Table 3;
* popularity is heavy tailed, so traffic-derived figures span several
  orders of magnitude as real panel data does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.domain import DomainOfInterest
from repro.search.engine import SearchEngine, SearchEngineConfig
from repro.search.queries import QueryWorkload, QueryWorkloadSpec
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import CorpusGenerator, CorpusSpec
from repro.sources.models import SourceType
from repro.sources.text import GENERIC_CATEGORIES
from repro.sources.webstats import AlexaLikeService, FeedburnerLikeService

__all__ = ["GoogleStudySpec", "GoogleStudyDataset", "build_google_study"]


@dataclass(frozen=True)
class GoogleStudySpec:
    """Configuration of the ranking-study dataset.

    The defaults are sized for fast experimentation (a few hundred sites);
    ``paper_scale()`` returns a spec matching the paper's magnitude
    (100 queries x top-20 over a corpus large enough for ~2000 result
    slots).
    """

    source_count: int = 240
    query_count: int = 60
    results_per_query: int = 20
    seed: int = 17
    categories: tuple[str, ...] = GENERIC_CATEGORIES
    discussion_budget: int = 18
    user_budget: int = 25
    engagement_popularity_correlation: float = -0.35
    stickiness_popularity_correlation: float = -0.35
    static_weight: float = 0.65
    topical_weight: float = 0.35

    @classmethod
    def paper_scale(cls) -> "GoogleStudySpec":
        """Spec matching the paper's reported scale (slower to build)."""
        return cls(source_count=1200, query_count=100, results_per_query=20)

    def corpus_spec(self) -> CorpusSpec:
        """The corpus-generator spec implied by this study spec."""
        return CorpusSpec(
            source_count=self.source_count,
            seed=self.seed,
            source_types=(SourceType.BLOG, SourceType.FORUM),
            category_pool=self.categories,
            discussion_budget=self.discussion_budget,
            user_budget=self.user_budget,
            engagement_popularity_correlation=self.engagement_popularity_correlation,
            stickiness_popularity_correlation=self.stickiness_popularity_correlation,
            name_prefix="site",
        )

    def workload_spec(self) -> QueryWorkloadSpec:
        """The query-workload spec implied by this study spec."""
        return QueryWorkloadSpec(
            query_count=self.query_count,
            seed=self.seed + 1,
            categories=self.categories,
            results_per_query=self.results_per_query,
        )

    def engine_config(self) -> SearchEngineConfig:
        """The search-engine ranking configuration implied by this spec."""
        return SearchEngineConfig(
            static_weight=self.static_weight, topical_weight=self.topical_weight
        )


@dataclass
class GoogleStudyDataset:
    """The materialised ranking-study dataset."""

    spec: GoogleStudySpec
    corpus: SourceCorpus
    workload: QueryWorkload
    engine: SearchEngine
    domain: DomainOfInterest
    alexa: AlexaLikeService
    feedburner: FeedburnerLikeService

    @property
    def site_count(self) -> int:
        """Number of sites in the corpus."""
        return len(self.corpus)


def build_google_study(spec: Optional[GoogleStudySpec] = None) -> GoogleStudyDataset:
    """Build the ranking-study dataset from ``spec`` (or the default)."""
    spec = spec or GoogleStudySpec()
    corpus = CorpusGenerator(spec.corpus_spec()).generate()
    alexa = AlexaLikeService(seed=spec.seed)
    feedburner = FeedburnerLikeService(seed=spec.seed)
    engine = SearchEngine(corpus, panel=alexa, config=spec.engine_config())
    workload = QueryWorkload(spec.workload_spec())
    domain = DomainOfInterest(categories=spec.categories, name="general-web")
    return GoogleStudyDataset(
        spec=spec,
        corpus=corpus,
        workload=workload,
        engine=engine,
        domain=domain,
        alexa=alexa,
        feedburner=feedburner,
    )
