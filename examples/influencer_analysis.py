#!/usr/bin/env python3
"""Contributor quality and influencer detection on a microblog community.

The example builds a Twitter-like community, evaluates the Table 2
contributor quality model, shows the class-level differences of Table 4
(people vs. brand vs. news accounts) and detects influencers by combining
absolute activity with relative (per-contribution) response — the paper's
recipe for resisting spammers and bots.

Run with::

    python examples/influencer_analysis.py
"""

from __future__ import annotations

from repro.core.contributor_quality import ContributorQualityModel
from repro.core.domain import DomainOfInterest
from repro.core.filtering import InfluencerDetector
from repro.datasets.london_twitter import LondonTwitterSpec, build_london_twitter
from repro.stats.anova import bonferroni_pairwise


def main() -> None:
    dataset = build_london_twitter(LondonTwitterSpec(account_count=300, seed=23))
    print(f"Community: {len(dataset)} influential accounts "
          f"(classes: {dataset.class_sizes()})\n")

    # Class-level differences (the Table 4 story).
    print("Class-level paired comparisons (Bonferroni-adjusted):")
    for measure in ("interactions", "mentions", "retweets"):
        groups = dataset.measure_groups(measure)
        comparisons = bonferroni_pairwise(
            groups, pairs=[("person", "brand"), ("person", "news"), ("news", "brand")]
        )
        cells = ", ".join(
            f"{item.first}-{item.second}: {item.sign} (p={item.p_value:.3f})"
            for item in comparisons
        )
        print(f"  {measure:<13} {cells}")

    # Contributor quality + influencer detection on the generic source view.
    source = dataset.community.to_source("london-microblog")
    domain = DomainOfInterest(
        categories=("news", "lifestyle", "sports", "music", "travel"), name="london"
    )
    model = ContributorQualityModel(domain)
    detector = InfluencerDetector(model, absolute_weight=0.5)
    influencers = detector.detect(source, top=10)

    print("\nTop influencers (absolute + relative blend):")
    print(f"{'user':<22} {'influence':>9} {'activity':>9} {'efficiency':>11}")
    for assessment in influencers:
        print(
            f"{assessment.user_id:<22} {detector.score(assessment):9.3f} "
            f"{assessment.absolute_activity:9.3f} {assessment.relative_efficiency:11.3f}"
        )

    print("\nAccounts with huge volume but negligible per-tweet response do not")
    print("qualify: the blend of absolute and relative measures filters out the")
    print("bot/spammer signature, as argued in Section 3.2 of the paper.")


if __name__ == "__main__":
    main()
