"""Microblog (Twitter-like) community substrate.

The contributor-quality validation of the paper (Section 4.2, Table 4) runs
on 813 influential London Twitter accounts collected through Twitaholic and
manually labelled as *people*, *brand* or *news*.  Neither Twitaholic nor
the 2011 Twitter API is reachable offline, so this module provides:

* an account/tweet data model rich enough for every Table 2 measure;
* a seeded generator (:class:`MicroblogGenerator`) producing communities
  whose class-conditional statistics follow the behaviour documented by the
  paper and by Cha et al. (ICWSM 2010): news sources dominate retweet
  volume, people dominate mention volume, brands generate fewer
  interactions, volumes span roughly four orders of magnitude, and relative
  (per-tweet) measures are far noisier than absolute ones;
* :class:`TwitaholicLikeService`, which ranks accounts the way the
  Twitaholic leaderboard did (by audience and activity) and returns the top
  *N* for a location;
* a converter from a community to a generic
  :class:`~repro.sources.models.Source` so the same quality machinery and
  mashup data services can consume microblog content.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from repro.errors import ConfigurationError, UnknownUserError
from repro.sources.text import TextGenerator, default_vocabularies
from repro.sources.models import (
    AccountKind,
    Discussion,
    Interaction,
    InteractionType,
    Post,
    Source,
    SourceType,
    UserProfile,
)

__all__ = [
    "MicroblogAccount",
    "Tweet",
    "MicroblogCommunity",
    "ClassProfile",
    "MicroblogSpec",
    "MicroblogGenerator",
    "TwitaholicLikeService",
    "AccountActivity",
]


@dataclass
class MicroblogAccount:
    """A microblog account (one row of the Twitaholic-style dataset)."""

    account_id: str
    handle: str
    kind: AccountKind
    location: str = "London"
    registered_at: float = 0.0
    followers: int = 0
    following: int = 0

    def to_profile(self) -> UserProfile:
        """Convert to the generic :class:`UserProfile` used by sources."""
        return UserProfile(
            user_id=self.account_id,
            name=self.handle,
            registered_at=self.registered_at,
            location=self.location,
            account_kind=self.kind,
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "account_id": self.account_id,
            "handle": self.handle,
            "kind": self.kind.value,
            "location": self.location,
            "registered_at": self.registered_at,
            "followers": self.followers,
            "following": self.following,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MicroblogAccount":
        """Rebuild an account serialised with :meth:`to_dict`."""
        return cls(
            account_id=payload["account_id"],
            handle=payload["handle"],
            kind=AccountKind(payload["kind"]),
            location=payload.get("location", "London"),
            registered_at=float(payload.get("registered_at", 0.0)),
            followers=int(payload.get("followers", 0)),
            following=int(payload.get("following", 0)),
        )


@dataclass
class Tweet:
    """A single microblog message."""

    tweet_id: str
    author_id: str
    day: float
    text: str = ""
    category: Optional[str] = None
    tags: tuple[str, ...] = ()
    mentions: tuple[str, ...] = ()
    retweet_of: Optional[str] = None
    location: Optional[str] = None
    read_count: int = 0

    @property
    def is_retweet(self) -> bool:
        """True when the message re-shares another account's tweet."""
        return self.retweet_of is not None

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "tweet_id": self.tweet_id,
            "author_id": self.author_id,
            "day": self.day,
            "text": self.text,
            "category": self.category,
            "tags": list(self.tags),
            "mentions": list(self.mentions),
            "retweet_of": self.retweet_of,
            "location": self.location,
            "read_count": self.read_count,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Tweet":
        """Rebuild a tweet serialised with :meth:`to_dict`."""
        return cls(
            tweet_id=payload["tweet_id"],
            author_id=payload["author_id"],
            day=float(payload["day"]),
            text=payload.get("text", ""),
            category=payload.get("category"),
            tags=tuple(payload.get("tags", ())),
            mentions=tuple(payload.get("mentions", ())),
            retweet_of=payload.get("retweet_of"),
            location=payload.get("location"),
            read_count=int(payload.get("read_count", 0)),
        )


@dataclass(frozen=True)
class AccountActivity:
    """The five observables Table 4 compares across account classes.

    ``interactions`` is the number of generated tweets (including retweets),
    which is how the paper instantiates the activity attribute on Twitter;
    absolute mentions/retweets are the interactions *received*; relative
    values are averaged per authored tweet.
    """

    account_id: str
    kind: AccountKind
    interactions: int
    mentions_received: int
    retweets_received: int

    @property
    def relative_mentions(self) -> float:
        """Average number of mentions (replies) received per authored tweet."""
        if self.interactions == 0:
            return 0.0
        return self.mentions_received / self.interactions

    @property
    def relative_retweets(self) -> float:
        """Average number of retweets (feedback) received per authored tweet."""
        if self.interactions == 0:
            return 0.0
        return self.retweets_received / self.interactions

    def measure(self, name: str) -> float:
        """Return one of the five observables by name.

        Valid names: ``interactions``, ``mentions``, ``retweets``,
        ``relative_mentions``, ``relative_retweets``.
        """
        if name == "interactions":
            return float(self.interactions)
        if name == "mentions":
            return float(self.mentions_received)
        if name == "retweets":
            return float(self.retweets_received)
        if name == "relative_mentions":
            return self.relative_mentions
        if name == "relative_retweets":
            return self.relative_retweets
        raise KeyError(f"unknown activity measure: {name!r}")


class MicroblogCommunity:
    """A set of accounts plus the tweets and interactions among them."""

    def __init__(self, name: str = "microblog", observation_day: float = 365.0) -> None:
        self.name = name
        self.observation_day = observation_day
        self._accounts: dict[str, MicroblogAccount] = {}
        self._tweets: list[Tweet] = []
        self._tweets_by_author: dict[str, list[Tweet]] = {}
        self._mentions_received: dict[str, int] = {}
        self._retweets_received: dict[str, int] = {}

    # -- accessors ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._accounts)

    def __iter__(self) -> Iterator[MicroblogAccount]:
        return iter(self._accounts.values())

    def accounts(self) -> list[MicroblogAccount]:
        """Return every account in insertion order."""
        return list(self._accounts.values())

    def account(self, account_id: str) -> MicroblogAccount:
        """Return the account with the given identifier."""
        try:
            return self._accounts[account_id]
        except KeyError as exc:
            raise UnknownUserError(account_id) from exc

    def tweets(self) -> list[Tweet]:
        """Return every tweet."""
        return list(self._tweets)

    def tweets_by(self, account_id: str) -> list[Tweet]:
        """Return the tweets authored by ``account_id``."""
        return list(self._tweets_by_author.get(account_id, ()))

    def mentions_received(self, account_id: str) -> int:
        """Number of mentions/replies received by ``account_id``."""
        return self._mentions_received.get(account_id, 0)

    def retweets_received(self, account_id: str) -> int:
        """Number of retweets received by ``account_id``."""
        return self._retweets_received.get(account_id, 0)

    def accounts_of_kind(self, kind: AccountKind) -> list[MicroblogAccount]:
        """Return the accounts labelled with ``kind``."""
        return [account for account in self if account.kind == kind]

    # -- mutation ------------------------------------------------------------------

    def add_account(self, account: MicroblogAccount) -> None:
        """Register an account (overwrites an existing one with the same id)."""
        self._accounts[account.account_id] = account

    def add_tweet(self, tweet: Tweet) -> None:
        """Record a tweet and update the received-interaction counters."""
        if tweet.author_id not in self._accounts:
            raise UnknownUserError(tweet.author_id)
        self._tweets.append(tweet)
        self._tweets_by_author.setdefault(tweet.author_id, []).append(tweet)
        for mentioned in tweet.mentions:
            if mentioned != tweet.author_id:
                self._mentions_received[mentioned] = (
                    self._mentions_received.get(mentioned, 0) + 1
                )
        if tweet.retweet_of is not None and tweet.retweet_of != tweet.author_id:
            self._retweets_received[tweet.retweet_of] = (
                self._retweets_received.get(tweet.retweet_of, 0) + 1
            )

    def record_received(
        self, account_id: str, mentions: int = 0, retweets: int = 0
    ) -> None:
        """Record interactions received from outside the modelled community.

        The Twitaholic dataset counts mentions/retweets coming from the whole
        of Twitter, not only from the 813 accounts; generators use this hook
        to add that externally-originated volume without materialising
        millions of tweets.
        """
        if account_id not in self._accounts:
            raise UnknownUserError(account_id)
        if mentions:
            self._mentions_received[account_id] = (
                self._mentions_received.get(account_id, 0) + int(mentions)
            )
        if retweets:
            self._retweets_received[account_id] = (
                self._retweets_received.get(account_id, 0) + int(retweets)
            )

    # -- analysis ------------------------------------------------------------------

    def activity(self, account_id: str) -> AccountActivity:
        """Return the Table 4 observables for one account."""
        account = self.account(account_id)
        return AccountActivity(
            account_id=account_id,
            kind=account.kind,
            interactions=len(self._tweets_by_author.get(account_id, ())),
            mentions_received=self.mentions_received(account_id),
            retweets_received=self.retweets_received(account_id),
        )

    def activities(self) -> list[AccountActivity]:
        """Return the Table 4 observables for every account."""
        return [self.activity(account.account_id) for account in self]

    # -- conversion -----------------------------------------------------------------

    def to_source(self, source_id: Optional[str] = None) -> Source:
        """Expose the community as a generic :class:`Source`.

        Each account's timeline becomes a discussion whose opener is the
        account's first tweet; mentions and retweets become interactions, so
        the generic contributor measures (Table 2) and the mashup data
        services can run unchanged on microblog content.
        """
        source = Source(
            source_id=source_id or f"{self.name}",
            name=self.name,
            url=f"https://{self.name}.example.org",
            source_type=SourceType.MICROBLOG,
            observation_day=self.observation_day,
        )
        for account in self:
            source.add_user(account.to_profile())

        for account in self:
            timeline = self.tweets_by(account.account_id)
            if not timeline:
                continue
            timeline = sorted(timeline, key=lambda tweet: tweet.day)
            discussion = Discussion(
                discussion_id=f"{source.source_id}-{account.account_id}-timeline",
                category=timeline[0].category or "timeline",
                title=f"Timeline of {account.handle}",
                opened_at=timeline[0].day,
            )
            for tweet in timeline:
                discussion.posts.append(
                    Post(
                        post_id=tweet.tweet_id,
                        author_id=tweet.author_id,
                        day=tweet.day,
                        text=tweet.text,
                        category=tweet.category,
                        tags=tweet.tags,
                        location=tweet.location,
                        read_count=tweet.read_count,
                    )
                )
            source.add_discussion(discussion)

        for tweet in self._tweets:
            for mentioned in tweet.mentions:
                if mentioned == tweet.author_id:
                    continue
                source.add_interaction(
                    Interaction(
                        interaction_type=InteractionType.MENTION,
                        actor_id=tweet.author_id,
                        target_user_id=mentioned,
                        day=tweet.day,
                        post_id=tweet.tweet_id,
                    )
                )
            if tweet.retweet_of is not None and tweet.retweet_of != tweet.author_id:
                source.add_interaction(
                    Interaction(
                        interaction_type=InteractionType.RETWEET,
                        actor_id=tweet.author_id,
                        target_user_id=tweet.retweet_of,
                        day=tweet.day,
                        post_id=tweet.tweet_id,
                    )
                )
        return source

    # -- serialisation ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "observation_day": self.observation_day,
            "accounts": [account.to_dict() for account in self],
            "tweets": [tweet.to_dict() for tweet in self._tweets],
            "external_mentions": dict(self._mentions_received),
            "external_retweets": dict(self._retweets_received),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MicroblogCommunity":
        """Rebuild a community serialised with :meth:`to_dict`.

        Received-interaction counters are restored verbatim (they already
        include the contribution of the serialised tweets).
        """
        community = cls(
            name=payload.get("name", "microblog"),
            observation_day=float(payload.get("observation_day", 365.0)),
        )
        for item in payload.get("accounts", ()):
            community.add_account(MicroblogAccount.from_dict(item))
        for item in payload.get("tweets", ()):
            tweet = Tweet.from_dict(item)
            community._tweets.append(tweet)
            community._tweets_by_author.setdefault(tweet.author_id, []).append(tweet)
        community._mentions_received = {
            key: int(value) for key, value in payload.get("external_mentions", {}).items()
        }
        community._retweets_received = {
            key: int(value) for key, value in payload.get("external_retweets", {}).items()
        }
        return community


@dataclass(frozen=True)
class ClassProfile:
    """Behavioural profile of one account class (people / brand / news).

    The means are the medians of log-normal distributions; ``sigma`` values
    control the spread (a sigma of ~1.0 already spans about two orders of
    magnitude between the 2.5th and 97.5th percentile, so the three classes
    together cover the roughly four orders of magnitude reported by the
    paper).
    """

    kind: AccountKind
    share: float
    tweet_volume: float
    mention_volume: float
    retweet_volume: float
    follower_volume: float = 50_000.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` when the profile is invalid."""
        if not 0.0 < self.share <= 1.0:
            raise ConfigurationError("class share must be in (0, 1]")
        for name in ("tweet_volume", "mention_volume", "retweet_volume", "follower_volume"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


#: Default class profiles, tuned so the generated data reproduces the shape
#: of Table 4: people and news tweet comparably and far more than brands,
#: people receive the most mentions, news receive by far the most retweets.
DEFAULT_CLASS_PROFILES: tuple[ClassProfile, ...] = (
    ClassProfile(
        kind=AccountKind.PERSON,
        share=0.45,
        tweet_volume=420.0,
        mention_volume=950.0,
        retweet_volume=420.0,
        follower_volume=80_000.0,
    ),
    ClassProfile(
        kind=AccountKind.NEWS,
        share=0.25,
        tweet_volume=400.0,
        mention_volume=380.0,
        retweet_volume=2100.0,
        follower_volume=150_000.0,
    ),
    ClassProfile(
        kind=AccountKind.BRAND,
        share=0.30,
        tweet_volume=130.0,
        mention_volume=300.0,
        retweet_volume=380.0,
        follower_volume=60_000.0,
    ),
)


@dataclass(frozen=True)
class MicroblogSpec:
    """Configuration for the microblog community generator."""

    account_count: int = 813
    seed: int = 23
    location: str = "London"
    observation_day: float = 365.0
    class_profiles: tuple[ClassProfile, ...] = DEFAULT_CLASS_PROFILES
    volume_sigma: float = 0.95
    reaction_sigma: float = 1.35
    visibility_sigma: float = 1.05
    categories: tuple[str, ...] = ("news", "lifestyle", "sports", "music", "travel")
    sample_tweet_count: int = 12

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the spec is inconsistent."""
        if self.account_count < 3:
            raise ConfigurationError("account_count must be >= 3")
        if not self.class_profiles:
            raise ConfigurationError("class_profiles must not be empty")
        total_share = sum(profile.share for profile in self.class_profiles)
        if not math.isclose(total_share, 1.0, rel_tol=0.05):
            raise ConfigurationError("class shares must sum to ~1.0")
        for profile in self.class_profiles:
            profile.validate()
        for name in ("volume_sigma", "reaction_sigma", "visibility_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.sample_tweet_count < 1:
            raise ConfigurationError("sample_tweet_count must be >= 1")


class MicroblogGenerator:
    """Generate a :class:`MicroblogCommunity` from a :class:`MicroblogSpec`.

    Interaction volumes are generated per account: the number of authored
    tweets and the mention/retweet counts received are drawn from class-
    conditional log-normal distributions modulated by a per-account
    *visibility* factor shared by mentions and retweets.  A small sample of
    concrete tweets is materialised per account (enough for content-based
    components); the remaining volume is recorded through the community's
    external-interaction counters, mirroring the fact that Twitaholic counts
    reactions coming from the whole of Twitter.
    """

    def __init__(self, spec: MicroblogSpec = MicroblogSpec()) -> None:
        spec.validate()
        self._spec = spec
        self._rng = random.Random(spec.seed)
        self._text = TextGenerator(
            self._rng, default_vocabularies(sorted(set(spec.categories)))
        )

    @property
    def spec(self) -> MicroblogSpec:
        """Return the spec this generator was built from."""
        return self._spec

    def _lognormal(self, median: float, sigma: float) -> float:
        """Draw a log-normal value with the given median."""
        if median <= 0:
            return 0.0
        return self._rng.lognormvariate(math.log(median), sigma)

    def _assign_kinds(self) -> list[ClassProfile]:
        """Assign a class profile to every account index."""
        spec = self._spec
        assignments: list[ClassProfile] = []
        for profile in spec.class_profiles:
            count = int(round(profile.share * spec.account_count))
            assignments.extend([profile] * count)
        # Fix rounding drift by padding / trimming with the first profile.
        while len(assignments) < spec.account_count:
            assignments.append(spec.class_profiles[0])
        del assignments[spec.account_count:]
        self._rng.shuffle(assignments)
        return assignments

    def generate(self) -> MicroblogCommunity:
        """Generate the community."""
        spec = self._spec
        community = MicroblogCommunity(
            name=f"microblog-{spec.location.lower()}",
            observation_day=spec.observation_day,
        )
        assignments = self._assign_kinds()

        for index, profile in enumerate(assignments):
            account = MicroblogAccount(
                account_id=f"acct-{index:04d}",
                handle=f"@{profile.kind.value}_{index:04d}",
                kind=profile.kind,
                location=spec.location,
                registered_at=self._rng.uniform(0.0, spec.observation_day * 0.8),
                followers=int(self._lognormal(profile.follower_volume, 1.0)),
                following=int(self._lognormal(900.0, 0.8)),
            )
            community.add_account(account)
            self._populate_account(community, account, profile)
        return community

    def _populate_account(
        self,
        community: MicroblogCommunity,
        account: MicroblogAccount,
        profile: ClassProfile,
    ) -> None:
        spec = self._spec
        visibility = self._lognormal(1.0, spec.visibility_sigma)

        tweet_total = max(1, int(round(self._lognormal(profile.tweet_volume, spec.volume_sigma))))
        mentions_total = int(round(
            visibility * self._lognormal(profile.mention_volume, spec.reaction_sigma)
        ))
        retweets_total = int(round(
            visibility * self._lognormal(profile.retweet_volume, spec.reaction_sigma)
        ))

        # Materialise a small sample of concrete tweets for content analysis.
        # Each account has a latent stance so its opinionated tweets lean
        # consistently positive or negative.
        stance = self._rng.uniform(-0.8, 0.8)
        sample_count = min(spec.sample_tweet_count, tweet_total)
        active_span = max(1.0, spec.observation_day - account.registered_at)
        for index in range(sample_count):
            day = account.registered_at + self._rng.uniform(0.0, active_span)
            category = self._rng.choice(list(spec.categories))
            sentiment = max(-1.0, min(1.0, stance + self._rng.uniform(-0.4, 0.4)))
            community.add_tweet(
                Tweet(
                    tweet_id=f"{account.account_id}-t{index:05d}",
                    author_id=account.account_id,
                    day=day,
                    text=self._text.sentence(category, sentiment=sentiment, length=14),
                    category=category,
                    tags=self._text.tags(category, 2),
                    location=spec.location,
                    read_count=int(self._lognormal(200.0, 1.0)),
                )
            )
        # The remaining authored volume and the externally-originated
        # reactions are recorded as counters (they would otherwise require
        # materialising millions of tweets).
        remaining_tweets = tweet_total - sample_count
        if remaining_tweets > 0:
            self._record_bulk_tweets(community, account, remaining_tweets)
        community.record_received(
            account.account_id, mentions=mentions_total, retweets=retweets_total
        )

    def _record_bulk_tweets(
        self, community: MicroblogCommunity, account: MicroblogAccount, count: int
    ) -> None:
        """Record ``count`` additional authored tweets as lightweight entries."""
        spec = self._spec
        timeline = community._tweets_by_author.setdefault(account.account_id, [])
        base_index = len(timeline)
        active_span = max(1.0, spec.observation_day - account.registered_at)
        for offset in range(count):
            day = account.registered_at + (offset + 0.5) * active_span / max(1, count)
            tweet = Tweet(
                tweet_id=f"{account.account_id}-b{base_index + offset:06d}",
                author_id=account.account_id,
                day=day,
                text="",
                category=None,
                location=spec.location,
            )
            community._tweets.append(tweet)
            timeline.append(tweet)


class TwitaholicLikeService:
    """Rank accounts the way the Twitaholic leaderboard did.

    Twitaholic ranked accounts per location by a blend of audience size and
    activity.  The service exposes the top-*N* accounts for a location,
    which is how the paper obtained its 813-account London dataset.
    """

    def __init__(self, community: MicroblogCommunity) -> None:
        self._community = community

    def score(self, account: MicroblogAccount) -> float:
        """Leaderboard score: audience-dominated, activity-adjusted."""
        activity = self._community.activity(account.account_id)
        return (
            math.log1p(account.followers) * 3.0
            + math.log1p(activity.interactions)
            + math.log1p(activity.mentions_received + activity.retweets_received)
        )

    def top_accounts(
        self, count: int, location: Optional[str] = None
    ) -> list[MicroblogAccount]:
        """Return the ``count`` best-ranked accounts, optionally per location."""
        candidates = [
            account
            for account in self._community
            if location is None or account.location == location
        ]
        candidates.sort(key=self.score, reverse=True)
        return candidates[: max(0, count)]
