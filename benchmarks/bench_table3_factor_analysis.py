"""Benchmark E4 — regenerate Table 3 (componentisation + regressions)."""

from __future__ import annotations

from repro.experiments.table3_factor_analysis import Table3Spec, run_table3


def test_table3_factor_analysis(benchmark, google_dataset):
    spec = Table3Spec(study=google_dataset.spec)
    result = benchmark.pedantic(
        run_table3, args=(spec, google_dataset), rounds=1, iterations=1
    )
    print("\n=== Table 3: componentisation of data quality measures ===")
    print(result.to_markdown())
    # The measures must split into the paper's three components and the
    # traffic component must relate positively to the search rank while the
    # participation and time components relate negatively.
    assert result.assignment_purity() >= 0.8
    assert result.relation("traffic").direction == "positive"
    assert result.relation("participation").direction == "negative"
    assert result.relation("time").direction == "negative"
