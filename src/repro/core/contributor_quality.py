"""Contributor quality model (Table 2).

:class:`ContributorQualityModel` assesses individual users of a source (or
of a microblog community exposed as a source): it crawls a per-user
snapshot, computes the Table 2 measures against the Domain of Interest,
normalises them against the community and aggregates them into the same
dimension / attribute / overall structure used for sources.

Like the source model, the contributor model runs as one batched pass:
contributor snapshots are crawled exactly once per (source, user set) —
in a *single shared walk* of the source's discussions and interactions
(:meth:`~repro.sources.crawler.Crawler.crawl_contributors_batched`),
O(D+P+I) instead of the seed's O(U·(D+P+I)) — the normaliser is fitted
once on the whole raw-measure matrix, and the resulting assessments are
cached under a structural fingerprint of the source.

Contexts are maintained *incrementally*: the model registers a mutation
watcher on each assessed source (see
:meth:`~repro.sources.models.Source.watch_mutations`), so repeated
``assess_source`` / ``rank`` calls over an unchanged community are an
O(1) dirty-flag check (cross-checked against the source's
``content_revision``) — no per-read fingerprint computation.  When the
flag fires, the community is re-crawled in one shared walk that is
itself *diff-restricted*: per-discussion fingerprints are diffed against
the cached :class:`~repro.sources.crawler.CommunityWalkCache` and only
the touched threads are re-visited (an explicit ``touch()`` cannot be
localised and forces a full walk).  The normaliser is re-fitted and
users re-scored only when their raw measure vectors actually changed —
and a refit renormalises only the measures whose per-measure fit
signature moved; untouched assessments are reused verbatim.  Growth
through the mutation helpers and announced ``Source.touch()`` edits
raise the flag automatically; pass ``deep=True`` after unannounced
growth that bypasses the helpers, and call
:meth:`ContributorQualityModel.invalidate` only after unannounced
count-preserving in-place mutations.

Refresh is *lazy* by default; for latency-critical serving, register the
model per community with an :class:`repro.serving.EagerRefreshScheduler`
(``scheduler.register_contributor_model(model, source)``), which drives
:meth:`refresh` in the background, filtered to that source's events —
results are bit-identical either way.

The model also exposes the paper's key analytical distinction between
*absolute* interaction volumes (the activity attribute) and *relative*
volumes (interactions per contribution, typical of the relevance
attribute): combining the two identifies users who both generate reactions
and do so efficiently, and penalises the spam/bot pattern of high absolute
activity with negligible relative response.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.core.columnar import columns_from_vectors, ensure_finite_columns
from repro.core.contributor_measures import (
    ContributorMeasurementContext,
    compute_contributor_measures,
)
from repro.core.dimensions import QualityAttribute
from repro.core.domain import DomainOfInterest
from repro.core.measures import MeasureRegistry, contributor_measure_registry
from repro.core.normalization import (
    BenchmarkNormalizer,
    Normalizer,
    collect_reference_values,
    confine_renormalization,
)
from repro.core.scoring import (
    QualityScore,
    WeightingScheme,
    build_quality_score_columns,
    build_quality_scores,
    scores_from_columns,
    uniform_scheme,
)
from repro.errors import AssessmentError
from repro.perf.cache import LRUCache, compose_source_fingerprint, source_fingerprint
from repro.perf.counters import PerfCounters
from repro.serving.rwlock import ReadWriteLock, ordered
from repro.sources.crawler import CommunityWalkCache, ContributorSnapshot, Crawler
from repro.sources.diffing import SourceChangeTracker
from repro.sources.models import Source

__all__ = ["ContributorAssessment", "ContributorQualityModel"]


@dataclass
class ContributorAssessment:
    """Quality assessment of a single contributor."""

    user_id: str
    source_id: str
    score: QualityScore
    snapshot: ContributorSnapshot

    @property
    def overall(self) -> float:
        """Overall weighted-average quality in [0, 1]."""
        return self.score.overall

    @property
    def absolute_activity(self) -> float:
        """Normalised activity-attribute score (absolute interaction volumes)."""
        return self.score.attribute(QualityAttribute.ACTIVITY)

    @property
    def relative_efficiency(self) -> float:
        """Normalised relevance-attribute score (relative interaction volumes)."""
        return self.score.attribute(QualityAttribute.RELEVANCE)

    def influencer_score(self, absolute_weight: float = 0.5) -> float:
        """Blend of absolute and relative scores used for influencer detection.

        The paper argues that combining the two "can also help reduce the
        problems deriving from spammers and bots": an account needs both
        volume and per-contribution response to score high.
        """
        absolute_weight = min(1.0, max(0.0, absolute_weight))
        return (
            absolute_weight * self.absolute_activity
            + (1.0 - absolute_weight) * self.relative_efficiency
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "user_id": self.user_id,
            "source_id": self.source_id,
            "score": self.score.to_dict(),
            "snapshot": self.snapshot.to_dict(),
        }


@dataclass
class _CommunityEntry:
    """Incremental per-(source, user set) state of a contributor model."""

    #: The O(1) staleness tier: a shared
    #: :class:`~repro.sources.diffing.SourceChangeTracker` (dirty flag fed
    #: by the source's mutation watchers, cross-checked against
    #: ``content_revision`` so an announced mutation is detected even when
    #: a read races ahead of the tracker's own watcher — e.g. an eager
    #: serving scheduler refreshing from inside the same announcement).
    tracker: SourceChangeTracker
    fingerprint: tuple
    context: tuple
    fit_token: int
    #: Reusable per-discussion community-walk state (ROADMAP (e)).
    walk: CommunityWalkCache = field(default_factory=CommunityWalkCache)
    #: Per-measure fit signature of the context's normalised matrix
    #: (``Normalizer.fit_signature``); empty means "unknown".
    fit_signature: dict = field(default_factory=dict)


class ContributorQualityModel:
    """Assess and rank the contributors of a source."""

    #: Number of (source, user set) assessment contexts retained per model.
    CONTEXT_CACHE_SIZE = 8

    def __init__(
        self,
        domain: DomainOfInterest,
        registry: Optional[MeasureRegistry] = None,
        scheme: Optional[WeightingScheme] = None,
        normalizer: Optional[Normalizer] = None,
        crawler: Optional[Crawler] = None,
    ) -> None:
        self._domain = domain
        self._registry = registry or contributor_measure_registry()
        self._scheme = scheme or uniform_scheme(self._registry)
        self._normalizer = normalizer or BenchmarkNormalizer(self._registry)
        self._crawler = crawler or Crawler()
        self._contexts = LRUCache(maxsize=self.CONTEXT_CACHE_SIZE)
        #: (id(source), user-id tuple or None) -> incremental state; id keys
        #: are guarded by the weakref inside each entry's tracker.
        self._incremental: dict[tuple[int, Optional[tuple]], _CommunityEntry] = {}
        #: Serialises context builders/patchers (and the shared normaliser
        #: they refit); clean-path reads never take it.
        self._refresh_mutex = threading.RLock()
        #: Reader/writer lock: reads take the shared side around grabbing
        #: the current context; patchers publish under the exclusive side
        #: in O(1) (the context itself is built aside).
        self._rwlock = ReadWriteLock()
        self.counters = PerfCounters()

    @property
    def domain(self) -> DomainOfInterest:
        """The Domain of Interest assessments are computed against."""
        return self._domain

    @property
    def registry(self) -> MeasureRegistry:
        """The measure registry in use."""
        return self._registry

    @property
    def rwlock(self) -> ReadWriteLock:
        """The model's reader/writer lock (shared with its serving queue)."""
        return self._rwlock

    @property
    def refresh_mutex(self) -> threading.RLock:
        """The gate serialising context builds (shared with the scheduler)."""
        return self._refresh_mutex

    def invalidate(self) -> None:
        """Drop every cached assessment (see the module docstring for when)."""
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._contexts.invalidate()
            self._incremental.clear()

    # -- raw measures ------------------------------------------------------------------

    def raw_measures(
        self, source: Source, user_ids: Optional[Iterable[str]] = None
    ) -> dict[str, dict[str, float]]:
        """Raw Table 2 measure vectors for the selected contributors.

        The returned mapping is a copy of the cached matrix; callers may
        mutate it freely.
        """
        _, vectors, _ = self._context(source, user_ids)
        return {user_id: dict(vector) for user_id, vector in vectors.items()}

    def refresh(self, source: Source, deep: bool = False) -> None:
        """Bring the cached context for ``source`` up to date now.

        Equivalent to the refresh every read performs implicitly;
        ``deep=True`` forces a fingerprint probe, catching *unannounced*
        in-place growth (objects appended directly into the source's
        internal lists, bypassing the ``Source`` mutation helpers).
        """
        self._context(source, None, deep=deep)

    # -- snapshot export / restore (persistence layer) ----------------------------------

    def export_community_state(
        self, source: Source, user_ids: Optional[Iterable[str]] = None
    ) -> dict[str, Any]:
        """Serialise the community context for ``source`` to a JSON dict.

        Refreshes first.  Fingerprints are not exported whole (they embed
        ``id()``); instead the payload carries the one O(discussions)
        fingerprint field — the post total — so
        :meth:`restore_community_state` can recompose the fingerprint in
        O(1) via :func:`~repro.perf.cache.compose_source_fingerprint`.
        """
        resolved_ids = self._resolve_user_ids(source, user_ids)
        snapshots, raw_vectors, assessments = self._context(source, user_ids)
        return {
            "source_id": source.source_id,
            "user_ids": list(resolved_ids),
            "post_total": sum(
                len(discussion.posts) for discussion in source.discussions
            ),
            "snapshots": {
                user_id: snapshot.to_dict() for user_id, snapshot in snapshots.items()
            },
            "raw_vectors": {
                user_id: dict(vector) for user_id, vector in raw_vectors.items()
            },
            "scores": {
                user_id: assessment.score.to_dict()
                for user_id, assessment in assessments.items()
            },
        }

    def restore_community_state(
        self, source: Source, payload: Mapping[str, Any]
    ) -> None:
        """Install an exported community context for the recovered ``source``.

        Seeds the context cache keyed by the source's fingerprint —
        recomposed in O(1) from the persisted ``post_total`` hint when
        present; the next read serves it without crawling and — via
        the cached-context install path, which pins ``fit_token = -1`` —
        the first post-restore mutation re-fits the shared normaliser
        from the restored raw vectors before patching, so every later
        assessment stays bit-identical to a cold rebuild's.

        Raises :class:`~repro.errors.CorruptSnapshotError` when the
        payload is malformed or belongs to a different source; recovery
        degrades to a cold build on that error.
        """
        from repro.errors import CorruptSnapshotError

        try:
            if payload["source_id"] != source.source_id:
                raise CorruptSnapshotError(
                    f"community state is for source {payload['source_id']!r},"
                    f" not {source.source_id!r}"
                )
            user_ids = tuple(payload["user_ids"])
            snapshots = {
                user_id: ContributorSnapshot.from_dict(payload["snapshots"][user_id])
                for user_id in user_ids
            }
            raw_vectors = {
                user_id: dict(payload["raw_vectors"][user_id]) for user_id in user_ids
            }
            assessments = {
                user_id: ContributorAssessment(
                    user_id=user_id,
                    source_id=source.source_id,
                    score=QualityScore.from_dict(payload["scores"][user_id]),
                    snapshot=snapshots[user_id],
                )
                for user_id in user_ids
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptSnapshotError(f"invalid community state: {exc!r}") from exc
        context = (snapshots, raw_vectors, assessments)
        post_total = payload.get("post_total")
        if isinstance(post_total, int):
            fingerprint = compose_source_fingerprint(source, post_total)
        else:  # pre-hint snapshot formats: fall back to the O(content) scan
            fingerprint = source_fingerprint(source)
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._contexts.put((fingerprint, user_ids), (source, context))

    # -- batched assessment pass --------------------------------------------------------

    def _resolve_user_ids(
        self, source: Source, user_ids: Optional[Iterable[str]]
    ) -> tuple[str, ...]:
        if user_ids is None:
            return tuple(sorted(source.contributors()))
        return tuple(user_ids)

    def _fit_normalizer(self, reference_values: Mapping[str, Any]) -> None:
        """Fit the shared normaliser (its ``fit_count`` advances itself)."""
        self._normalizer.fit(reference_values)
        self.counters.increment("normalizer_fits")

    def _fit_normalizer_columns(self, reference_columns: Mapping[str, Any]) -> None:
        """Columnar fit (bit-identical to :meth:`_fit_normalizer`)."""
        self._normalizer.fit_columns(reference_columns)
        self.counters.increment("normalizer_fits")

    def _build_context(
        self,
        source: Source,
        resolved_ids: tuple[str, ...],
        walk: Optional[CommunityWalkCache] = None,
    ) -> tuple[
        dict[str, ContributorSnapshot],
        dict[str, dict[str, float]],
        dict[str, ContributorAssessment],
    ]:
        """Crawl once (one shared walk), measure once, fit once, score all."""
        self.counters.increment("context_builds")
        snapshots = self._crawler.crawl_contributors_batched(
            source, resolved_ids, walk=walk
        )
        if not snapshots:
            raise AssessmentError(
                f"source {source.source_id!r} has no contributors to assess"
            )
        raw_vectors: dict[str, dict[str, float]] = {}
        for user_id, snapshot in snapshots.items():
            context = ContributorMeasurementContext(
                snapshot=snapshot, domain=self._domain
            )
            raw_vectors[user_id] = compute_contributor_measures(
                context, registry=self._registry
            )
        # Columnar build: fit, normalisation and scoring run as whole-column
        # kernels (communities are usually small, but a first assessment of
        # a large one — or a post-restore cold build — is the same O(U·M)
        # Python loop the source model had); bit-identical to the scalar
        # path, which the patcher still uses for its per-user confinement.
        names, _ = self._registry.column_layout()
        user_ids, measures, raw_columns = columns_from_vectors(raw_vectors, names)
        ensure_finite_columns(raw_columns)
        self._fit_normalizer_columns(raw_columns)
        normalized = self._normalizer.normalize_columns(raw_columns)
        overall, dimension_scores, attribute_scores = build_quality_score_columns(
            user_ids, measures, normalized, self._registry, self._scheme
        )
        scores = scores_from_columns(
            user_ids,
            measures,
            raw_columns,
            normalized,
            overall,
            dimension_scores,
            attribute_scores,
            self._scheme.name,
        )
        assessments = {
            user_id: ContributorAssessment(
                user_id=user_id,
                source_id=source.source_id,
                score=scores[user_id],
                snapshot=snapshots[user_id],
            )
            for user_id in user_ids
        }
        return snapshots, raw_vectors, assessments

    def _patch_community(
        self,
        entry: _CommunityEntry,
        source: Source,
        resolved_ids: tuple[str, ...],
    ) -> tuple[tuple, int, dict]:
        """Re-derive the community context, reusing everything unchanged.

        The community is re-crawled in one shared walk — and the walk
        itself is *diff-restricted* (ROADMAP (e)): the entry's
        :class:`~repro.sources.crawler.CommunityWalkCache` lets the crawler
        re-visit only the discussions whose per-discussion fingerprint
        moved, falling back to a full walk only after an explicit
        ``touch()`` (which cannot be localised).  Measures are recomputed
        only for users whose snapshot changed, the normaliser is re-fitted
        only when some raw vector (or the user set) actually changed — and
        a refit renormalises only the measures whose fit signature moved
        (ROADMAP (f)) — and assessments of untouched users are reused
        verbatim, so a ``touch()`` that did not alter any contributor's
        observable activity costs one walk and zero re-scoring.  Returns
        the patched context plus the fit token and fit signature it
        corresponds to.
        """
        previous_snapshots, previous_raw, previous_assessments = entry.context
        snapshots = self._crawler.crawl_contributors_batched(
            source, resolved_ids, walk=entry.walk
        )
        if not snapshots:
            raise AssessmentError(
                f"source {source.source_id!r} has no contributors to assess"
            )
        self.counters.increment("community_recrawls")
        walk_stats = entry.walk.last_stats
        self.counters.increment(
            "discussions_rewalked", walk_stats.get("discussions_walked", 0)
        )
        self.counters.increment(
            "discussions_reused", walk_stats.get("discussions_reused", 0)
        )
        if walk_stats.get("full_walk"):
            self.counters.increment("community_full_walks")
        else:
            self.counters.increment("community_restricted_walks")

        raw_vectors: dict[str, dict[str, float]] = {}
        changed_vector_ids: set[str] = set()
        snapshot_changed: set[str] = set()
        for user_id, snapshot in snapshots.items():
            if snapshot == previous_snapshots.get(user_id):
                # Measures are pure functions of (snapshot, domain): an
                # unchanged snapshot pins the unchanged vector.
                raw_vectors[user_id] = previous_raw[user_id]
            else:
                snapshot_changed.add(user_id)
                context = ContributorMeasurementContext(
                    snapshot=snapshot, domain=self._domain
                )
                raw_vectors[user_id] = compute_contributor_measures(
                    context, registry=self._registry
                )
                self.counters.increment("contributors_remeasured")
            if raw_vectors[user_id] != previous_raw.get(user_id):
                changed_vector_ids.add(user_id)

        population_changed = bool(changed_vector_ids) or list(raw_vectors) != list(
            previous_raw
        )
        needs_refit = population_changed or entry.fit_token != self._normalizer.fit_count
        if needs_refit:
            previous_signature = entry.fit_signature
            self._fit_normalizer(collect_reference_values(raw_vectors.values()))
            fit_signature = self._normalizer.fit_signature()
            # ROADMAP (f): confine renormalisation to measures whose fit
            # actually moved; bit-identical to a full normalize_many pass.
            normalized_vectors = confine_renormalization(
                self._normalizer,
                self.counters,
                raw_vectors,
                changed_vector_ids,
                {
                    user_id: assessment.score.normalized_values
                    for user_id, assessment in previous_assessments.items()
                },
                previous_signature,
                fit_signature,
            )
        else:
            fit_signature = entry.fit_signature
            normalized_vectors = {
                user_id: previous_assessments[user_id].score.normalized_values
                for user_id in raw_vectors
            }

        rebuild_ids = set(changed_vector_ids) | snapshot_changed
        if needs_refit:
            for user_id in raw_vectors:
                if user_id in rebuild_ids:
                    continue
                previous_normalized = previous_assessments[
                    user_id
                ].score.normalized_values
                if normalized_vectors[user_id] != previous_normalized:
                    rebuild_ids.add(user_id)
        rebuild_ids |= {
            user_id for user_id in raw_vectors if user_id not in previous_assessments
        }

        if rebuild_ids:
            scores = build_quality_scores(
                {uid: raw_vectors[uid] for uid in raw_vectors if uid in rebuild_ids},
                {
                    uid: normalized_vectors[uid]
                    for uid in raw_vectors
                    if uid in rebuild_ids
                },
                registry=self._registry,
                scheme=self._scheme,
            )
        else:
            scores = {}
        assessments = {
            user_id: (
                ContributorAssessment(
                    user_id=user_id,
                    source_id=source.source_id,
                    score=scores[user_id],
                    snapshot=snapshots[user_id],
                )
                if user_id in rebuild_ids
                else previous_assessments[user_id]
            )
            for user_id in raw_vectors
        }
        self.counters.increment("context_patches")
        return (
            (snapshots, raw_vectors, assessments),
            (self._normalizer.fit_count if needs_refit else entry.fit_token),
            fit_signature,
        )

    def _prune_incremental(self) -> None:
        dead = [
            key
            for key, entry in self._incremental.items()
            if entry.tracker.source is None
        ]
        for key in dead:
            del self._incremental[key]
        while len(self._incremental) > 2 * self.CONTEXT_CACHE_SIZE:
            self._incremental.pop(next(iter(self._incremental)))

    def _resolve_entry(
        self, entry_key: tuple[int, Optional[tuple]], source: Source, prune: bool
    ) -> Optional[_CommunityEntry]:
        """The live entry for ``entry_key`` (None when absent or id-reused)."""
        entry = self._incremental.get(entry_key)
        if entry is not None and entry.tracker.source is not source:
            if prune:
                del self._incremental[entry_key]  # id(source) reused by a new object
            return None
        return entry

    def _context(
        self, source: Source, user_ids: Optional[Iterable[str]], deep: bool = False
    ) -> tuple[
        dict[str, ContributorSnapshot],
        dict[str, dict[str, float]],
        dict[str, ContributorAssessment],
    ]:
        """Return the (cached, incrementally maintained) community context.

        Thread-safety mirrors the source model: the clean path is a
        snapshot read (contexts are immutable once published), builders
        serialise under ``refresh_mutex``, mark the entry's tracker clean
        with the revision captured *before* the walk, and publish the
        patched context under the write lock in O(1) — so a mutation
        landing mid-walk leaves the entry dirty and the next read patches
        again.
        """
        user_key = None if user_ids is None else tuple(user_ids)
        entry_key = (id(source), user_key)
        entry = self._resolve_entry(entry_key, source, prune=False)
        if entry is not None and not deep and not entry.tracker.dirty:
            self.counters.increment("context_hits")
            self.counters.increment("staleness_flag_hits")
            with self._rwlock.read_lock():
                return entry.context

        with ordered(self._refresh_mutex, "consumer.gate"):
            entry = self._resolve_entry(entry_key, source, prune=True)
            if entry is not None and not deep and not entry.tracker.dirty:
                # Another thread patched while this one waited for the gate.
                self.counters.increment("context_hits")
                self.counters.increment("staleness_flag_hits")
                return entry.context

            # Capture the revision the rebuilt context derives from before
            # reading any content; a mutation landing mid-build bumps the
            # revision past it, leaving the tracker dirty.
            fresh_entry = entry is None
            if fresh_entry:
                tracker = SourceChangeTracker(source)
            else:
                tracker = entry.tracker
                tracker.mark_clean(source.content_revision)
            revision_at_start = tracker.clean_revision

            try:
                fingerprint = source_fingerprint(source)
                if entry is not None and fingerprint == entry.fingerprint:
                    # Announced mutation with no structural effect (or a
                    # deep probe over an unchanged source): the cached
                    # context is still exact.
                    self.counters.increment("context_hits")
                    return entry.context

                resolved_ids = self._resolve_user_ids(source, user_key)
                cache_key = (fingerprint, resolved_ids)
                walk = entry.walk if entry is not None else CommunityWalkCache()
                cached = self._contexts.get(cache_key)
                if cached is not None:
                    self.counters.increment("context_hits")
                    context = cached[1]
                    if entry is not None and entry.context is context:
                        fit_token = entry.fit_token
                        fit_signature = entry.fit_signature
                    else:
                        fit_token = -1  # unknown normaliser: force a re-fit on patch
                        fit_signature = {}
                elif entry is not None:
                    context, fit_token, fit_signature = self._patch_community(
                        entry, source, resolved_ids
                    )
                    self._contexts.put(cache_key, (source, context))
                else:
                    context = self._build_context(source, resolved_ids, walk=walk)
                    fit_token = self._normalizer.fit_count
                    fit_signature = self._normalizer.fit_signature()
                    # The cached entry anchors the source object (first
                    # element): the fingerprint key contains id(source),
                    # which must not be reused while the entry lives.
                    self._contexts.put(cache_key, (source, context))
            except BaseException:
                # The tracker was marked clean above; a failed rebuild
                # must not leave the stale published context looking
                # fresh — restore the staleness so the next read retries.
                if not fresh_entry:
                    tracker.force_dirty()
                raise

            # Publish: the context was built aside, the swap is O(1).
            with self._rwlock.write_lock():
                if fresh_entry:
                    self._prune_incremental()
                    entry = _CommunityEntry(
                        tracker=tracker,
                        fingerprint=fingerprint,
                        context=context,
                        fit_token=fit_token,
                        walk=walk,
                        fit_signature=fit_signature,
                    )
                    self._incremental[entry_key] = entry
                else:
                    entry.fingerprint = fingerprint
                    entry.context = context
                    entry.fit_token = fit_token
                    entry.fit_signature = fit_signature
                tracker.mark_clean(revision_at_start)
            return entry.context

    # -- assessment --------------------------------------------------------------------

    def assess_source(
        self,
        source: Source,
        user_ids: Optional[Iterable[str]] = None,
        deep: bool = False,
    ) -> dict[str, ContributorAssessment]:
        """Assess the contributors of ``source`` (all of them by default).

        ``deep=True`` forces a fingerprint probe instead of trusting the
        O(1) staleness flag (see :meth:`refresh`).

        The returned mapping is a fresh dict, but the
        :class:`ContributorAssessment` objects are shared with the cached
        assessment context: treat them as read-only (mutating one would
        corrupt every later call for the same community).  Use
        :meth:`raw_measures` for a mutable copy of the underlying matrix.
        """
        _, _, assessments = self._context(source, user_ids, deep=deep)
        return dict(assessments)

    def assess(
        self, source: Source, user_id: str, deep: bool = False
    ) -> ContributorAssessment:
        """Assess a single contributor of ``source``.

        The returned :class:`ContributorAssessment` is shared with the
        cached assessment context — treat it as read-only.
        """
        _, _, assessments = self._context(source, None, deep=deep)
        assessment = assessments.get(user_id)
        if assessment is None:
            raise AssessmentError(
                f"user {user_id!r} has no contributions on source {source.source_id!r}"
            )
        return assessment

    # -- ranking ------------------------------------------------------------------------

    def rank(
        self,
        source: Source,
        user_ids: Optional[Iterable[str]] = None,
        by_influence: bool = False,
        absolute_weight: float = 0.5,
        deep: bool = False,
    ) -> list[ContributorAssessment]:
        """Rank contributors by overall quality or by influencer score.

        The returned list is fresh but its elements are shared with the
        cache — treat them as read-only.
        """
        _, _, assessments = self._context(source, user_ids, deep=deep)
        if by_influence:
            key = lambda assessment: (
                -assessment.influencer_score(absolute_weight),
                assessment.user_id,
            )
        else:
            key = lambda assessment: (-assessment.overall, assessment.user_id)
        return sorted(assessments.values(), key=key)
