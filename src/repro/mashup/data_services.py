"""Data services: wrappers exposing source contents to a composition.

The paper defines data services as "wrappers defined on top of the filtered
authoritative sources to enable the access to their contents".  A data
service has no input ports; executing it emits the content items of the
wrapped source (or corpus) on its ``items`` output port.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.errors import MashupError
from repro.mashup.component import Component, ContentItem, Port, items_from_posts
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Source, SourceType
from repro.sources.twitter import MicroblogCommunity

__all__ = [
    "SourceDataService",
    "CorpusDataService",
    "MicroblogDataService",
    "ReviewDataService",
]


class SourceDataService(Component):
    """Expose the posts of a single source as content items."""

    TYPE_NAME = "data.source"
    OUTPUT_PORTS = (Port("items", "content items extracted from the source"),)

    def __init__(self, component_id: str, source: Source, **parameters: Any) -> None:
        super().__init__(component_id, **parameters)
        self._source = source

    @property
    def source(self) -> Source:
        """The wrapped source."""
        return self._source

    def fetch(self) -> list[ContentItem]:
        """Return every post of the wrapped source as content items."""
        items: list[ContentItem] = []
        for discussion in self._source.discussions:
            items.extend(items_from_posts(self._source.source_id, discussion.posts))
        return items

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        return {"items": self.fetch()}

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["source_id"] = self._source.source_id
        description["source_type"] = self._source.source_type.value
        return description


class CorpusDataService(Component):
    """Expose the posts of every source of a corpus as content items.

    ``source_types`` restricts the wrapped corpus to specific kinds of
    sources (e.g. only microblogs, only review sites).
    """

    TYPE_NAME = "data.corpus"
    OUTPUT_PORTS = (Port("items", "content items extracted from the corpus"),)

    def __init__(
        self,
        component_id: str,
        corpus: SourceCorpus,
        source_types: Optional[tuple[SourceType, ...]] = None,
        source_ids: Optional[tuple[str, ...]] = None,
        **parameters: Any,
    ) -> None:
        super().__init__(component_id, **parameters)
        if len(corpus) == 0:
            raise MashupError("a corpus data service needs a non-empty corpus")
        self._corpus = corpus
        self._source_types = tuple(source_types) if source_types else None
        self._source_ids = set(source_ids) if source_ids else None

    @property
    def corpus(self) -> SourceCorpus:
        """The wrapped corpus."""
        return self._corpus

    def _selected_sources(self) -> list[Source]:
        sources = []
        for source in self._corpus:
            if self._source_types and source.source_type not in self._source_types:
                continue
            if self._source_ids is not None and source.source_id not in self._source_ids:
                continue
            sources.append(source)
        return sources

    def fetch(self) -> list[ContentItem]:
        """Return the content items of every selected source."""
        items: list[ContentItem] = []
        for source in self._selected_sources():
            for discussion in source.discussions:
                items.extend(items_from_posts(source.source_id, discussion.posts))
        return items

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        return {"items": self.fetch()}


class MicroblogDataService(SourceDataService):
    """Expose a microblog community (e.g. crawled Twitter data) as items."""

    TYPE_NAME = "data.microblog"

    def __init__(
        self, component_id: str, community: MicroblogCommunity, **parameters: Any
    ) -> None:
        super().__init__(component_id, community.to_source(), **parameters)
        self._community = community

    @property
    def community(self) -> MicroblogCommunity:
        """The wrapped microblog community."""
        return self._community

    def fetch(self) -> list[ContentItem]:
        """Return only the tweets that carry text (content-bearing items)."""
        return [item for item in super().fetch() if item.text]


class ReviewDataService(SourceDataService):
    """Expose a review site (e.g. crawled TripAdvisor-like data) as items."""

    TYPE_NAME = "data.reviews"

    def __init__(self, component_id: str, source: Source, **parameters: Any) -> None:
        if source.source_type != SourceType.REVIEW_SITE:
            raise MashupError(
                "ReviewDataService requires a source of type REVIEW_SITE, got "
                f"{source.source_type.value!r}"
            )
        super().__init__(component_id, source, **parameters)
