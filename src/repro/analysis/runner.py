"""Drive all invariant checkers and fold in suppressions + baseline.

:func:`run_all` is the programmatic entry point (``scripts/run_lint.py``
is the CLI, ``make lint`` the canonical invocation).  It runs every
checker in :data:`CHECKERS` over a repo root, drops per-line
``# lint: allow[...]`` suppressions, splits what remains against the
grandfather baseline, and returns a :class:`LintReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import bus, durability, floats, locks
from repro.analysis.findings import (
    Finding,
    apply_baseline,
    apply_suppressions,
    load_baseline,
)

__all__ = ["CHECKERS", "LintReport", "run_all"]

#: (checker id, check function) — the four invariant checkers.
CHECKERS: tuple[tuple[str, Callable[[Path], list[Finding]]], ...] = (
    (locks.CHECKER, locks.check),
    (floats.CHECKER, floats.check),
    (durability.CHECKER, durability.check),
    (bus.CHECKER, bus.check),
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Findings that fail the run (not suppressed, not baselined).
    fresh: list[Finding] = field(default_factory=list)
    #: Count of findings absorbed by the checked-in baseline.
    grandfathered: int = 0
    #: Count of findings dropped by per-line allow-comments.
    suppressed: int = 0
    #: Checker ids that ran.
    checkers: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.fresh

    def render(self) -> str:
        lines = [finding.render() for finding in self.fresh]
        summary = (
            f"{len(self.fresh)} finding(s), {self.grandfathered} baselined, "
            f"{self.suppressed} suppressed "
            f"({', '.join(self.checkers)})"
        )
        lines.append(("FAIL: " if self.fresh else "OK: ") + summary)
        return "\n".join(lines)


def run_all(
    root: Path | str,
    baseline_path: Optional[Path] = None,
    checkers: Optional[Sequence[tuple[str, Callable[[Path], list[Finding]]]]] = None,
) -> LintReport:
    """Run the checkers over ``root`` and reconcile with the baseline.

    ``baseline_path`` defaults to ``<root>/lint_baseline.json``; a missing
    file is an empty baseline (every finding is fresh).
    """
    root = Path(root)
    selected = tuple(checkers) if checkers is not None else CHECKERS
    findings: list[Finding] = []
    for _, checker in selected:
        findings.extend(checker(root))
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.rule, f.message))
    kept, suppressed = apply_suppressions(findings, root)
    baseline = load_baseline(
        baseline_path if baseline_path is not None else root / "lint_baseline.json"
    )
    fresh, grandfathered = apply_baseline(kept, baseline)
    return LintReport(
        fresh=fresh,
        grandfathered=grandfathered,
        suppressed=suppressed,
        checkers=tuple(name for name, _ in selected),
    )
