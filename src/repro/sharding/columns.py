"""Numpy views over binary wire column blocks (sharded rank path).

Bridges :func:`repro.persistence.codec.encode_column_block` payloads and
the columnar assessment kernels: workers encode their per-shard measure
matrices (and pre-merge candidate slices) as raw ``float64`` buffers, and
the coordinator turns the blobs straight back into numpy columns with
``np.frombuffer`` — a memcpy-free reinterpretation of the exact IEEE-754
bytes the worker held, so the sharded rank path is bit-identical to the
single-process build *by construction*, not by rounding luck.

This is a float kernel file: every numpy operation must be
value-preserving (see ``repro/analysis/floats.py``).  The operations used
here — ``frombuffer``, ``sort``, ``concatenate``, scatter/gather
indexing — move or reorder values without arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.columnar import freeze
from repro.errors import ShardingError
from repro.persistence.codec import decode_column_block, encode_column_block

__all__ = [
    "encode_columns",
    "decode_columns",
    "assemble_columns",
    "merge_sorted_columns",
    "concat_columns",
]


def encode_columns(ids: Sequence[str], columns: Mapping[str, np.ndarray]) -> bytes:
    """Encode ``(row ids, {name: float64 column})`` into a wire blob."""
    return encode_column_block(ids, dict(columns))


def decode_columns(blob: bytes) -> "tuple[list[str], dict[str, np.ndarray]]":
    """Decode a wire blob into ``(row ids, {name: frozen float64 column})``.

    ``np.frombuffer`` reinterprets the little-endian buffer bytes as
    native float64 (the codec already byte-swapped on big-endian hosts),
    so every value carries the writer's exact bit pattern.
    """
    ids, raw = decode_column_block(blob)
    columns = {
        name: freeze(np.frombuffer(buffer, dtype=np.float64))
        for name, buffer in raw.items()
    }
    return ids, columns


def assemble_columns(
    order: Sequence[str],
    blocks: "Iterable[tuple[Sequence[str], Mapping[str, np.ndarray]]]",
    *,
    strict: bool = True,
) -> "tuple[tuple[str, ...], dict[str, np.ndarray]]":
    """Scatter per-shard column blocks into global columns in ``order``.

    ``order`` is the coordinator corpus's canonical source order; each
    block contributes its rows at the positions its ids occupy there, so
    the assembled matrix equals the one a single process would have built
    row for row.  With ``strict`` every id in ``order`` must be covered
    (a gap raises :class:`ShardingError`); degraded reads pass
    ``strict=False`` and get the covered subset, still in ``order``.
    """
    position = {source_id: row for row, source_id in enumerate(order)}
    total = len(order)
    assembled: "dict[str, np.ndarray]" = {}
    covered = np.zeros(total, dtype=bool)
    names: "Optional[list[str]]" = None
    for shard_ids, shard_columns in blocks:
        if not shard_ids:  # an empty shard contributes nothing (and no names)
            continue
        if names is None:
            names = list(shard_columns)
        elif list(shard_columns) != names:
            raise ShardingError(
                "shards disagree on measure columns: "
                f"{names!r} vs {list(shard_columns)!r}"
            )
        rows = []
        for source_id in shard_ids:
            row = position.get(source_id)
            if row is None:
                raise ShardingError(
                    f"shard reported measures for unknown source {source_id!r}"
                )
            rows.append(row)
        destination = np.asarray(rows, dtype=np.intp)
        covered[destination] = True
        for name in names:
            target = assembled.get(name)
            if target is None:
                target = np.empty(total, dtype=np.float64)
                assembled[name] = target
            target[destination] = shard_columns[name]
    missing = np.nonzero(~covered)[0]
    if missing.size:
        if strict:
            raise ShardingError(
                f"shard replies did not report measures for source {order[int(missing[0])]!r}"
            )
        keep = np.nonzero(covered)[0]
        subject_ids = tuple(order[int(row)] for row in keep)
        columns = {name: freeze(column[keep]) for name, column in assembled.items()}
        return subject_ids, columns
    if names is None:
        return tuple(order), {}
    return tuple(order), {name: freeze(column) for name, column in assembled.items()}


def merge_sorted_columns(
    blocks: "Iterable[Mapping[str, np.ndarray]]",
) -> "dict[str, np.ndarray]":
    """Merge per-shard *sorted* columns into globally sorted columns.

    ``np.sort`` over the concatenation of pre-sorted shard columns yields
    exactly ``np.sort`` of the full column (sorting moves values, never
    changes them), which is all an order-invariant normalizer fit reads.
    """
    pooled: "dict[str, list[np.ndarray]]" = {}
    names: "Optional[list[str]]" = None
    for columns in blocks:
        if not columns:  # an empty shard ships no fit columns
            continue
        if names is None:
            names = list(columns)
        elif list(columns) != names:
            raise ShardingError(
                f"shards disagree on fit columns: {names!r} vs {list(columns)!r}"
            )
        for name in names:
            pooled.setdefault(name, []).append(columns[name])
    return {
        name: freeze(np.sort(np.concatenate(parts)))
        for name, parts in pooled.items()
    }


def concat_columns(
    blocks: "Sequence[tuple[Sequence[str], Mapping[str, np.ndarray]]]",
) -> "tuple[tuple[str, ...], dict[str, np.ndarray]]":
    """Concatenate candidate blocks (ids + columns) across shards.

    Shards partition the corpus, so the concatenation is a plain union;
    callers re-rank the pooled candidates with the same sort the
    single-process path uses.
    """
    parts = [block for block in blocks if len(block[0])]
    if not parts:
        return (), {}
    names = list(parts[0][1])
    for _, columns in parts[1:]:
        if list(columns) != names:
            raise ShardingError(
                f"shards disagree on candidate columns: {names!r} vs {list(columns)!r}"
            )
    ids = tuple(source_id for block_ids, _ in parts for source_id in block_ids)
    columns = {
        name: freeze(np.concatenate([columns[name] for _, columns in parts]))
        for name in names
    }
    return ids, columns
