"""Core quality model: the paper's primary contribution.

The model crosses six data-quality *dimensions* (accuracy, completeness,
time, interpretability, authority, dependability) with four *attributes*
(relevance, breadth of contributions, traffic — or activity for
contributors — and liveliness).  Each non-N/A cell holds one or more
concrete measures (Tables 1 and 2 of the paper).  Assessments are computed
against a Domain of Interest, normalised against benchmark sources and
aggregated into dimension, attribute and overall scores through a weighting
scheme; on top of the scores sit quality-driven filtering, ranking and
influencer detection.
"""

from repro.core.dimensions import (
    ModelCell,
    QualityAttribute,
    QualityDimension,
    CONTRIBUTOR_ATTRIBUTES,
    SOURCE_ATTRIBUTES,
)
from repro.core.domain import DomainOfInterest, TimeInterval
from repro.core.measures import (
    MeasureDefinition,
    MeasureRegistry,
    MeasureScope,
    MeasureSource,
    contributor_measure_registry,
    source_measure_registry,
)
from repro.core.normalization import (
    BenchmarkNormalizer,
    MinMaxNormalizer,
    Normalizer,
    ZScoreNormalizer,
)
from repro.core.scoring import (
    QualityScore,
    WeightingScheme,
    attribute_weighted_scheme,
    dimension_weighted_scheme,
    uniform_scheme,
)
from repro.core.source_quality import SourceAssessment, SourceQualityModel
from repro.core.contributor_quality import (
    ContributorAssessment,
    ContributorQualityModel,
)
from repro.core.filtering import (
    InfluencerDetector,
    QualityFilter,
    QualityRanker,
    RankedSource,
)

__all__ = [
    "BenchmarkNormalizer",
    "CONTRIBUTOR_ATTRIBUTES",
    "ContributorAssessment",
    "ContributorQualityModel",
    "DomainOfInterest",
    "InfluencerDetector",
    "MeasureDefinition",
    "MeasureRegistry",
    "MeasureScope",
    "MeasureSource",
    "MinMaxNormalizer",
    "ModelCell",
    "Normalizer",
    "QualityAttribute",
    "QualityDimension",
    "QualityFilter",
    "QualityRanker",
    "QualityScore",
    "RankedSource",
    "SOURCE_ATTRIBUTES",
    "SourceAssessment",
    "SourceQualityModel",
    "TimeInterval",
    "WeightingScheme",
    "ZScoreNormalizer",
    "attribute_weighted_scheme",
    "contributor_measure_registry",
    "dimension_weighted_scheme",
    "source_measure_registry",
    "uniform_scheme",
]
