"""Stable source-id partitioning for the sharded serving layer.

Every placement decision in the cluster — event routing, scatter-gather
read ownership, per-shard persistence, resync after a worker restart —
goes through :func:`partition_shard`, so it must be deterministic across
processes, platforms and interpreter restarts.  Python's built-in
``hash`` is randomised per process (``PYTHONHASHSEED``) and therefore
unusable; the function hashes the UTF-8 source id with ``blake2b``
(8-byte digest, the same construction as the search engine's query
noise) and reduces modulo the shard count.
"""

from __future__ import annotations

import hashlib

from repro.errors import ShardingError

__all__ = ["partition_shard"]


def partition_shard(source_id: str, shard_count: int) -> int:
    """The shard index owning ``source_id`` in a ``shard_count``-way split."""
    if shard_count < 1:
        raise ShardingError(f"shard_count must be at least 1, got {shard_count}")
    digest = hashlib.blake2b(source_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shard_count
