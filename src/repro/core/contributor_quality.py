"""Contributor quality model (Table 2).

:class:`ContributorQualityModel` assesses individual users of a source (or
of a microblog community exposed as a source): it crawls a per-user
snapshot, computes the Table 2 measures against the Domain of Interest,
normalises them against the community and aggregates them into the same
dimension / attribute / overall structure used for sources.

Like the source model, the contributor model runs as one batched pass:
contributor snapshots are crawled exactly once per (source, user set), the
normaliser is fitted once on the whole raw-measure matrix, and the
resulting assessments are cached under a structural fingerprint of the
source, so repeated ``assess_source`` / ``rank`` calls over an unchanged
community are near-free.  The fingerprint carries the source's
``content_revision``, so growth through the mutation helpers and
announced ``Source.touch()`` edits rebuild the context automatically;
call :meth:`ContributorQualityModel.invalidate` only after unannounced
count-preserving in-place mutations.

The model also exposes the paper's key analytical distinction between
*absolute* interaction volumes (the activity attribute) and *relative*
volumes (interactions per contribution, typical of the relevance
attribute): combining the two identifies users who both generate reactions
and do so efficiently, and penalises the spam/bot pattern of high absolute
activity with negligible relative response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.core.contributor_measures import (
    ContributorMeasurementContext,
    compute_contributor_measures,
)
from repro.core.dimensions import QualityAttribute
from repro.core.domain import DomainOfInterest
from repro.core.measures import MeasureRegistry, contributor_measure_registry
from repro.core.normalization import (
    BenchmarkNormalizer,
    Normalizer,
    collect_reference_values,
)
from repro.core.scoring import (
    QualityScore,
    WeightingScheme,
    build_quality_scores,
    uniform_scheme,
)
from repro.errors import AssessmentError
from repro.perf.cache import LRUCache, source_fingerprint
from repro.perf.counters import PerfCounters
from repro.sources.crawler import ContributorSnapshot, Crawler
from repro.sources.models import Source

__all__ = ["ContributorAssessment", "ContributorQualityModel"]


@dataclass
class ContributorAssessment:
    """Quality assessment of a single contributor."""

    user_id: str
    source_id: str
    score: QualityScore
    snapshot: ContributorSnapshot

    @property
    def overall(self) -> float:
        """Overall weighted-average quality in [0, 1]."""
        return self.score.overall

    @property
    def absolute_activity(self) -> float:
        """Normalised activity-attribute score (absolute interaction volumes)."""
        return self.score.attribute(QualityAttribute.ACTIVITY)

    @property
    def relative_efficiency(self) -> float:
        """Normalised relevance-attribute score (relative interaction volumes)."""
        return self.score.attribute(QualityAttribute.RELEVANCE)

    def influencer_score(self, absolute_weight: float = 0.5) -> float:
        """Blend of absolute and relative scores used for influencer detection.

        The paper argues that combining the two "can also help reduce the
        problems deriving from spammers and bots": an account needs both
        volume and per-contribution response to score high.
        """
        absolute_weight = min(1.0, max(0.0, absolute_weight))
        return (
            absolute_weight * self.absolute_activity
            + (1.0 - absolute_weight) * self.relative_efficiency
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "user_id": self.user_id,
            "source_id": self.source_id,
            "score": self.score.to_dict(),
            "snapshot": self.snapshot.to_dict(),
        }


class ContributorQualityModel:
    """Assess and rank the contributors of a source."""

    #: Number of (source, user set) assessment contexts retained per model.
    CONTEXT_CACHE_SIZE = 8

    def __init__(
        self,
        domain: DomainOfInterest,
        registry: Optional[MeasureRegistry] = None,
        scheme: Optional[WeightingScheme] = None,
        normalizer: Optional[Normalizer] = None,
        crawler: Optional[Crawler] = None,
    ) -> None:
        self._domain = domain
        self._registry = registry or contributor_measure_registry()
        self._scheme = scheme or uniform_scheme(self._registry)
        self._normalizer = normalizer or BenchmarkNormalizer(self._registry)
        self._crawler = crawler or Crawler()
        self._contexts = LRUCache(maxsize=self.CONTEXT_CACHE_SIZE)
        self.counters = PerfCounters()

    @property
    def domain(self) -> DomainOfInterest:
        """The Domain of Interest assessments are computed against."""
        return self._domain

    @property
    def registry(self) -> MeasureRegistry:
        """The measure registry in use."""
        return self._registry

    def invalidate(self) -> None:
        """Drop every cached assessment (see the module docstring for when)."""
        self._contexts.invalidate()

    # -- raw measures ------------------------------------------------------------------

    def raw_measures(
        self, source: Source, user_ids: Optional[Iterable[str]] = None
    ) -> dict[str, dict[str, float]]:
        """Raw Table 2 measure vectors for the selected contributors.

        The returned mapping is a copy of the cached matrix; callers may
        mutate it freely.
        """
        _, vectors, _ = self._context(source, user_ids)
        return {user_id: dict(vector) for user_id, vector in vectors.items()}

    # -- batched assessment pass --------------------------------------------------------

    def _resolve_user_ids(
        self, source: Source, user_ids: Optional[Iterable[str]]
    ) -> tuple[str, ...]:
        if user_ids is None:
            return tuple(sorted(source.contributors()))
        return tuple(user_ids)

    def _build_context(
        self, source: Source, resolved_ids: tuple[str, ...]
    ) -> tuple[
        dict[str, ContributorSnapshot],
        dict[str, dict[str, float]],
        dict[str, ContributorAssessment],
    ]:
        """Crawl once, measure once, fit once, score the whole community."""
        self.counters.increment("context_builds")
        snapshots = self._crawler.crawl_contributors(source, resolved_ids)
        if not snapshots:
            raise AssessmentError(
                f"source {source.source_id!r} has no contributors to assess"
            )
        raw_vectors: dict[str, dict[str, float]] = {}
        for user_id, snapshot in snapshots.items():
            context = ContributorMeasurementContext(
                snapshot=snapshot, domain=self._domain
            )
            raw_vectors[user_id] = compute_contributor_measures(
                context, registry=self._registry
            )
        self._normalizer.fit(collect_reference_values(raw_vectors.values()))
        normalized_vectors = self._normalizer.normalize_many(raw_vectors)
        scores = build_quality_scores(
            raw_vectors, normalized_vectors, registry=self._registry, scheme=self._scheme
        )
        assessments = {
            user_id: ContributorAssessment(
                user_id=user_id,
                source_id=source.source_id,
                score=score,
                snapshot=snapshots[user_id],
            )
            for user_id, score in scores.items()
        }
        return snapshots, raw_vectors, assessments

    def _context(
        self, source: Source, user_ids: Optional[Iterable[str]]
    ) -> tuple[
        dict[str, ContributorSnapshot],
        dict[str, dict[str, float]],
        dict[str, ContributorAssessment],
    ]:
        resolved_ids = self._resolve_user_ids(source, user_ids)
        key = (source_fingerprint(source), resolved_ids)
        hits_before = self._contexts.hits
        # The cached entry anchors the source object (first element): the
        # fingerprint key contains id(source), which must not be reused
        # while the entry lives.
        entry = self._contexts.get_or_create(
            key, lambda: (source, self._build_context(source, resolved_ids))
        )
        if self._contexts.hits > hits_before:
            self.counters.increment("context_hits")
        return entry[1]

    # -- assessment --------------------------------------------------------------------

    def assess_source(
        self, source: Source, user_ids: Optional[Iterable[str]] = None
    ) -> dict[str, ContributorAssessment]:
        """Assess the contributors of ``source`` (all of them by default).

        The returned mapping is a fresh dict, but the
        :class:`ContributorAssessment` objects are shared with the cached
        assessment context: treat them as read-only (mutating one would
        corrupt every later call for the same community).  Use
        :meth:`raw_measures` for a mutable copy of the underlying matrix.
        """
        _, _, assessments = self._context(source, user_ids)
        return dict(assessments)

    def assess(self, source: Source, user_id: str) -> ContributorAssessment:
        """Assess a single contributor of ``source``.

        The returned :class:`ContributorAssessment` is shared with the
        cached assessment context — treat it as read-only.
        """
        _, _, assessments = self._context(source, None)
        assessment = assessments.get(user_id)
        if assessment is None:
            raise AssessmentError(
                f"user {user_id!r} has no contributions on source {source.source_id!r}"
            )
        return assessment

    # -- ranking ------------------------------------------------------------------------

    def rank(
        self,
        source: Source,
        user_ids: Optional[Iterable[str]] = None,
        by_influence: bool = False,
        absolute_weight: float = 0.5,
    ) -> list[ContributorAssessment]:
        """Rank contributors by overall quality or by influencer score.

        The returned list is fresh but its elements are shared with the
        cache — treat them as read-only.
        """
        _, _, assessments = self._context(source, user_ids)
        if by_influence:
            key = lambda assessment: (
                -assessment.influencer_score(absolute_weight),
                assessment.user_id,
            )
        else:
            key = lambda assessment: (-assessment.overall, assessment.user_id)
        return sorted(assessments.values(), key=key)
