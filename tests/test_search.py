"""Tests for the simulated search engine and the query workload."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SearchError
from repro.search.engine import SearchEngine, SearchEngineConfig, tokenize
from repro.search.queries import QueryWorkload, QueryWorkloadSpec
from repro.sources.corpus import SourceCorpus


@pytest.fixture(scope="module")
def engine(small_corpus):
    return SearchEngine(small_corpus)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World-Wide 42x") == ["hello", "world-wide", "42x"]

    def test_drops_single_characters(self):
        assert tokenize("a b cd") == ["cd"]


class TestSearchEngineConfig:
    def test_negative_weight_rejected(self):
        with pytest.raises(SearchError):
            SearchEngineConfig(static_weight=-1.0).validate()

    def test_all_zero_primary_weights_rejected(self):
        with pytest.raises(SearchError):
            SearchEngineConfig(static_weight=0.0, topical_weight=0.0).validate()


class TestSearchEngine:
    def test_empty_corpus_rejected(self):
        with pytest.raises(SearchError):
            SearchEngine(SourceCorpus())

    def test_search_returns_ranked_results(self, engine):
        results = engine.search("travel flight resort", limit=5)
        assert len(results) <= 5
        assert [result.rank for result in results] == list(range(1, len(results) + 1))
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_search_is_deterministic(self, engine):
        first = engine.result_ids("food recipe dinner", limit=10)
        second = engine.result_ids("food recipe dinner", limit=10)
        assert first == second

    def test_invalid_queries_rejected(self, engine):
        with pytest.raises(SearchError):
            engine.search("")
        with pytest.raises(SearchError):
            engine.search("!!!")
        with pytest.raises(SearchError):
            engine.search("travel", limit=0)

    def test_topical_score_unknown_source_rejected(self, engine):
        with pytest.raises(SearchError):
            engine.topical_score("ghost", ["travel"])

    def test_static_rank_orders_by_popularity(self, small_corpus):
        engine = SearchEngine(small_corpus)
        static = engine.static_rank()
        assert set(static) == set(small_corpus.source_ids())
        popularity = {s.source_id: s.latent_popularity for s in small_corpus}
        # Popularity ordering should be respected at the extremes (noise aside).
        top, bottom = static[0], static[-1]
        assert popularity[top] >= popularity[bottom]

    def test_static_weight_dominance_changes_ordering(self, small_corpus):
        popular_first = SearchEngine(
            small_corpus,
            config=SearchEngineConfig(
                static_weight=1.0, topical_weight=0.0, query_noise_weight=0.0
            ),
        )
        topical_first = SearchEngine(
            small_corpus,
            config=SearchEngineConfig(
                static_weight=0.0, topical_weight=1.0, query_noise_weight=0.0
            ),
        )
        query = "travel flight resort beach"
        assert popular_first.result_ids(query, 10) != topical_first.result_ids(query, 10) or (
            len(popular_first.result_ids(query, 10)) <= 1
        )


class TestQueryWorkload:
    def test_generates_requested_number_of_queries(self):
        workload = QueryWorkload(QueryWorkloadSpec(query_count=25, seed=3))
        assert len(workload) == 25
        assert len(workload.texts()) == 25

    def test_workload_is_deterministic(self):
        first = QueryWorkload(QueryWorkloadSpec(query_count=10, seed=3)).texts()
        second = QueryWorkload(QueryWorkloadSpec(query_count=10, seed=3)).texts()
        assert first == second

    def test_queries_are_anchored_in_their_category(self):
        workload = QueryWorkload(QueryWorkloadSpec(query_count=10, seed=4))
        for query in workload:
            assert query.category.replace("_", " ") in query.text

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryWorkloadSpec(query_count=0).validate()
        with pytest.raises(ConfigurationError):
            QueryWorkloadSpec(terms_per_query=(3, 1)).validate()
        with pytest.raises(ConfigurationError):
            QueryWorkloadSpec(categories=()).validate()
        with pytest.raises(ConfigurationError):
            QueryWorkloadSpec(results_per_query=0).validate()
