"""Performance toolkit shared by the hot paths of the reproduction.

The package groups three small utilities used across the assessment
pipeline, the search engine and the sentiment layer:

* :mod:`repro.perf.timers` — monotonic stopwatches and timing helpers for
  the benchmark harness;
* :mod:`repro.perf.counters` — lightweight named counters that the cached
  pipelines use to expose hit/miss and work-done statistics;
* :mod:`repro.perf.cache` — a deterministic LRU cache plus the structural
  fingerprint helpers that key the assessment-context caches.

:mod:`repro.perf.reference` keeps the seed's naive single-object loops as
reference implementations; the equivalence tests and the perf benchmark
harness use them to prove the optimised paths return identical results and
to record honest baseline timings.
"""

from repro.perf.cache import (
    LRUCache,
    corpus_fingerprint,
    corpus_probe,
    source_fingerprint,
    source_probe,
)
from repro.perf.counters import PerfCounters
from repro.perf.timers import Stopwatch, time_call, timed

__all__ = [
    "LRUCache",
    "PerfCounters",
    "Stopwatch",
    "corpus_fingerprint",
    "corpus_probe",
    "source_fingerprint",
    "source_probe",
    "time_call",
    "timed",
]
