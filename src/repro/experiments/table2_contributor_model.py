"""Experiment E2 — Table 2: the contributor quality measure matrix.

Mirrors the Table 1 experiment at the contributor level: every measure of
Table 2 is evaluated for every contributor of a microblog community (the
kind of source where, as the paper argues, "the trustworthiness of the
content mostly depends on the quality of the contribution of the single
users"), and the per-cell means are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.contributor_quality import ContributorQualityModel
from repro.core.dimensions import (
    CONTRIBUTOR_ATTRIBUTES,
    QualityAttribute,
    QualityDimension,
)
from repro.core.domain import DomainOfInterest
from repro.core.measures import contributor_measure_registry
from repro.experiments.reporting import format_markdown_table
from repro.sources.models import Source
from repro.sources.twitter import MicroblogGenerator, MicroblogSpec

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One measure of Table 2 evaluated on the contributor population."""

    dimension: str
    attribute: str
    measure: str
    domain_dependent: bool
    mean_raw: float
    mean_normalized: float


@dataclass
class Table2Result:
    """Result of evaluating the Table 2 matrix on a contributor population."""

    contributor_count: int
    source_id: str
    domain: DomainOfInterest
    rows: list[Table2Row] = field(default_factory=list)

    def cell(self, dimension: QualityDimension, attribute: QualityAttribute) -> list[Table2Row]:
        """Rows of one (dimension, attribute) cell."""
        return [
            row
            for row in self.rows
            if row.dimension == dimension.value and row.attribute == attribute.value
        ]

    def applicable_cells(self) -> set[tuple[str, str]]:
        """The (dimension, attribute) cells holding at least one measure."""
        return {(row.dimension, row.attribute) for row in self.rows}

    def to_markdown(self) -> str:
        """Render the evaluated matrix as a markdown table."""
        headers = (
            "Dimension",
            "Attribute",
            "Measure",
            "Domain-dependent",
            "Mean raw",
            "Mean normalised",
        )
        body = [
            (
                row.dimension,
                row.attribute,
                row.measure,
                "yes" if row.domain_dependent else "no",
                row.mean_raw,
                row.mean_normalized,
            )
            for row in self.rows
        ]
        return format_markdown_table(headers, body)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "contributor_count": self.contributor_count,
            "source_id": self.source_id,
            "domain": self.domain.to_dict(),
            "rows": [row.__dict__ for row in self.rows],
        }


def default_table2_source(seed: int = 11, account_count: int = 120) -> Source:
    """Build the default microblog source used by the Table 2 experiment."""
    community = MicroblogGenerator(
        MicroblogSpec(account_count=account_count, seed=seed, sample_tweet_count=10)
    ).generate()
    return community.to_source(source_id="microblog-study")


def run_table2(
    source: Optional[Source] = None,
    domain: Optional[DomainOfInterest] = None,
    max_contributors: Optional[int] = 150,
) -> Table2Result:
    """Evaluate the Table 2 measure matrix for the contributors of ``source``."""
    source = source if source is not None else default_table2_source()
    domain = domain or DomainOfInterest(
        categories=("news", "lifestyle", "sports", "music", "travel"),
        name="table2-domain",
    )
    registry = contributor_measure_registry()
    model = ContributorQualityModel(domain, registry=registry)

    user_ids = sorted(source.contributors())
    if max_contributors is not None:
        user_ids = user_ids[:max_contributors]
    assessments = model.assess_source(source, user_ids)

    rows: list[Table2Row] = []
    for dimension in QualityDimension:
        for attribute in CONTRIBUTOR_ATTRIBUTES:
            if not registry.is_applicable(dimension, attribute):
                continue
            for definition in registry.for_cell(dimension, attribute):
                raw_values = [
                    assessment.score.measure(definition.name)
                    for assessment in assessments.values()
                ]
                normalized_values = [
                    assessment.score.normalized(definition.name)
                    for assessment in assessments.values()
                ]
                rows.append(
                    Table2Row(
                        dimension=dimension.value,
                        attribute=attribute.value,
                        measure=definition.name,
                        domain_dependent=definition.domain_dependent,
                        mean_raw=sum(raw_values) / len(raw_values),
                        mean_normalized=sum(normalized_values) / len(normalized_values),
                    )
                )
    return Table2Result(
        contributor_count=len(assessments),
        source_id=source.source_id,
        domain=domain,
        rows=rows,
    )
