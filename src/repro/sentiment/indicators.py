"""Sentiment indicators and quality-weighted aggregation.

The Milan case study (Section 6) computes "sentiment indicators summarizing
the opinions contained in user generated contents" per content category and
per source, and weighs "the overall sentiment assessment ... with respect
to the quality of the Web sources".  :class:`SentimentIndicatorService`
implements both: per-category and per-source breakdowns over a corpus, plus
an overall indicator that is either unweighted or weighted by the source
quality assessments produced by :class:`~repro.core.SourceQualityModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.core.domain import DomainOfInterest
from repro.errors import SentimentError
from repro.sentiment.analyzer import SentimentAnalyzer, SentimentScore
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Post, Source

__all__ = [
    "CategorySentiment",
    "SourceSentiment",
    "SentimentIndicator",
    "SentimentIndicatorService",
]


@dataclass(frozen=True)
class CategorySentiment:
    """Sentiment indicator for one DI content category."""

    category: str
    average_polarity: float
    post_count: int
    positive_count: int
    negative_count: int
    neutral_count: int

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "category": self.category,
            "average_polarity": self.average_polarity,
            "post_count": self.post_count,
            "positive_count": self.positive_count,
            "negative_count": self.negative_count,
            "neutral_count": self.neutral_count,
        }


@dataclass(frozen=True)
class SourceSentiment:
    """Sentiment indicator for one source."""

    source_id: str
    average_polarity: float
    post_count: int
    quality_weight: float = 1.0

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "source_id": self.source_id,
            "average_polarity": self.average_polarity,
            "post_count": self.post_count,
            "quality_weight": self.quality_weight,
        }


@dataclass(frozen=True)
class SentimentIndicator:
    """Overall sentiment indicator over a corpus."""

    overall_polarity: float
    weighted: bool
    per_source: tuple[SourceSentiment, ...]
    per_category: tuple[CategorySentiment, ...]

    def source(self, source_id: str) -> SourceSentiment:
        """Return the per-source breakdown entry for ``source_id``."""
        for entry in self.per_source:
            if entry.source_id == source_id:
                return entry
        raise SentimentError(f"no sentiment entry for source {source_id!r}")

    def category(self, name: str) -> CategorySentiment:
        """Return the per-category breakdown entry for ``name``."""
        for entry in self.per_category:
            if entry.category == name:
                return entry
        raise SentimentError(f"no sentiment entry for category {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "overall_polarity": self.overall_polarity,
            "weighted": self.weighted,
            "per_source": [entry.to_dict() for entry in self.per_source],
            "per_category": [entry.to_dict() for entry in self.per_category],
        }


class SentimentIndicatorService:
    """Compute per-category, per-source and overall sentiment indicators."""

    def __init__(
        self,
        analyzer: Optional[SentimentAnalyzer] = None,
        domain: Optional[DomainOfInterest] = None,
    ) -> None:
        self._analyzer = analyzer or SentimentAnalyzer()
        self._domain = domain

    @property
    def analyzer(self) -> SentimentAnalyzer:
        """The underlying sentiment analyser."""
        return self._analyzer

    # -- per-post helpers ---------------------------------------------------------

    def _relevant_posts(self, source: Source) -> list[Post]:
        posts = []
        for post in source.posts():
            if not post.text:
                continue
            if self._domain is not None:
                if post.category is not None and not self._domain.covers_category(
                    post.category
                ):
                    continue
                if not self._domain.covers_day(post.day):
                    continue
            posts.append(post)
        return posts

    def score_post(self, post: Post) -> SentimentScore:
        """Score a single post.

        Delegates to the analyser, whose per-text memo makes repeated
        scoring of the same content (e.g. the per-source pass followed by
        the per-category pass of :meth:`indicator`) near-free.
        """
        return self._analyzer.score(post.text)

    def _scored_relevant_posts(
        self, source: Source
    ) -> list[tuple[Post, SentimentScore]]:
        """Relevant posts of ``source`` paired with their sentiment scores."""
        return [(post, self.score_post(post)) for post in self._relevant_posts(source)]

    # -- per-source / per-category indicators ------------------------------------------

    def source_sentiment(self, source: Source, quality_weight: float = 1.0) -> SourceSentiment:
        """Average opinionated polarity over the relevant posts of a source."""
        scored = self._scored_relevant_posts(source)
        posts = [post for post, _ in scored]
        scores = [score for _, score in scored]
        opinionated = [score for score in scores if score.is_opinionated]
        average = (
            sum(score.polarity for score in opinionated) / len(opinionated)
            if opinionated
            else 0.0
        )
        return SourceSentiment(
            source_id=source.source_id,
            average_polarity=average,
            post_count=len(posts),
            quality_weight=quality_weight,
        )

    def category_sentiments(self, corpus: SourceCorpus) -> list[CategorySentiment]:
        """Per-category sentiment breakdown across the whole corpus."""
        buckets: dict[str, list[SentimentScore]] = {}
        counts: dict[str, int] = {}
        for source in corpus:
            for post, score in self._scored_relevant_posts(source):
                category = post.category or "uncategorised"
                counts[category] = counts.get(category, 0) + 1
                if score.is_opinionated:
                    buckets.setdefault(category, []).append(score)

        indicators: list[CategorySentiment] = []
        for category in sorted(counts):
            scores = buckets.get(category, [])
            average = (
                sum(score.polarity for score in scores) / len(scores) if scores else 0.0
            )
            indicators.append(
                CategorySentiment(
                    category=category,
                    average_polarity=average,
                    post_count=counts[category],
                    positive_count=sum(1 for score in scores if score.label == "positive"),
                    negative_count=sum(1 for score in scores if score.label == "negative"),
                    neutral_count=counts[category]
                    - sum(1 for score in scores if score.label != "neutral"),
                )
            )
        return indicators

    # -- overall indicator -----------------------------------------------------------------

    def indicator(
        self,
        corpus: SourceCorpus,
        quality_weights: Optional[Mapping[str, float]] = None,
    ) -> SentimentIndicator:
        """Overall sentiment indicator, optionally weighted by source quality.

        ``quality_weights`` maps source identifiers to weights (typically the
        overall score of a :class:`SourceQualityModel` assessment); sources
        missing from the mapping get weight 0 and therefore do not
        contribute to the weighted overall value.
        """
        if len(corpus) == 0:
            raise SentimentError("cannot compute an indicator over an empty corpus")
        weighted = quality_weights is not None

        per_source: list[SourceSentiment] = []
        for source in corpus:
            weight = (
                float(quality_weights.get(source.source_id, 0.0)) if weighted else 1.0
            )
            per_source.append(self.source_sentiment(source, quality_weight=weight))

        contributing = [entry for entry in per_source if entry.post_count > 0]
        total_weight = sum(entry.quality_weight for entry in contributing)
        if contributing and total_weight > 0:
            overall = (
                sum(entry.average_polarity * entry.quality_weight for entry in contributing)
                / total_weight
            )
        else:
            overall = 0.0

        return SentimentIndicator(
            overall_polarity=overall,
            weighted=weighted,
            per_source=tuple(per_source),
            per_category=tuple(self.category_sentiments(corpus)),
        )
