"""Analysis-service components.

The paper's analysis services "(i) support quality-based selection of the
most relevant contents ... (ii) support simple filter operations ...
(iii) perform content-based analysis (e.g., feature extraction for buzz
word identification)".  The filter operations live in
:mod:`repro.mashup.filters`; this module provides the quality-based
selection service and two content-based analyses: sentiment annotation and
buzz-word extraction.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Mapping, Optional

from repro.core.filtering import QualityRanker
from repro.errors import MashupError
from repro.mashup.component import Component, ContentItem, Port
from repro.sentiment.analyzer import SentimentAnalyzer
from repro.sources.corpus import SourceCorpus

__all__ = ["QualityRankingService", "SentimentAnalysisService", "BuzzWordService"]

_WORD_PATTERN = re.compile(r"[a-z][a-z\-]{2,}")

#: Tokens never reported as buzz words (articles, auxiliaries, generic filler).
_STOPWORDS: frozenset[str] = frozenset(
    {
        "the", "and", "for", "with", "that", "this", "was", "are", "were",
        "have", "has", "had", "not", "but", "you", "your", "our", "their",
        "there", "here", "very", "really", "quite", "just", "also", "again",
        "around", "near", "during", "about", "into", "from", "they", "them",
        "she", "him", "her", "his", "its", "out", "when", "where", "which",
        "will", "would", "could", "should", "than", "then", "too", "all",
        "visited", "yesterday", "today", "place", "people", "time", "city",
        "trip", "day",
    }
)


class QualityRankingService(Component):
    """Rank the sources of a corpus by quality and expose the results.

    Outputs:

    * ``ranking`` — list of ``{"rank", "source_id", "overall"}`` records;
    * ``quality_weights`` — mapping from source id to overall score, ready
      to feed a :class:`~repro.mashup.filters.QualitySourceFilter` or a
      quality-weighted sentiment indicator;
    * ``top_source_ids`` — identifiers of the ``top`` best sources.
    """

    TYPE_NAME = "analysis.quality_ranking"
    OUTPUT_PORTS = (Port("ranking"), Port("quality_weights"), Port("top_source_ids"))

    def __init__(
        self,
        component_id: str,
        ranker: QualityRanker,
        corpus: SourceCorpus,
        top: int = 3,
        **parameters: Any,
    ) -> None:
        super().__init__(component_id, top=top, **parameters)
        if top < 1:
            raise MashupError("top must be >= 1")
        self._ranker = ranker
        self._corpus = corpus
        self._top = top

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        ranking = self._ranker.rank(self._corpus)
        assessments = self._ranker.model.assess_corpus(self._corpus)
        weights = {
            source_id: assessment.overall
            for source_id, assessment in assessments.items()
        }
        return {
            "ranking": [entry.to_dict() for entry in ranking],
            "quality_weights": weights,
            "top_source_ids": [entry.source_id for entry in ranking[: self._top]],
        }


class SentimentAnalysisService(Component):
    """Annotate content items with sentiment and compute an indicator.

    Outputs the annotated items plus an ``indicator`` dictionary holding the
    unweighted and the quality-weighted average polarity (items carry their
    source's quality weight when a quality filter ran upstream).
    """

    TYPE_NAME = "analysis.sentiment"
    INPUT_PORTS = (Port("items"),)
    OUTPUT_PORTS = (Port("items"), Port("indicator"))

    def __init__(
        self,
        component_id: str,
        analyzer: Optional[SentimentAnalyzer] = None,
        **parameters: Any,
    ) -> None:
        super().__init__(component_id, **parameters)
        self._analyzer = analyzer or SentimentAnalyzer()

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        items = self.require_items(inputs)
        annotated: list[ContentItem] = []
        for item in items:
            score = self._analyzer.score(item.text)
            annotated.append(item.with_sentiment(score.polarity))

        opinionated = [item for item in annotated if item.sentiment not in (None, 0.0)]
        unweighted = (
            sum(item.sentiment or 0.0 for item in opinionated) / len(opinionated)
            if opinionated
            else 0.0
        )
        total_weight = sum(item.quality_weight for item in opinionated)
        weighted = (
            sum((item.sentiment or 0.0) * item.quality_weight for item in opinionated)
            / total_weight
            if total_weight > 0
            else 0.0
        )
        per_category: dict[str, list[float]] = {}
        for item in opinionated:
            per_category.setdefault(item.category or "uncategorised", []).append(
                item.sentiment or 0.0
            )
        indicator = {
            "item_count": len(annotated),
            "opinionated_count": len(opinionated),
            "average_polarity": unweighted,
            "quality_weighted_polarity": weighted,
            "per_category": {
                category: sum(values) / len(values)
                for category, values in sorted(per_category.items())
            },
        }
        return {"items": annotated, "indicator": indicator}


class BuzzWordService(Component):
    """Extract the most frequent content words (buzz words) from the items."""

    TYPE_NAME = "analysis.buzzwords"
    INPUT_PORTS = (Port("items"),)
    OUTPUT_PORTS = (Port("buzzwords"),)

    def __init__(self, component_id: str, top: int = 10, **parameters: Any) -> None:
        super().__init__(component_id, top=top, **parameters)
        if top < 1:
            raise MashupError("top must be >= 1")
        self._top = top

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        items = self.require_items(inputs)
        counter: Counter[str] = Counter()
        for item in items:
            for token in _WORD_PATTERN.findall(item.text.lower()):
                if token not in _STOPWORDS:
                    counter[token] += 1
        buzzwords = [
            {"word": word, "count": count}
            for word, count in sorted(counter.items(), key=lambda pair: (-pair[1], pair[0]))[
                : self._top
            ]
        ]
        return {"buzzwords": buzzwords}
