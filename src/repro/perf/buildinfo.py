"""Build attribution for benchmark reports.

``BENCH_perf.json`` records a performance trajectory across PRs, but its
``meta`` block only said *where* a run happened (python/platform), not
*what* was running.  :func:`git_build_stamp` returns the git describe and
commit of the working tree so every ``atomic_write_json`` writer can make
trajectory comparisons attributable.  Failure is soft: outside a git
checkout (or without a ``git`` binary) the fields degrade to
``"unknown"`` — a benchmark run must never die on attribution.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["git_build_stamp"]

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _git(*args: str) -> str:
    try:
        return subprocess.run(
            ("git", *args),
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def git_build_stamp() -> dict[str, str]:
    """``{"git_describe": ..., "git_commit": ...}`` of the working tree.

    ``git_describe`` uses ``--always --dirty`` so an unstamped tree still
    yields the abbreviated commit, and local modifications are visible in
    the recorded trajectory point.
    """
    return {
        "git_describe": _git("describe", "--always", "--dirty") or "unknown",
        "git_commit": _git("rev-parse", "HEAD") or "unknown",
    }
