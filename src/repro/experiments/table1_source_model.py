"""Experiment E1 — Table 1: the source quality measure matrix.

Table 1 of the paper *defines* the source quality model: for every
(dimension, attribute) cell it lists the measures and where they come from.
The reproduction evaluates that matrix on a concrete corpus: for every
measure it reports the corpus-wide mean of the raw value and of the
normalised value, grouped by cell, which both documents the model and
verifies that every cell of Table 1 is computable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.dimensions import SOURCE_ATTRIBUTES, QualityAttribute, QualityDimension
from repro.core.domain import DomainOfInterest
from repro.core.measures import source_measure_registry
from repro.core.source_quality import SourceQualityModel
from repro.experiments.reporting import format_markdown_table
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import CorpusGenerator, CorpusSpec
from repro.sources.text import GENERIC_CATEGORIES

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One measure of Table 1 evaluated on the corpus."""

    dimension: str
    attribute: str
    measure: str
    domain_dependent: bool
    measured_by: str
    mean_raw: float
    mean_normalized: float


@dataclass
class Table1Result:
    """Result of evaluating the Table 1 matrix on a corpus."""

    source_count: int
    domain: DomainOfInterest
    rows: list[Table1Row] = field(default_factory=list)

    def cell(self, dimension: QualityDimension, attribute: QualityAttribute) -> list[Table1Row]:
        """Rows of one (dimension, attribute) cell."""
        return [
            row
            for row in self.rows
            if row.dimension == dimension.value and row.attribute == attribute.value
        ]

    def applicable_cells(self) -> set[tuple[str, str]]:
        """The (dimension, attribute) cells holding at least one measure."""
        return {(row.dimension, row.attribute) for row in self.rows}

    def to_markdown(self) -> str:
        """Render the evaluated matrix as a markdown table."""
        headers = (
            "Dimension",
            "Attribute",
            "Measure",
            "Domain-dependent",
            "Measured by",
            "Mean raw",
            "Mean normalised",
        )
        body = [
            (
                row.dimension,
                row.attribute,
                row.measure,
                "yes" if row.domain_dependent else "no",
                row.measured_by,
                row.mean_raw,
                row.mean_normalized,
            )
            for row in self.rows
        ]
        return format_markdown_table(headers, body)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "source_count": self.source_count,
            "domain": self.domain.to_dict(),
            "rows": [row.__dict__ for row in self.rows],
        }


def default_table1_corpus(seed: int = 7, source_count: int = 60) -> SourceCorpus:
    """Build the default corpus used by the Table 1 experiment."""
    return CorpusGenerator(
        CorpusSpec(
            source_count=source_count,
            seed=seed,
            discussion_budget=20,
            user_budget=25,
        )
    ).generate()


def run_table1(
    corpus: Optional[SourceCorpus] = None,
    domain: Optional[DomainOfInterest] = None,
) -> Table1Result:
    """Evaluate the Table 1 measure matrix on ``corpus`` against ``domain``."""
    corpus = corpus if corpus is not None else default_table1_corpus()
    domain = domain or DomainOfInterest(
        categories=("travel", "food", "culture"), name="table1-domain"
    )
    registry = source_measure_registry()
    model = SourceQualityModel(domain, registry=registry)
    assessments = model.assess_corpus(corpus)

    rows: list[Table1Row] = []
    for dimension in QualityDimension:
        for attribute in SOURCE_ATTRIBUTES:
            if not registry.is_applicable(dimension, attribute):
                continue
            for definition in registry.for_cell(dimension, attribute):
                raw_values = [
                    assessment.score.measure(definition.name)
                    for assessment in assessments.values()
                ]
                normalized_values = [
                    assessment.score.normalized(definition.name)
                    for assessment in assessments.values()
                ]
                rows.append(
                    Table1Row(
                        dimension=dimension.value,
                        attribute=attribute.value,
                        measure=definition.name,
                        domain_dependent=definition.domain_dependent,
                        measured_by=definition.measured_by.value,
                        mean_raw=sum(raw_values) / len(raw_values),
                        mean_normalized=sum(normalized_values) / len(normalized_values),
                    )
                )
    return Table1Result(source_count=len(corpus), domain=domain, rows=rows)
