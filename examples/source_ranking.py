#!/usr/bin/env python3
"""Compare quality-driven ranking against a general-purpose search engine.

This example reproduces, at example scale, the study of Section 4.1: a
popularity-dominated search engine answers keyword queries over a corpus of
blogs and forums, the quality model re-ranks each result list, and the two
orderings are compared (rank displacements, Kendall tau of single measures).

It then demonstrates the serving layer: the same corpus mutates while being
served, first with plain *lazy* refresh (the first read after the mutations
absorbs the incremental patch) and then with an
:class:`~repro.serving.EagerRefreshScheduler` in coalescing mode (the burst
coalesces into one background patch and the first read is O(1)).

Run with::

    python examples/source_ranking.py
"""

from __future__ import annotations

import time

from repro.core.domain import DomainOfInterest
from repro.core.source_quality import SourceQualityModel
from repro.datasets.google_study import GoogleStudySpec, build_google_study
from repro.serving import EagerRefreshScheduler, RefreshMode
from repro.sources.corpus import SourceCorpus
from repro.stats.ranking import compare_rankings


def main() -> None:
    dataset = build_google_study(GoogleStudySpec(source_count=80, query_count=8, seed=31))
    print(
        f"Corpus: {dataset.site_count} blogs/forums — "
        f"workload: {len(dataset.workload)} queries, top-{dataset.spec.results_per_query} each\n"
    )

    for query in list(dataset.workload)[:5]:
        results = dataset.engine.search(query.text, limit=dataset.spec.results_per_query)
        if len(results) < 5:
            continue
        search_ids = [result.source_id for result in results]
        sub_corpus = SourceCorpus(dataset.corpus.get(source_id) for source_id in search_ids)
        model = SourceQualityModel(
            DomainOfInterest(categories=(query.category,), name=query.query_id),
            alexa=dataset.alexa,
            feedburner=dataset.feedburner,
        )
        quality_ids = model.ranking_ids(sub_corpus)
        shift = compare_rankings(search_ids, quality_ids)

        print(f"query {query.query_id}: {query.text!r}")
        print(f"  search order : {', '.join(search_ids[:5])} ...")
        print(f"  quality order: {', '.join(quality_ids[:5])} ...")
        print(
            f"  avg displacement {shift.average_displacement:.2f}, "
            f"displaced >5: {shift.fraction_displaced_over_5:.0%}, "
            f"coincident: {shift.fraction_coincident:.0%}\n"
        )

    print("Interpretation: the search engine privileges raw traffic and inbound")
    print("links, while the quality model also rewards participation and")
    print("freshness — hence the substantial re-ranking, as reported in the paper.")

    serving_demo(dataset)


def serving_demo(dataset) -> None:
    """Eager vs lazy refresh: where the post-mutation patch cost lands."""
    corpus = dataset.corpus
    engine = dataset.engine
    model = SourceQualityModel(
        DomainOfInterest(categories=("travel", "food"), name="serving-demo"),
        alexa=dataset.alexa,
        feedburner=dataset.feedburner,
    )
    model.assessment_context(corpus)  # warm the incremental state

    def first_read() -> float:
        start = time.perf_counter()
        model.assessment_context(corpus)
        engine.search("travel flight resort", 10)
        return (time.perf_counter() - start) * 1e3

    def mutate_burst() -> None:
        for source_id in corpus.source_ids()[:3]:
            corpus.touch(source_id)

    print("\nServing the corpus while it mutates:")
    # Lazy: no scheduler — the first read after the burst pays the patch.
    mutate_burst()
    lazy_ms = first_read()
    print(f"  lazy   first read after burst: {lazy_ms:7.2f} ms (patch on read path)")

    # Eager: the burst coalesces into one background patch; the read is O(1).
    with EagerRefreshScheduler(corpus, RefreshMode.COALESCING) as scheduler:
        scheduler.register_search_engine(engine)
        scheduler.register_source_model(model)
        mutate_burst()
        scheduler.flush()  # the coalesced patch, off the read path
        eager_ms = first_read()
        patches = scheduler.counters.get("patches_applied")
        events = scheduler.counters.get("notifications")
    print(f"  eager  first read after burst: {eager_ms:7.2f} ms "
          f"({events} events coalesced into {patches} patch)")
    print("  Same results either way — eager refresh only moves the patch cost")
    print("  off the read path (see docs/ARCHITECTURE.md).")


if __name__ == "__main__":
    main()
