"""Machine-checked invariants of the serving/assessment/persistence stack.

The stack's hardest-won guarantees exist as *contracts*, not as types the
interpreter could enforce: the deadlock-free lock ordering of the
concurrent serving core (PR 5), the IEEE-exact columnar kernels that keep
incremental results bit-identical to rebuilds (PR 7), the
write-tmp → fsync → rename durability discipline of the persistence
layer (PR 6), and the rule that every bus subscription a consumer
acquires is detached in its ``close()``.  A careless edit can silently
violate any of them and every existing test would still pass — the
violations only surface under concurrency, at recovery time, or as an
ulp-level ranking divergence.

This package makes those contracts statically checkable.  Four AST-based
checkers run over the source tree (``scripts/run_lint.py`` / ``make
lint``):

* :mod:`repro.analysis.locks` — ``lock-discipline``: builds a
  per-function lock-acquisition graph over the concurrent serving core
  and flags lock-order violations, read→write upgrades, corpus mutation
  under a consumer gate, and notification delivery inside the mutation
  lock (the exact PR 5 deadlock class).
* :mod:`repro.analysis.floats` — ``float-exactness``: restricts the
  columnar kernel modules to a whitelist of IEEE-exact numpy operations
  and rejects reductions/transcendentals that would break bit-identity.
* :mod:`repro.analysis.durability` — ``durability-discipline``: flags
  raw file writes that bypass :mod:`repro.persistence.format`'s atomic
  helpers.
* :mod:`repro.analysis.bus` — ``bus-hygiene``: every
  ``BusSubscription`` stored by a consumer must be closed in its
  ``close()``; subscriptions acquired and dropped on the floor are
  leaks.

Findings can be suppressed per line (``# lint: allow[rule-id]``) or
grandfathered in the checked-in baseline (``lint_baseline.json``); see
``docs/INVARIANTS.md`` for the catalogue of contracts, checker IDs and
the suppression workflow.  The static pass is complemented by a cheap
*runtime* lock-order validator in :mod:`repro.serving.rwlock`, enabled
under ``make stress`` via ``REPRO_LOCK_ORDER_CHECK=1``.
"""

from repro.analysis.findings import Finding, load_baseline, write_baseline
from repro.analysis.runner import run_all, CHECKERS

__all__ = ["Finding", "load_baseline", "write_baseline", "run_all", "CHECKERS"]
