"""``bus-hygiene``: every acquired ``BusSubscription`` has an owner.

:class:`~repro.sources.diffing.InvalidationBus` holds its subscriptions
**weakly** — the bus never keeps a consumer alive.  That design forces
two disciplines on subscribers, each with a silent failure mode:

* a subscription *stored* on a long-lived object must be detached in
  that object's ``close()`` — otherwise the closed consumer keeps
  receiving (and its hooks keep running) for as long as it is
  reachable;
* a subscription *not* stored anywhere is garbage-collected at once —
  the subscriber silently stops receiving events while every
  synchronous test still passes.

Rules:

* ``unclosed-subscription`` — ``self.attr = <...>.subscribe(...)`` in a
  class whose ``close()`` (if any) never calls ``self.attr.close()``;
* ``leaked-subscription``   — a local assigned from ``.subscribe(...)``
  and then never used at all (not closed, stored, returned or passed
  on);
* ``unclosed-bridge``       — ``self.attr = DurableJournalSubscriber(...)``
  (or its :class:`~repro.sources.diffing.WireBridgeSubscriber` subclass,
  which replicates the bus onto the sharding wire) in a class whose
  ``close()`` never calls ``self.attr.close()``.  The bridge classes
  hold their own subscription *strongly*, so an unclosed bridge keeps
  journaling/replicating for as long as the owner is reachable.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.astutil import dotted_name, parse_module
from repro.analysis.findings import Finding

__all__ = ["CHECKER", "check"]

CHECKER = "bus-hygiene"


def _is_subscribe_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "subscribe"
    )


#: Bus-bridge classes that subscribe in their constructor and hold the
#: subscription strongly; owners storing one must close it.
_BRIDGE_CLASSES = frozenset({"DurableJournalSubscriber", "WireBridgeSubscriber"})


def _is_bridge_construction(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _BRIDGE_CLASSES
    if isinstance(func, ast.Attribute):
        return func.attr in _BRIDGE_CLASSES
    return False


def _closes_attr(cls: ast.ClassDef, attr: str) -> bool:
    """True when some ``close()`` method calls ``self.<attr>.close()``."""
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name != "close":
            continue
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
                and dotted_name(node.func.value) == f"self.{attr}"
            ):
                return True
    return False


def _check_class(cls: ast.ClassDef, relative: str) -> list[Finding]:
    findings: list[Finding] = []
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            is_subscription = _is_subscribe_call(node.value)
            is_bridge = _is_bridge_construction(node.value)
            if not is_subscription and not is_bridge:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if _closes_attr(cls, target.attr):
                        continue
                    if is_subscription:
                        findings.append(
                            Finding(
                                CHECKER,
                                "unclosed-subscription",
                                relative,
                                node.lineno,
                                f"self.{target.attr} holds a bus subscription "
                                f"but {cls.name} has no close() detaching it "
                                "— the consumer keeps receiving after its "
                                "lifetime ends",
                                symbol=f"{cls.name}.{method.name}",
                            )
                        )
                    else:
                        findings.append(
                            Finding(
                                CHECKER,
                                "unclosed-bridge",
                                relative,
                                node.lineno,
                                f"self.{target.attr} holds a journal/wire "
                                f"bridge subscriber but {cls.name} has no "
                                "close() detaching it — the bridge keeps "
                                "journaling/replicating after its owner's "
                                "lifetime ends",
                                symbol=f"{cls.name}.{method.name}",
                            )
                        )
    return findings


def _check_function_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef, owner: str, relative: str
) -> list[Finding]:
    """Locals assigned from ``.subscribe(...)`` and then never mentioned."""
    assigned: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_subscribe_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = node.lineno
    if not assigned:
        return []
    used: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in assigned:
                used.add(node.id)
    findings: list[Finding] = []
    for name, line in sorted(assigned.items(), key=lambda item: item[1]):
        if name in used:
            continue
        findings.append(
            Finding(
                CHECKER,
                "leaked-subscription",
                relative,
                line,
                f"local {name!r} holds the only (strong) reference to a bus "
                "subscription and is never used — the bus holds it weakly, "
                "so it is collected and silently stops receiving",
                symbol=f"{owner}.{func.name}" if owner else func.name,
            )
        )
    return findings


def check(root: Path, files: Optional[Sequence[str]] = None) -> list[Finding]:
    """Run bus-hygiene over every package module under ``root``."""
    if files is None:
        package = root / "src" / "repro"
        selected = sorted(
            str(path.relative_to(root)) for path in package.rglob("*.py")
        )
    else:
        selected = list(files)
    findings: list[Finding] = []
    for relative in selected:
        path = root / relative
        if not path.exists():
            continue
        module = parse_module(path, root)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(node, module.relative))
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        findings.extend(
                            _check_function_locals(method, node.name, module.relative)
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_check_function_locals(node, "", module.relative))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
