"""Tests for the microblog community substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownUserError
from repro.sources.models import AccountKind, SourceType
from repro.sources.twitter import (
    AccountActivity,
    ClassProfile,
    MicroblogAccount,
    MicroblogCommunity,
    MicroblogGenerator,
    MicroblogSpec,
    Tweet,
    TwitaholicLikeService,
)


class TestCommunityBasics:
    def make_community(self) -> MicroblogCommunity:
        community = MicroblogCommunity(name="mini", observation_day=100.0)
        for index, kind in enumerate([AccountKind.PERSON, AccountKind.NEWS]):
            community.add_account(
                MicroblogAccount(
                    account_id=f"a{index}", handle=f"@a{index}", kind=kind, followers=10
                )
            )
        community.add_tweet(
            Tweet(tweet_id="t1", author_id="a0", day=1.0, text="hello", mentions=("a1",))
        )
        community.add_tweet(
            Tweet(tweet_id="t2", author_id="a1", day=2.0, text="re", retweet_of="a0")
        )
        return community

    def test_interaction_counters(self):
        community = self.make_community()
        assert community.mentions_received("a1") == 1
        assert community.retweets_received("a0") == 1
        assert community.mentions_received("a0") == 0

    def test_tweet_from_unknown_author_rejected(self):
        community = self.make_community()
        with pytest.raises(UnknownUserError):
            community.add_tweet(Tweet(tweet_id="x", author_id="ghost", day=1.0))

    def test_record_received_external_volume(self):
        community = self.make_community()
        community.record_received("a0", mentions=10, retweets=5)
        activity = community.activity("a0")
        assert activity.mentions_received == 10
        assert activity.retweets_received == 6  # 5 external + 1 in-community

    def test_record_received_unknown_account_rejected(self):
        with pytest.raises(UnknownUserError):
            self.make_community().record_received("ghost", mentions=1)

    def test_activity_relative_measures(self):
        activity = AccountActivity(
            account_id="a", kind=AccountKind.PERSON,
            interactions=10, mentions_received=5, retweets_received=20,
        )
        assert activity.relative_mentions == pytest.approx(0.5)
        assert activity.relative_retweets == pytest.approx(2.0)
        assert activity.measure("interactions") == 10
        assert activity.measure("relative_retweets") == pytest.approx(2.0)
        with pytest.raises(KeyError):
            activity.measure("nope")

    def test_zero_interaction_relative_measures_are_zero(self):
        activity = AccountActivity(
            account_id="a", kind=AccountKind.BRAND,
            interactions=0, mentions_received=3, retweets_received=4,
        )
        assert activity.relative_mentions == 0.0
        assert activity.relative_retweets == 0.0

    def test_serialisation_roundtrip(self):
        community = self.make_community()
        rebuilt = MicroblogCommunity.from_dict(community.to_dict())
        assert len(rebuilt) == len(community)
        assert rebuilt.mentions_received("a1") == community.mentions_received("a1")
        assert len(rebuilt.tweets_by("a0")) == len(community.tweets_by("a0"))

    def test_to_source_exposes_microblog_as_generic_source(self):
        source = self.make_community().to_source("mini-source")
        assert source.source_type is SourceType.MICROBLOG
        assert source.post_count() == 2
        assert "a0" in source.users
        # Mentions and retweets become generic interactions.
        assert len(source.interactions) == 2


class TestSpecValidation:
    def test_default_spec_is_valid(self):
        MicroblogSpec().validate()

    def test_bad_shares_rejected(self):
        profiles = (
            ClassProfile(AccountKind.PERSON, share=0.2, tweet_volume=10,
                         mention_volume=10, retweet_volume=10),
        )
        with pytest.raises(ConfigurationError):
            MicroblogSpec(class_profiles=profiles).validate()

    def test_bad_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassProfile(
                AccountKind.PERSON, share=0.5, tweet_volume=0.0,
                mention_volume=1, retweet_volume=1,
            ).validate()

    def test_too_few_accounts_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroblogSpec(account_count=2).validate()


class TestGenerator:
    def test_account_count_and_determinism(self, small_community):
        assert len(small_community) == 60
        again = MicroblogGenerator(
            MicroblogSpec(account_count=60, seed=5, sample_tweet_count=6)
        ).generate()
        assert [a.account_id for a in again] == [a.account_id for a in small_community]
        assert [again.activity(a.account_id).interactions for a in again] == [
            small_community.activity(a.account_id).interactions for a in small_community
        ]

    def test_every_class_is_represented(self, small_community):
        kinds = {account.kind for account in small_community}
        assert kinds == {AccountKind.PERSON, AccountKind.NEWS, AccountKind.BRAND}

    def test_every_account_has_activity(self, small_community):
        for activity in small_community.activities():
            assert activity.interactions >= 1
            assert activity.mentions_received >= 0
            assert activity.retweets_received >= 0

    def test_class_level_ordering_holds_on_average(self, london_dataset):
        """News dominate retweets, people dominate mentions, brands tweet least."""
        def mean(values):
            return sum(values) / len(values)

        groups_interactions = london_dataset.measure_groups("interactions")
        groups_mentions = london_dataset.measure_groups("mentions")
        groups_retweets = london_dataset.measure_groups("retweets")
        assert mean(groups_interactions["person"]) > mean(groups_interactions["brand"])
        assert mean(groups_interactions["news"]) > mean(groups_interactions["brand"])
        assert mean(groups_mentions["person"]) > mean(groups_mentions["news"])
        assert mean(groups_retweets["news"]) > mean(groups_retweets["person"])
        assert mean(groups_retweets["news"]) > mean(groups_retweets["brand"])


class TestTwitaholicLikeService:
    def test_top_accounts_are_sorted_by_score(self, small_community):
        service = TwitaholicLikeService(small_community)
        top = service.top_accounts(10)
        scores = [service.score(account) for account in top]
        assert scores == sorted(scores, reverse=True)
        assert len(top) == 10

    def test_location_filter(self, small_community):
        service = TwitaholicLikeService(small_community)
        assert service.top_accounts(5, location="Atlantis") == []
        assert len(service.top_accounts(5, location="London")) == 5
