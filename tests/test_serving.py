"""Eager refresh serving layer: equivalence, coalescing and the diff tiers.

The contract under test extends ``tests/test_incremental_assessment.py``
one layer out: an :class:`~repro.serving.EagerRefreshScheduler` driving
the consumers' refresh entry points *ahead of* reads must never change
what a read returns — under every scheduler mode, a mutation stream ends
in results **bit-identical** to plain lazy refresh and to from-scratch
rebuilds — while coalescing must provably collapse a burst of N events
into at most one patch per consumer (counter-asserted, not timed).

The two diff refinements the serving PR closes alongside are pinned here
too: the contributor model's per-discussion-restricted community walk
(ROADMAP (e)) and the per-measure normaliser fit signatures confining
refits (ROADMAP (f)).
"""

from __future__ import annotations

import time

import pytest

from _timing import wait_until
from repro.core.contributor_quality import ContributorQualityModel
from repro.core.measures import source_measure_registry
from repro.core.normalization import (
    BenchmarkNormalizer,
    MinMaxNormalizer,
    ZScoreNormalizer,
)
from repro.core.source_quality import SourceQualityModel
from repro.errors import ServingError
from repro.search.engine import SearchEngine
from repro.serving import EagerRefreshScheduler, RefreshMode
from repro.sources.corpus import SourceCorpus
from repro.sources.crawler import CommunityWalkCache, Crawler
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.models import Discussion, Interaction, InteractionType, Post, Source
from repro.sources.webstats import AlexaLikeService


def _fresh_corpus(count: int = 10, seed: int = 71) -> SourceCorpus:
    return CorpusGenerator(
        CorpusSpec(source_count=count, seed=seed, discussion_budget=8, user_budget=10)
    ).generate()


def _extra_source(source_id: str = "serve-extra", seed: int = 53) -> Source:
    return SourceGenerator(
        SourceSpec(
            source_id=source_id,
            focus_categories=("travel", "food"),
            latent_popularity=0.75,
            latent_engagement=0.6,
            discussion_budget=6,
            user_budget=8,
        ),
        seed=seed,
    ).generate()


def _grow(source: Source, text: str) -> None:
    discussion = Discussion(
        discussion_id=f"serve-grown-{source.content_revision}",
        category="travel",
        title=text,
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(
            post_id=f"serve-grown-post-{source.content_revision}",
            author_id="u1",
            day=2.0,
            text=text,
        )
    )
    source.add_discussion(discussion)


def _mutate(corpus: SourceCorpus, event: int) -> None:
    """One deterministic mutation, rotating through the mutation kinds."""
    kind = event % 4
    if kind == 0:
        corpus.add(_extra_source(f"serve-stream-{event}", seed=60 + event))
    elif kind == 1:
        corpus.remove(corpus.source_ids()[event % len(corpus)])
    elif kind == 2:
        _grow(corpus.sources()[event % len(corpus)], f"travel stream growth {event}")
    else:
        source = corpus.sources()[event % len(corpus)]
        post = next(iter(source.posts()), None)
        if post is not None:
            post.text = f"reworded travel stream content {event}"
        corpus.touch(source.source_id)


def _assert_engine_matches_rebuild(engine: SearchEngine, corpus: SourceCorpus) -> None:
    rebuilt = SearchEngine(corpus, panel=AlexaLikeService())
    for query in ("travel flight resort", "food dinner recipe"):
        assert engine.search(query, 10) == rebuilt.search(query, 10)
    assert engine.static_rank() == rebuilt.static_rank()


def _assert_model_matches_rebuild(
    model: SourceQualityModel, corpus: SourceCorpus
) -> None:
    live = model.assessment_context(corpus)
    fresh = SourceQualityModel(model.domain).assessment_context(corpus)
    assert [a.source_id for a in live.ranking] == [a.source_id for a in fresh.ranking]
    assert {s: a.overall for s, a in live.assessments.items()} == {
        s: a.overall for s, a in fresh.assessments.items()
    }
    assert live.raw_vectors == fresh.raw_vectors
    assert live.normalized_vectors == fresh.normalized_vectors


class _FakeClock:
    """Deterministic stand-in for ``time.monotonic``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSchedulerModes:
    def test_sync_mode_keeps_reads_clean_and_identical(self, travel_domain):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(corpus, RefreshMode.SYNC) as scheduler:
            scheduler.register_search_engine(engine)
            scheduler.register_source_model(model)
            scheduler.refresh_all()  # warm so mutations patch incrementally
            _grow(corpus.sources()[0], "travel eager growth")
            # The patch already ran inside the mutation's notification:
            # nothing is pending and the next read is a flag-only no-op.
            assert not scheduler.pending
            noops_before = engine.counters.get("refresh_noops")
            engine.search("travel flight resort", 5)
            assert engine.counters.get("refresh_noops") > noops_before
            assert model.counters.get("context_patches") == 1
            _assert_engine_matches_rebuild(engine, corpus)
            _assert_model_matches_rebuild(model, corpus)

    def test_coalescing_collapses_burst_into_single_patch(self, travel_domain):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(corpus, RefreshMode.COALESCING) as scheduler:
            scheduler.register_search_engine(engine)
            scheduler.register_source_model(model)
            scheduler.refresh_all()
            touches = 6
            for index in range(touches):
                corpus.touch(corpus.source_ids()[index % len(corpus)])
            assert scheduler.counters.get("notifications") == touches
            assert scheduler.counters.get("coalesced_events") == touches - 1
            refreshes_before = engine.counters.get("incremental_refreshes")
            patches_before = model.counters.get("context_patches")
            assert scheduler.flush() == 2  # one patch per consumer, not per touch
            assert engine.counters.get("incremental_refreshes") == refreshes_before + 1
            assert model.counters.get("context_patches") == patches_before + 1
            # A second flush has nothing left to do.
            assert scheduler.flush() == 0
            _assert_engine_matches_rebuild(engine, corpus)
            _assert_model_matches_rebuild(model, corpus)

    def test_deferred_mode_waits_for_flush(self, travel_domain):
        corpus = _fresh_corpus()
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_source_model(model)
            scheduler.refresh_all()
            _grow(corpus.sources()[1], "travel deferred growth")
            assert scheduler.pending
            assert model.counters.get("context_patches") == 0
            assert scheduler.poll() == 1  # deferred mode is due immediately
            assert model.counters.get("context_patches") == 1
            _assert_model_matches_rebuild(model, corpus)

    def test_coalescing_debounce_window_with_fake_clock(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        clock = _FakeClock()
        with EagerRefreshScheduler(
            corpus,
            RefreshMode.COALESCING,
            debounce_window=0.05,
            max_delay=0.5,
            clock=clock,
        ) as scheduler:
            scheduler.register_search_engine(engine)
            corpus.touch(corpus.source_ids()[0])
            assert not scheduler.due()  # inside the quiet window
            assert scheduler.poll() == 0
            clock.advance(0.03)
            corpus.touch(corpus.source_ids()[1])  # stream still active
            clock.advance(0.03)
            assert not scheduler.due()  # window restarted by the second event
            clock.advance(0.03)
            assert scheduler.due()  # quiet for > debounce_window now
            assert scheduler.poll() == 1
            assert not scheduler.pending

    def test_coalescing_max_delay_bounds_starvation(self):
        corpus = _fresh_corpus()
        engine = SearchEngine(corpus, panel=AlexaLikeService())
        clock = _FakeClock()
        with EagerRefreshScheduler(
            corpus,
            RefreshMode.COALESCING,
            debounce_window=0.05,
            max_delay=0.2,
            clock=clock,
        ) as scheduler:
            scheduler.register_search_engine(engine)
            # A steady stream that never goes quiet for the full window...
            for _ in range(10):
                corpus.touch(corpus.source_ids()[0])
                clock.advance(0.03)
            # ...still becomes due once the oldest event waited max_delay.
            assert scheduler.due()
            assert scheduler.poll() == 1

    @pytest.mark.parametrize(
        "mode", [RefreshMode.SYNC, RefreshMode.DEFERRED, RefreshMode.COALESCING]
    )
    def test_mutation_stream_is_bit_identical_to_lazy_and_rebuild(
        self, travel_domain, mode
    ):
        """The acceptance contract: eager == lazy == rebuild, per event."""
        eager_corpus = _fresh_corpus(8, seed=81)
        lazy_corpus = _fresh_corpus(8, seed=81)
        eager_engine = SearchEngine(eager_corpus, panel=AlexaLikeService())
        lazy_engine = SearchEngine(lazy_corpus, panel=AlexaLikeService())
        eager_model = SourceQualityModel(travel_domain)
        lazy_model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(eager_corpus, mode) as scheduler:
            scheduler.register_search_engine(eager_engine)
            scheduler.register_source_model(eager_model)
            scheduler.refresh_all()
            lazy_model.assessment_context(lazy_corpus)
            for event in range(6):
                _mutate(eager_corpus, event)
                _mutate(lazy_corpus, event)
                scheduler.flush()  # the eager patch (no-op in sync mode)
                eager_context = eager_model.assessment_context(eager_corpus)
                lazy_context = lazy_model.assessment_context(lazy_corpus)
                assert [a.source_id for a in eager_context.ranking] == [
                    a.source_id for a in lazy_context.ranking
                ]
                assert {
                    s: a.overall for s, a in eager_context.assessments.items()
                } == {s: a.overall for s, a in lazy_context.assessments.items()}
                assert eager_context.raw_vectors == lazy_context.raw_vectors
                assert (
                    eager_context.normalized_vectors == lazy_context.normalized_vectors
                )
                query = "travel flight resort"
                assert eager_engine.search(query, 10) == lazy_engine.search(query, 10)
            _assert_engine_matches_rebuild(eager_engine, eager_corpus)
            _assert_model_matches_rebuild(eager_model, eager_corpus)

    def test_eager_read_is_o1_after_flush(self, travel_domain, monkeypatch):
        """After the eager patch, reads must not run any O(n) probe."""
        corpus = _fresh_corpus()
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register_source_model(model)
            scheduler.refresh_all()
            _grow(corpus.sources()[2], "travel hot read growth")
            scheduler.flush()
            patched = model.assessment_context(corpus)

            def boom(*_args, **_kwargs):  # pragma: no cover - must never run
                raise AssertionError("O(n) staleness probe ran on the hot path")

            monkeypatch.setattr(corpus, "content_fingerprint", boom)
            monkeypatch.setattr(corpus, "content_probe", boom)
            assert model.assessment_context(corpus) is patched


class TestSchedulerRegistration:
    def test_contributor_consumer_is_filtered_by_source(self, travel_domain):
        corpus = _fresh_corpus(4)
        watched = corpus.sources()[0]
        other = corpus.sources()[1]
        model = ContributorQualityModel(travel_domain)
        model.assess_source(watched)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            name = scheduler.register_contributor_model(model, watched)
            corpus.touch(other.source_id)
            scheduler.flush()
            stats = scheduler.stats()[name]
            assert stats.patches == 0 and stats.skips == 1
            corpus.touch(watched.source_id)
            scheduler.flush()
            assert scheduler.stats()[name].patches == 1
            assert model.counters.get("context_patches") >= 1

    def test_sync_refresh_inside_announcement_sees_the_mutation(self, travel_domain):
        """The scheduler may run before the consumer's own watcher: the
        revision/version cross-checks must still detect the mutation."""
        corpus = _fresh_corpus(4)
        # Scheduler subscribes BEFORE the consumers' trackers exist.
        with EagerRefreshScheduler(corpus, RefreshMode.SYNC) as scheduler:
            engine = SearchEngine(corpus, panel=AlexaLikeService())
            source = corpus.sources()[0]
            contributor_model = ContributorQualityModel(travel_domain)
            contributor_model.assess_source(source)
            scheduler.register_search_engine(engine)
            scheduler.register_contributor_model(contributor_model, source)
            corpus.touch(source.source_id)
            # Both consumers were patched eagerly despite notification order.
            assert engine.counters.get("incremental_refreshes") == 1
            assert contributor_model.counters.get("context_patches") == 1
            _assert_engine_matches_rebuild(engine, corpus)

    def test_unregister_and_close(self, travel_domain):
        corpus = _fresh_corpus(4)
        model = SourceQualityModel(travel_domain)
        scheduler = EagerRefreshScheduler(corpus, RefreshMode.DEFERRED)
        name = scheduler.register_source_model(model)
        assert scheduler.consumer_names() == [name]
        assert scheduler.unregister(name) and not scheduler.unregister(name)
        scheduler.close()
        notifications = scheduler.counters.get("notifications")
        corpus.touch(corpus.source_ids()[0])  # after close: not observed
        assert scheduler.counters.get("notifications") == notifications
        scheduler.close()  # idempotent

    def test_sync_mode_error_does_not_break_the_mutation(self, travel_domain):
        """A failing eager refresh must not make corpus mutations raise,
        nor starve later-subscribed listeners of the change event."""
        corpus = _fresh_corpus(4)
        with EagerRefreshScheduler(corpus, RefreshMode.SYNC) as scheduler:
            scheduler.register("broken", lambda: 1 / 0)
            model = SourceQualityModel(travel_domain)
            model.rank(corpus)  # subscribes its tracker after the scheduler
            corpus.touch(corpus.source_ids()[0])  # must not raise
            stats = scheduler.stats()["broken"]
            assert stats.errors == 1
            assert stats.last_error.startswith("ZeroDivisionError")
            # The model's own subscription still saw the event.
            model.rank(corpus)
            assert model.counters.get("context_patches") == 1

    def test_auto_names_stay_unique_after_unregister(self):
        corpus = _fresh_corpus(4)
        engines = [SearchEngine(corpus, panel=AlexaLikeService()) for _ in range(3)]
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            first = scheduler.register_search_engine(engines[0])
            second = scheduler.register_search_engine(engines[1])
            scheduler.unregister(first)
            third = scheduler.register_search_engine(engines[2])
            # The recycled registry size must not alias a live consumer.
            assert third != second
            assert scheduler.consumer_names() == [second, third]

    def test_foreground_refresh_error_is_raised_and_recorded(self):
        corpus = _fresh_corpus(4)
        with EagerRefreshScheduler(corpus, RefreshMode.DEFERRED) as scheduler:
            scheduler.register("broken", lambda: 1 / 0)
            corpus.touch(corpus.source_ids()[0])
            with pytest.raises(ServingError):
                scheduler.flush()
            stats = scheduler.stats()["broken"]
            assert stats.errors == 1
            assert stats.last_error.startswith("ZeroDivisionError")

    def test_invalid_configuration_rejected(self):
        corpus = _fresh_corpus(4)
        with pytest.raises(ServingError):
            EagerRefreshScheduler(corpus, debounce_window=-1.0)
        with pytest.raises(ServingError):
            EagerRefreshScheduler(corpus, debounce_window=0.5, max_delay=0.1)

    def test_background_worker_applies_patch(self, travel_domain):
        corpus = _fresh_corpus(4)
        model = SourceQualityModel(travel_domain)
        with EagerRefreshScheduler(
            corpus, RefreshMode.DEFERRED
        ) as scheduler:
            scheduler.register_source_model(model)
            scheduler.refresh_all()
            scheduler.start()
            assert scheduler.running
            _grow(corpus.sources()[0], "travel background growth")
            wait_until(
                lambda: not scheduler.pending,
                message="background worker to drain the pending marker",
            )
            wait_until(
                lambda: model.counters.get("context_patches") > 0,
                message="background worker to apply the context patch",
            )
            assert model.counters.get("context_patches") == 1
            scheduler.stop()
            assert not scheduler.running
        # No lock needed: the worker is stopped and the scheduler closed,
        # so nothing patches concurrently with the rebuild comparison.
        # (The deprecated ``scheduler.lock`` alias has its own dedicated
        # test; holding a composite write lock while a *fresh* private
        # model builds its context also trips the runtime lock-order
        # validator, which cannot see that the fresh model's locks are
        # thread-private.)
        _assert_model_matches_rebuild(model, corpus)


class TestDiscussionRestrictedWalk:
    """ROADMAP (e): the community walk re-visits only changed discussions."""

    def test_growth_restricts_the_walk(self, travel_domain):
        source = _extra_source("walk-growth")
        model = ContributorQualityModel(travel_domain)
        model.assess_source(source)
        discussions_before = len(source.discussions)
        _grow(source, "travel walk growth")
        live = model.assess_source(source)
        assert model.counters.get("community_restricted_walks") == 1
        assert model.counters.get("discussions_rewalked") == 1  # just the new one
        assert model.counters.get("discussions_reused") == discussions_before
        fresh = ContributorQualityModel(travel_domain).assess_source(source)
        assert {u: a.overall for u, a in live.items()} == {
            u: a.overall for u, a in fresh.items()
        }
        for user_id in fresh:
            assert live[user_id].snapshot == fresh[user_id].snapshot

    def test_explicit_touch_forces_full_walk(self, travel_domain):
        source = _extra_source("walk-touch")
        model = ContributorQualityModel(travel_domain)
        model.assess_source(source)
        # A count-preserving edit announced via touch() cannot be localised
        # to a discussion: the whole community must be re-walked.
        post = next(iter(source.posts()))
        post.tags = ("retagged",)
        source.touch()
        live = model.assess_source(source)
        assert model.counters.get("community_full_walks") == 1
        assert model.counters.get("community_restricted_walks") == 0
        fresh = ContributorQualityModel(travel_domain).assess_source(source)
        for user_id in fresh:
            assert live[user_id].snapshot == fresh[user_id].snapshot
            assert live[user_id].overall == fresh[user_id].overall

    def test_interaction_growth_reuses_discussion_fragments(self, travel_domain):
        source = _extra_source("walk-interactions")
        model = ContributorQualityModel(travel_domain)
        before = model.assess_source(source)
        users = sorted(before)
        source.add_interaction(
            Interaction(
                interaction_type=InteractionType.LIKE,
                actor_id=users[0],
                target_user_id=users[-1],
                day=30.0,
            )
        )
        live = model.assess_source(source)
        assert model.counters.get("community_restricted_walks") == 1
        assert model.counters.get("discussions_rewalked") == 0
        fresh = ContributorQualityModel(travel_domain).assess_source(source)
        for user_id in fresh:
            assert live[user_id].snapshot == fresh[user_id].snapshot

    def test_walk_cache_is_bit_identical_to_per_user_crawl(self, travel_domain):
        source = _extra_source("walk-oracle")
        crawler = Crawler()
        walk = CommunityWalkCache()
        crawler.crawl_contributors_batched(source, walk=walk)
        _grow(source, "travel oracle growth")
        restricted = crawler.crawl_contributors_batched(source, walk=walk)
        assert walk.last_stats["full_walk"] == 0
        assert walk.last_stats["discussions_walked"] == 1
        assert restricted == crawler.crawl_contributors(source)  # float for float

    def test_duplicate_discussion_ids_disable_fragment_reuse(self):
        source = _extra_source("walk-duplicates")
        duplicated = source.discussions[0].discussion_id
        source.add_discussion(
            Discussion(
                discussion_id=duplicated,
                category="travel",
                title="duplicate thread id",
                opened_at=2.0,
                posts=[Post(post_id="dup-post", author_id="u1", day=3.0, text="x y")],
            )
        )
        crawler = Crawler()
        walk = CommunityWalkCache()
        first = crawler.crawl_contributors_batched(source, walk=walk)
        assert walk.last_stats["full_walk"] == 1
        again = crawler.crawl_contributors_batched(source, walk=walk)
        assert walk.last_stats["full_walk"] == 1  # never trusts aliased ids
        assert first == again == crawler.crawl_contributors(source)


class TestFitSignatures:
    """ROADMAP (f): refits renormalise only measures whose fit moved."""

    def test_builtin_normalizers_expose_signatures(self):
        registry = source_measure_registry()
        reference = {"traffic_rank": [1.0, 2.0, 3.0], "daily_visitors": [5.0, 9.0]}
        for normalizer in (
            BenchmarkNormalizer(registry),
            MinMaxNormalizer(registry),
            ZScoreNormalizer(registry),
        ):
            assert normalizer.fit_signature() == {}
            normalizer.fit(reference)
            signature = normalizer.fit_signature()
            assert set(signature) == set(reference)
            # Refit on identical values: every signature is reproduced.
            normalizer.fit(reference)
            assert normalizer.fit_signature() == signature

    def test_refit_recomputes_log_scale_membership(self):
        """A refit must normalise exactly like a fresh instance fitted on
        the same values — including dropping a measure out of the
        log-scaled set when its spread shrinks below the threshold."""
        registry = source_measure_registry()
        wide = {"daily_visitors": [1.0, 2.0, 3.0, 1000.0]}  # benchmark >> median
        narrow = {"daily_visitors": [10.0, 12.0, 14.0, 15.0]}
        refitted = BenchmarkNormalizer(registry).fit(wide)
        refitted.fit(narrow)
        fresh = BenchmarkNormalizer(registry).fit(narrow)
        assert refitted.fit_signature() == fresh.fit_signature()
        assert refitted.normalize("daily_visitors", 12.0) == fresh.normalize(
            "daily_visitors", 12.0
        )

    def test_background_worker_rejects_injected_clock(self):
        corpus = _fresh_corpus(4)
        with EagerRefreshScheduler(
            corpus, RefreshMode.COALESCING, clock=_FakeClock()
        ) as scheduler:
            with pytest.raises(ServingError):
                scheduler.start()

    def test_renormalize_measures_matches_normalize_many(self):
        registry = source_measure_registry()
        normalizer = BenchmarkNormalizer(registry)
        vectors = {
            f"s{i}": {"traffic_rank": float(i + 1), "daily_visitors": float(i * 10)}
            for i in range(6)
        }
        normalizer.fit(
            {
                "traffic_rank": [v["traffic_rank"] for v in vectors.values()],
                "daily_visitors": [v["daily_visitors"] for v in vectors.values()],
            }
        )
        full = normalizer.normalize_many(vectors)
        partial = normalizer.renormalize_measures(
            vectors, {"daily_visitors"}, previous=full
        )
        assert partial == full
        # The reused measure really was copied, not recomputed.
        assert all(
            partial[s]["traffic_rank"] == full[s]["traffic_rank"] for s in vectors
        )

    def test_token_mismatch_refit_with_unmoved_fit_skips_renormalisation(
        self, travel_domain
    ):
        """Interleaving corpora refits the shared normaliser; when the refit
        reproduces the previous fit exactly, no measure is renormalised."""
        corpus_a = _fresh_corpus(8, seed=91)
        corpus_b = _fresh_corpus(8, seed=92)
        model = SourceQualityModel(travel_domain)
        model.rank(corpus_a)
        model.rank(corpus_b)  # refits the shared normaliser on B
        corpus_a.touch(corpus_a.source_ids()[0])  # content-preserving touch
        live = model.assessment_context(corpus_a)
        assert model.counters.get("fit_signature_skips") >= 1
        fresh = SourceQualityModel(travel_domain).assessment_context(corpus_a)
        assert live.normalized_vectors == fresh.normalized_vectors
        assert {s: a.overall for s, a in live.assessments.items()} == {
            s: a.overall for s, a in fresh.assessments.items()
        }

    def test_growth_refit_stays_bit_identical(self, travel_domain):
        corpus = _fresh_corpus(10, seed=93)
        model = SourceQualityModel(travel_domain)
        model.rank(corpus)
        _grow(corpus.sources()[4], "travel signature growth")
        live = model.assessment_context(corpus)
        fresh = SourceQualityModel(travel_domain).assessment_context(corpus)
        assert live.normalized_vectors == fresh.normalized_vectors
        assert live.raw_vectors == fresh.raw_vectors
        assert [a.source_id for a in live.ranking] == [
            a.source_id for a in fresh.ranking
        ]

    def test_contributor_token_mismatch_refit_confined(self, travel_domain):
        source_a = _extra_source("fitsig-a", seed=55)
        source_b = _extra_source("fitsig-b", seed=56)
        model = ContributorQualityModel(travel_domain)
        model.assess_source(source_a)
        model.assess_source(source_b)  # refits the shared normaliser on B
        source_a.touch()
        live = model.assess_source(source_a)
        assert model.counters.get("fit_signature_skips") >= 1
        fresh = ContributorQualityModel(travel_domain).assess_source(source_a)
        for user_id in fresh:
            assert (
                live[user_id].score.normalized_values
                == fresh[user_id].score.normalized_values
            )
            assert live[user_id].overall == fresh[user_id].overall
