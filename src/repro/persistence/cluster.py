"""Cluster-level persistence: one manifest over N per-shard corpus stores.

A sharded deployment (:mod:`repro.sharding`) persists each worker's shard
through an ordinary :class:`~repro.persistence.store.CorpusStore` — same
snapshot + write-ahead-journal files, same recovery ladder, stamped with
the shard identity (see ``CorpusStore(shard=...)``).  This module adds the
thin layer that binds them into one recoverable unit::

    <directory>/
        cluster.json     manifest: {"shard_count": N}
        shard-0/         CorpusStore directory of shard 0
        shard-1/         ...

Crash damage *within* a shard store degrades through that store's own
recovery ladder.  A *missing* shard directory is different: recovering
without it would silently drop every source the shard owned, so
:meth:`ClusterStore.recover_stack` raises
:class:`~repro.errors.MissingShardSnapshotError` naming the shard an
operator has to restore.  (A shard store directory is created — journal
included — the moment its worker attaches, so "missing" always means the
directory was lost, never that the shard simply had no data yet.)

The merged recovery corpus holds every shard's sources in sorted
source-id order — the canonical cluster order, chosen because shard
recovery order must not leak into the merged corpus.  Read results never
depend on it: the sharded read protocols are insertion-order independent
by construction (see ``docs/ARCHITECTURE.md``, "Cross-process sharded
serving").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.errors import MissingShardSnapshotError, PersistenceError
from repro.persistence.format import atomic_write_json
from repro.persistence.store import CorpusStore, RecoveredStack, RecoveryResult
from repro.sources.corpus import SourceCorpus

__all__ = ["ClusterStore"]


class ClusterStore:
    """Manifest + per-shard :class:`CorpusStore` set of a sharded corpus."""

    MANIFEST_NAME = "cluster.json"

    def __init__(
        self,
        directory: str | Path,
        *,
        shard_count: Optional[int] = None,
        fsync: bool = True,
        checkpoint_every: int = 256,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self.checkpoint_every = checkpoint_every
        recorded = self._read_manifest()
        if recorded is None:
            if shard_count is None:
                raise PersistenceError(
                    "no cluster manifest found and no shard_count given",
                    path=self.manifest_path,
                )
            if shard_count < 1:
                raise PersistenceError(
                    f"shard_count must be at least 1, got {shard_count}"
                )
            self.shard_count = shard_count
            atomic_write_json(
                self.manifest_path, {"shard_count": shard_count}, fsync=fsync
            )
        else:
            if shard_count is not None and shard_count != recorded:
                raise PersistenceError(
                    f"cluster manifest records {recorded} shards "
                    f"but the store was opened with shard_count={shard_count}",
                    path=self.manifest_path,
                )
            self.shard_count = recorded

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    def _read_manifest(self) -> Optional[int]:
        if not self.manifest_path.exists():
            return None
        try:
            payload = json.loads(self.manifest_path.read_text("utf-8"))
            count = int(payload["shard_count"])
        except (OSError, ValueError, TypeError, KeyError) as exc:
            raise PersistenceError(
                f"unreadable cluster manifest: {exc!r}", path=self.manifest_path
            ) from exc
        if count < 1:
            raise PersistenceError(
                f"cluster manifest records an invalid shard count {count}",
                path=self.manifest_path,
            )
        return count

    def shard_directory(self, shard_index: int) -> Path:
        """The store directory of one shard."""
        self._check_index(shard_index)
        return self.directory / f"shard-{shard_index}"

    def shard_store(self, shard_index: int) -> CorpusStore:
        """Open (creating if needed) the :class:`CorpusStore` of one shard.

        The store is stamped with ``shard=(index, count)``, so its
        checkpoints carry the shard identity and its recovery rejects a
        snapshot that belongs to a different partition.
        """
        self._check_index(shard_index)
        return CorpusStore(
            self.directory / f"shard-{shard_index}",
            fsync=self._fsync,
            checkpoint_every=self.checkpoint_every,
            shard=(shard_index, self.shard_count),
        )

    def _check_index(self, shard_index: int) -> None:
        if not 0 <= shard_index < self.shard_count:
            raise PersistenceError(
                f"shard index {shard_index} is not within the cluster's "
                f"{self.shard_count}-way split",
                path=self.directory,
            )

    # -- recovery ----------------------------------------------------------------------

    def recover_stack(
        self,
        *,
        domain: Optional[Any] = None,
        build_engine: bool = True,
    ) -> RecoveredStack:
        """Recover every shard and merge them into one corpus.

        Each shard runs its own snapshot-ladder recovery and journal
        replay; a shard whose directory is absent raises
        :class:`~repro.errors.MissingShardSnapshotError` *before* any
        shard is materialised.  The merged corpus holds the union of the
        shards' sources in sorted source-id order at the maximum of the
        shard versions; consumers are cold-built over it (per-shard index
        sections are normalised by shard-local statistics and cannot be
        merged warm).  Unlike ``CorpusStore.recover_stack`` this never
        attaches — a recovered cluster is re-served by restarting the
        shard workers, each attaching to its own store.
        """
        for shard_index in range(self.shard_count):
            shard_dir = self.directory / f"shard-{shard_index}"
            if not shard_dir.is_dir():
                raise MissingShardSnapshotError(shard_index, path=shard_dir)

        merged_notes: list[str] = []
        applied = 0
        skipped = 0
        version = 0
        sources: dict[str, Any] = {}
        for shard_index in range(self.shard_count):
            result = self.shard_store(shard_index).recover()
            result.replay()
            applied += result.applied
            skipped += result.skipped
            version = max(version, result.corpus.version)
            merged_notes.extend(
                f"shard {shard_index}: {note}" for note in result.notes
            )
            for source in result.corpus:
                if source.source_id in sources:
                    raise PersistenceError(
                        f"source {source.source_id!r} is present in more than "
                        "one shard store",
                        path=self.directory,
                    )
                sources[source.source_id] = source

        corpus = SourceCorpus()
        for source_id in sorted(sources):
            corpus.add(sources[source_id])
        corpus._restore_version(version)
        merged = RecoveryResult(
            corpus=corpus,
            snapshot_used=f"cluster ({self.shard_count} shard stores)",
            base_version=version,
            notes=merged_notes,
            applied=applied,
            skipped=skipped,
        )

        engine = None
        source_model = None
        if len(corpus) and build_engine:
            from repro.search.engine import SearchEngine

            engine = SearchEngine(corpus)
        if len(corpus) and domain is not None:
            from repro.core.source_quality import SourceQualityModel

            source_model = SourceQualityModel(domain)
        return RecoveredStack(
            corpus=corpus,
            engine=engine,
            source_model=source_model,
            contributor_models={},
            result=merged,
        )
