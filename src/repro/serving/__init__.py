"""Concurrent eager-refresh serving layer.

Turns the corpus's change notifications — fanned out by the shared
:class:`~repro.sources.diffing.InvalidationBus` — into *eager background
refresh* of the incremental consumers (search engine, quality models), so
that latency-critical reads find a clean dirty flag and serve in O(1)
instead of paying the patch cost on the read path.

The layer is built from three pieces:

* :mod:`repro.serving.rwlock` — a reentrant reader/writer lock; one per
  consumer, so reads take a shared lock and patches exclude readers only
  for the O(1) snapshot swap;
* :mod:`repro.serving.queues` — per-consumer work queues, each with its
  own bus subscription and drain serialisation, so one consumer's patch
  never blocks another's reads or patches;
* :mod:`repro.serving.scheduler` — the coordinator: modes (sync /
  deferred / coalescing with a debounce window), the foreground pumps
  (``flush``/``poll``/``drain``), the background worker and the composite
  ``read_lock()``/``write_lock()`` freezes.

See ``docs/ARCHITECTURE.md`` for the consumer registration contract and
the concurrency model.
"""

from repro.serving.queues import ConsumerQueue, ConsumerStats
from repro.serving.rwlock import ReadWriteLock
from repro.serving.scheduler import (
    EagerRefreshScheduler,
    RefreshMode,
    register_worker_stack,
)

__all__ = [
    "ConsumerQueue",
    "ConsumerStats",
    "EagerRefreshScheduler",
    "ReadWriteLock",
    "RefreshMode",
    "register_worker_stack",
]
