"""Keyword search engine with a popularity-dominated static rank.

The engine indexes the crawlable text surface of every source (titles,
posts, tags, categories) and answers keyword queries.  Result ordering
combines:

* a *static* score dominated by traffic and inbound links (the behaviour
  the paper attributes to Google), and
* a *topical* score measuring how well the source's content matches the
  query terms.

The relative weight of the two parts is configurable; with the default
configuration the static part dominates, so re-ranking by the quality model
produces the substantial displacements reported in Section 4.1.
"""

from __future__ import annotations

import hashlib
import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SearchError
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Source
from repro.sources.webstats import AlexaLikeService, PanelObservation, WebStatsPanel

__all__ = ["SearchEngineConfig", "SearchResult", "SearchEngine"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9][a-z0-9\-]+")


def tokenize(text: str) -> list[str]:
    """Lower-case alphanumeric tokenisation used by the index and queries."""
    return _TOKEN_PATTERN.findall(text.lower())


def _query_noise(query_key: str, source_id: str) -> float:
    """Deterministic pseudo-random score in [0, 1] per (query, site) pair."""
    digest = hashlib.sha256(f"{query_key}|{source_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


@dataclass(frozen=True)
class SearchEngineConfig:
    """Configuration of the ranking function.

    ``static_weight`` and ``topical_weight`` blend the popularity prior and
    the keyword match; the defaults make the static part dominant, matching
    the paper's characterisation of general-purpose search.

    ``query_noise_weight`` adds a deterministic per-(query, site) component
    standing in for the many query-dependent ranking factors a real search
    engine uses but the simulator does not model (freshness, exact-match
    boosts, personalisation, link context).  It is what keeps any *single*
    quality measure from correlating strongly with the result order, as the
    paper observed for Google.
    """

    static_weight: float = 0.75
    topical_weight: float = 0.25
    query_noise_weight: float = 0.25
    traffic_coefficient: float = 0.6
    inbound_link_coefficient: float = 0.4
    minimum_topical_score: float = 0.0

    def validate(self) -> None:
        """Raise :class:`SearchError` when the configuration is invalid."""
        for name in (
            "static_weight",
            "topical_weight",
            "query_noise_weight",
            "traffic_coefficient",
            "inbound_link_coefficient",
        ):
            if getattr(self, name) < 0:
                raise SearchError(f"{name} must be non-negative")
        if self.static_weight + self.topical_weight <= 0:
            raise SearchError("at least one of the ranking weights must be positive")


@dataclass(frozen=True)
class SearchResult:
    """One search result entry."""

    rank: int
    source_id: str
    score: float
    static_score: float
    topical_score: float


class SearchEngine:
    """Index a corpus and answer keyword queries with popularity-biased ranking."""

    def __init__(
        self,
        corpus: SourceCorpus,
        panel: Optional[WebStatsPanel] = None,
        config: SearchEngineConfig = SearchEngineConfig(),
    ) -> None:
        config.validate()
        self._corpus = corpus
        self._panel = panel or AlexaLikeService()
        self._config = config
        self._term_frequencies: dict[str, Counter[str]] = {}
        self._document_frequencies: Counter[str] = Counter()
        self._document_lengths: dict[str, int] = {}
        self._static_scores: dict[str, float] = {}
        self._build_index()

    @property
    def config(self) -> SearchEngineConfig:
        """The ranking configuration in use."""
        return self._config

    @property
    def corpus(self) -> SourceCorpus:
        """The indexed corpus."""
        return self._corpus

    # -- indexing -----------------------------------------------------------------

    def _document_text(self, source: Source) -> Iterable[str]:
        yield source.name
        yield from source.categories
        for discussion in source.discussions:
            yield discussion.title
            yield discussion.category
            for post in discussion.posts:
                yield post.text
                yield from post.tags

    def _build_index(self) -> None:
        if len(self._corpus) == 0:
            raise SearchError("cannot index an empty corpus")
        observations = self._panel.observe_many(self._corpus)
        max_visitors = max(
            (observation.daily_visitors for observation in observations.values()),
            default=1.0,
        )
        max_links = max(
            (observation.inbound_links for observation in observations.values()),
            default=1,
        )
        for source in self._corpus:
            counter: Counter[str] = Counter()
            for fragment in self._document_text(source):
                counter.update(tokenize(fragment))
            self._term_frequencies[source.source_id] = counter
            self._document_lengths[source.source_id] = max(1, sum(counter.values()))
            for token in counter:
                self._document_frequencies[token] += 1
            self._static_scores[source.source_id] = self._static_score(
                observations[source.source_id], max_visitors, max_links
            )

    def _static_score(
        self, observation: PanelObservation, max_visitors: float, max_links: int
    ) -> float:
        config = self._config
        traffic_part = (
            math.log1p(observation.daily_visitors) / math.log1p(max(1.0, max_visitors))
        )
        link_part = math.log1p(observation.inbound_links) / math.log1p(max(1, max_links))
        total = config.traffic_coefficient + config.inbound_link_coefficient
        if total == 0:
            return 0.0
        return (
            config.traffic_coefficient * traffic_part
            + config.inbound_link_coefficient * link_part
        ) / total

    # -- querying -------------------------------------------------------------------

    def static_rank(self) -> list[str]:
        """Source identifiers ordered by the static (popularity) score alone."""
        return [
            source_id
            for source_id, _ in sorted(
                self._static_scores.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def topical_score(self, source_id: str, terms: list[str]) -> float:
        """TF-IDF-style topical match of one source against query terms."""
        counter = self._term_frequencies.get(source_id)
        if counter is None:
            raise SearchError(f"source {source_id!r} is not indexed")
        if not terms:
            return 0.0
        n_documents = len(self._corpus)
        length = self._document_lengths[source_id]
        score = 0.0
        for term in terms:
            frequency = counter.get(term, 0)
            if frequency == 0:
                continue
            document_frequency = self._document_frequencies.get(term, 0)
            idf = math.log((1 + n_documents) / (1 + document_frequency)) + 1.0
            score += (frequency / length) * idf
        return score

    def search(self, query: str, limit: int = 20) -> list[SearchResult]:
        """Answer ``query`` returning at most ``limit`` ranked results."""
        if limit <= 0:
            raise SearchError("limit must be positive")
        terms = tokenize(query)
        if not terms:
            raise SearchError("query contains no searchable terms")

        config = self._config
        topical_scores = {
            source_id: self.topical_score(source_id, terms)
            for source_id in self._term_frequencies
        }
        max_topical = max(topical_scores.values(), default=0.0)
        query_key = " ".join(terms)

        scored: list[SearchResult] = []
        for source_id, raw_topical in topical_scores.items():
            if raw_topical <= config.minimum_topical_score:
                continue
            normalized_topical = raw_topical / max_topical if max_topical > 0 else 0.0
            noise = _query_noise(query_key, source_id)
            total_weight = (
                config.static_weight + config.topical_weight + config.query_noise_weight
            )
            combined = (
                config.static_weight * self._static_scores[source_id]
                + config.topical_weight * normalized_topical
                + config.query_noise_weight * noise
            ) / total_weight
            scored.append(
                SearchResult(
                    rank=0,
                    source_id=source_id,
                    score=combined,
                    static_score=self._static_scores[source_id],
                    topical_score=normalized_topical,
                )
            )
        scored.sort(key=lambda result: (-result.score, result.source_id))
        return [
            SearchResult(
                rank=index + 1,
                source_id=result.source_id,
                score=result.score,
                static_score=result.static_score,
                topical_score=result.topical_score,
            )
            for index, result in enumerate(scored[:limit])
        ]

    def result_ids(self, query: str, limit: int = 20) -> list[str]:
        """Source identifiers of the ranked results for ``query``."""
        return [result.source_id for result in self.search(query, limit)]
