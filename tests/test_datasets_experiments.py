"""Tests for the evaluation datasets and the per-table experiment drivers."""

from __future__ import annotations

import pytest

from repro.core.dimensions import QualityAttribute, QualityDimension
from repro.datasets.google_study import GoogleStudySpec, build_google_study
from repro.datasets.london_twitter import TABLE4_MEASURES, LondonTwitterSpec
from repro.datasets.milan_tourism import MilanTourismSpec
from repro.experiments.figure1_mashup import Figure1Spec, run_figure1
from repro.experiments.ranking_comparison import RankingStudySpec, run_ranking_comparison
from repro.experiments.reporting import format_markdown_table, format_number
from repro.experiments.table1_source_model import run_table1
from repro.experiments.table2_contributor_model import run_table2
from repro.experiments.table3_factor_analysis import Table3Spec, run_table3
from repro.experiments.table4_contributor_anova import Table4Spec, run_table4
from repro.sources.models import AccountKind, SourceType


@pytest.fixture(scope="module")
def tiny_google_dataset():
    """A deliberately small ranking-study dataset for fast experiment tests."""
    return build_google_study(
        GoogleStudySpec(source_count=60, query_count=12, seed=19, discussion_budget=10)
    )


class TestReporting:
    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(3.14159) == "3.142"
        assert format_number(2.0) == "2"
        assert format_number(1234567.0) == "1,234,567"
        assert format_number("text") == "text"
        assert format_number(float("nan")) == "nan"

    def test_markdown_table_shape(self):
        table = format_markdown_table(("a", "b"), [(1, 2.5), ("x", "y")])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert len(lines) == 4


class TestGoogleStudyDataset:
    def test_dataset_shape(self, tiny_google_dataset):
        dataset = tiny_google_dataset
        assert dataset.site_count == 60
        assert len(dataset.workload) == 12
        assert {source.source_type for source in dataset.corpus} <= {
            SourceType.BLOG,
            SourceType.FORUM,
        }

    def test_queries_return_results(self, tiny_google_dataset):
        dataset = tiny_google_dataset
        query = next(iter(dataset.workload))
        results = dataset.engine.search(query.text, limit=20)
        assert results, "every query category has matching sources in the corpus"

    def test_paper_scale_spec(self):
        spec = GoogleStudySpec.paper_scale()
        assert spec.source_count >= 1000
        assert spec.query_count >= 100


class TestLondonTwitterDataset:
    def test_dataset_size_and_labels(self, london_dataset):
        assert len(london_dataset) == london_dataset.spec.account_count
        sizes = london_dataset.class_sizes()
        assert set(sizes) == {"person", "news", "brand"}
        assert sum(sizes.values()) == len(london_dataset)

    def test_measure_groups_cover_every_account(self, london_dataset):
        for measure in TABLE4_MEASURES:
            groups = london_dataset.measure_groups(measure)
            assert sum(len(values) for values in groups.values()) == len(london_dataset)

    def test_by_kind_filter(self, london_dataset):
        people = london_dataset.by_kind(AccountKind.PERSON)
        assert all(activity.kind is AccountKind.PERSON for activity in people)

    def test_population_factor(self):
        spec = LondonTwitterSpec(account_count=100, population_factor=1.5)
        assert spec.population_size() == 150


class TestMilanTourismDataset:
    def test_dataset_contains_named_sources(self, milan_dataset):
        assert set(milan_dataset.primary_source_ids) == {
            "twitter-milan",
            "tripadvisor-milan",
            "lonelyplanet-milan",
        }
        assert milan_dataset.review_source.source_type is SourceType.REVIEW_SITE
        assert milan_dataset.twitter_source.source_type is SourceType.MICROBLOG

    def test_domain_is_tourism_scoped(self, milan_dataset):
        domain = milan_dataset.domain
        assert "attractions" in domain.categories
        assert domain.covers_location("Milan")
        assert domain.time_interval is not None

    def test_noise_sources_present(self, milan_dataset):
        assert len(milan_dataset.corpus) == 3 + milan_dataset.spec.noise_sources


class TestTable1Experiment:
    def test_matrix_shape(self, small_corpus, travel_domain):
        result = run_table1(small_corpus, travel_domain)
        assert len(result.rows) == 19
        assert len(result.applicable_cells()) == 16
        assert result.source_count == len(small_corpus)
        assert "open_discussion_category_coverage" in result.to_markdown()
        cell = result.cell(QualityDimension.AUTHORITY, QualityAttribute.TRAFFIC)
        assert {row.measure for row in cell} == {
            "daily_visitors", "daily_page_views", "time_on_site",
        }
        for row in result.rows:
            assert 0.0 <= row.mean_normalized <= 1.0


class TestTable2Experiment:
    def test_matrix_shape(self, small_community, travel_domain):
        source = small_community.to_source("community-under-test")
        result = run_table2(source, max_contributors=40)
        assert len(result.rows) == 15
        assert result.contributor_count <= 40
        assert "user_total_interactions" in result.to_markdown()


class TestRankingComparisonExperiment:
    def test_statistics_are_consistent(self, tiny_google_dataset):
        result = run_ranking_comparison(
            RankingStudySpec(study=tiny_google_dataset.spec), dataset=tiny_google_dataset
        )
        assert result.evaluated_queries > 0
        assert result.total_result_slots >= result.evaluated_queries * 5
        assert 0.0 <= result.fraction_coincident <= 1.0
        assert 0.0 <= result.fraction_displaced_over_10 <= result.fraction_displaced_over_5 <= 1.0
        assert result.average_displacement >= 0.0
        assert set(result.per_measure_tau) >= {"daily_visitors", "traffic_rank"}
        assert all(-1.0 <= tau <= 1.0 for tau in result.per_measure_tau.values())
        assert result.to_markdown().count("|") > 10
        # Per-query outcomes contain permutations of the same sites.
        outcome = result.outcomes[0]
        assert set(outcome.search_ranking) == set(outcome.quality_ranking)


class TestTable3Experiment:
    def test_components_and_directions(self, tiny_google_dataset):
        result = run_table3(
            Table3Spec(study=tiny_google_dataset.spec), dataset=tiny_google_dataset
        )
        assert set(result.measure_assignments) == {
            "traffic_rank", "daily_visitors", "daily_page_views", "inbound_links",
            "open_discussions_vs_largest", "new_discussions_per_day",
            "comments_per_discussion", "comments_per_discussion_per_day",
            "bounce_rate", "time_on_site",
        }
        labels = {relation.component for relation in result.relations}
        assert len(labels) == 3
        assert 0.0 <= result.assignment_purity() <= 1.0
        for relation in result.relations:
            assert relation.direction in {"positive", "negative"}
            assert 0.0 <= relation.p_value <= 1.0
        assert "Identified component" in result.to_markdown()


class TestTable4Experiment:
    def test_absolute_patterns_match_paper(self, london_dataset):
        result = run_table4(Table4Spec(), dataset=london_dataset)
        signs = result.sign_matrix()
        assert signs["interactions"]["person-brand"] == ">"
        assert signs["interactions"]["news-brand"] == ">"
        assert signs["mentions"]["person-brand"] == ">"
        assert signs["mentions"]["person-news"] == ">"
        assert signs["retweets"]["person-news"] == "<"
        assert signs["retweets"]["news-brand"] == ">"
        assert result.account_count == len(london_dataset)
        assert result.volume_orders_of_magnitude > 2.5
        assert len(result.cells) == len(TABLE4_MEASURES) * 3
        assert "Interactions" in result.to_markdown()

    def test_cell_lookup(self, london_dataset):
        result = run_table4(Table4Spec(), dataset=london_dataset)
        cell = result.cell("mentions", "person", "brand")
        assert cell.sign in {">", "<", "="}
        with pytest.raises(KeyError):
            result.cell("mentions", "person", "ghost")


class TestFigure1Experiment:
    def test_dashboard_behaviour(self, milan_dataset):
        result = run_figure1(Figure1Spec(influencer_top=8), dataset=milan_dataset)
        assert result.item_count > 0
        assert 0 < result.influencer_item_count <= result.item_count
        assert len(result.top_source_ids) == 3
        assert set(result.top_source_ids) <= set(
            source.source_id for source in milan_dataset.corpus
        )
        assert result.selection_propagated
        assert result.influencer_view["viewer"] == "list"
        assert result.influencer_map["viewer"] == "map"
        assert -1.0 <= result.quality_weighted_polarity <= 1.0
        assert "quality-weighted sentiment" in result.to_markdown()
