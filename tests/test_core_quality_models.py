"""Tests for the source/contributor quality models and the filtering layer."""

from __future__ import annotations

import pytest

from repro.core.contributor_quality import ContributorQualityModel
from repro.core.dimensions import QualityAttribute, QualityDimension
from repro.core.domain import DomainOfInterest
from repro.core.filtering import InfluencerDetector, QualityFilter, QualityRanker
from repro.core.measures import source_measure_registry
from repro.core.scoring import dimension_weighted_scheme
from repro.core.source_quality import SourceQualityModel
from repro.errors import AssessmentError
from repro.sources.corpus import SourceCorpus
from repro.sources.generators import SourceGenerator, SourceSpec


@pytest.fixture(scope="module")
def assessments(small_corpus, travel_domain):
    model = SourceQualityModel(travel_domain)
    return model.assess_corpus(small_corpus)


class TestSourceQualityModel:
    def test_every_source_is_assessed(self, assessments, small_corpus):
        assert set(assessments) == set(small_corpus.source_ids())

    def test_scores_are_bounded(self, assessments):
        for assessment in assessments.values():
            assert 0.0 <= assessment.overall <= 1.0
            for value in assessment.score.normalized_values.values():
                assert 0.0 <= value <= 1.0

    def test_dimension_and_attribute_breakdowns_present(self, assessments):
        sample = next(iter(assessments.values()))
        assert QualityDimension.AUTHORITY in sample.score.dimension_scores
        assert QualityAttribute.TRAFFIC in sample.score.attribute_scores

    def test_ranking_is_sorted_and_deterministic(self, small_corpus, travel_domain):
        model = SourceQualityModel(travel_domain)
        ranking = model.rank(small_corpus)
        overall = [assessment.overall for assessment in ranking]
        assert overall == sorted(overall, reverse=True)
        assert model.ranking_ids(small_corpus) == [a.source_id for a in ranking]

    def test_quality_tracks_latent_quality(self, travel_domain):
        """A source that is popular, engaged and on-topic outranks a weak one."""
        strong = SourceGenerator(
            SourceSpec(
                source_id="strong", focus_categories=("travel", "food"),
                latent_popularity=0.95, latent_engagement=0.9, latent_stickiness=0.9,
                discussion_budget=15, user_budget=15, off_topic_rate=0.02,
            ),
            seed=1,
        ).generate()
        weak = SourceGenerator(
            SourceSpec(
                source_id="weak", focus_categories=("finance",),
                latent_popularity=0.05, latent_engagement=0.05, latent_stickiness=0.1,
                discussion_budget=15, user_budget=15, off_topic_rate=0.5,
            ),
            seed=2,
        ).generate()
        corpus = SourceCorpus([strong, weak])
        ranking = SourceQualityModel(travel_domain).ranking_ids(corpus)
        assert ranking[0] == "strong"

    def test_domain_independent_only_restricts_registry(self, travel_domain):
        model = SourceQualityModel(travel_domain, domain_independent_only=True)
        assert all(not measure.domain_dependent for measure in model.registry)

    def test_empty_corpus_rejected(self, travel_domain):
        with pytest.raises(AssessmentError):
            SourceQualityModel(travel_domain).assess_corpus(SourceCorpus())

    def test_assess_single_source(self, small_corpus, travel_domain):
        model = SourceQualityModel(travel_domain)
        source = small_corpus.sources()[0]
        assessment = model.assess(source, small_corpus)
        assert assessment.source_id == source.source_id

    def test_custom_scheme_changes_scores(self, small_corpus, travel_domain):
        registry = source_measure_registry()
        authority_heavy = dimension_weighted_scheme(
            registry, {QualityDimension.AUTHORITY: 1.0}
        )
        base = SourceQualityModel(travel_domain).assess_corpus(small_corpus)
        weighted = SourceQualityModel(
            travel_domain, scheme=authority_heavy
        ).assess_corpus(small_corpus)
        differences = [
            abs(base[name].overall - weighted[name].overall) for name in base
        ]
        assert max(differences) > 1e-6


class TestContributorQualityModel:
    def test_contributors_are_assessed_and_bounded(self, single_source, travel_domain):
        model = ContributorQualityModel(travel_domain)
        assessments = model.assess_source(single_source)
        assert set(assessments) == single_source.contributors()
        for assessment in assessments.values():
            assert 0.0 <= assessment.overall <= 1.0
            assert 0.0 <= assessment.influencer_score() <= 1.0

    def test_rank_by_influence_differs_from_overall(self, single_source, travel_domain):
        model = ContributorQualityModel(travel_domain)
        by_quality = [a.user_id for a in model.rank(single_source)]
        by_influence = [a.user_id for a in model.rank(single_source, by_influence=True)]
        assert set(by_quality) == set(by_influence)

    def test_unknown_user_rejected(self, single_source, travel_domain):
        model = ContributorQualityModel(travel_domain)
        with pytest.raises(AssessmentError):
            model.assess(single_source, "ghost")

    def test_influencer_score_blends_absolute_and_relative(self, single_source, travel_domain):
        model = ContributorQualityModel(travel_domain)
        assessment = next(iter(model.assess_source(single_source).values()))
        pure_absolute = assessment.influencer_score(absolute_weight=1.0)
        pure_relative = assessment.influencer_score(absolute_weight=0.0)
        assert pure_absolute == pytest.approx(assessment.absolute_activity)
        assert pure_relative == pytest.approx(assessment.relative_efficiency)


class TestQualityRankerAndFilter:
    def test_ranker_positions_are_sequential(self, small_corpus, travel_domain):
        ranker = QualityRanker(SourceQualityModel(travel_domain))
        ranking = ranker.rank(small_corpus)
        assert [entry.rank for entry in ranking] == list(range(1, len(small_corpus) + 1))

    def test_top_sources_prefix_of_ranking(self, small_corpus, travel_domain):
        ranker = QualityRanker(SourceQualityModel(travel_domain))
        top = ranker.top_sources(small_corpus, 3)
        assert top == [entry.source_id for entry in ranker.rank(small_corpus)[:3]]
        with pytest.raises(AssessmentError):
            ranker.top_sources(small_corpus, -1)

    def test_select_by_thresholds(self, small_corpus, travel_domain):
        ranker = QualityRanker(SourceQualityModel(travel_domain))
        everything = ranker.select(small_corpus, minimum_overall=0.0)
        assert len(everything) == len(small_corpus)
        nothing = ranker.select(small_corpus, minimum_overall=1.01)
        assert nothing == []
        constrained = ranker.select(
            small_corpus,
            minimum_dimension={QualityDimension.AUTHORITY: 0.2},
            minimum_attribute={QualityAttribute.TRAFFIC: 0.2},
        )
        assert all(
            item.score.dimension(QualityDimension.AUTHORITY) >= 0.2 for item in constrained
        )

    def test_quality_filter_category_and_breadth(self, small_corpus, travel_domain):
        quality_filter = QualityFilter(travel_domain)
        by_category = quality_filter.by_category(small_corpus, "travel")
        assert all("travel" in s.covered_categories() for s in by_category)
        broad = quality_filter.by_breadth(small_corpus, minimum_categories=1)
        assert len(broad) <= len(small_corpus)
        all_kept = quality_filter.by_predicate(small_corpus, lambda source: True)
        assert len(all_kept) == len(small_corpus)

    def test_quality_filter_freshness(self, small_corpus, travel_domain):
        quality_filter = QualityFilter(travel_domain)
        fresh = quality_filter.by_freshness(small_corpus, max_average_thread_age=1e9)
        assert len(fresh) == len(small_corpus)
        none_fresh = quality_filter.by_freshness(small_corpus, max_average_thread_age=-1.0)
        assert len(none_fresh) == 0


class TestInfluencerDetector:
    def test_detects_at_most_top(self, single_source, travel_domain):
        detector = InfluencerDetector(ContributorQualityModel(travel_domain))
        influencers = detector.detect(single_source, top=5)
        assert len(influencers) <= 5
        scores = [detector.score(item) for item in influencers]
        assert scores == sorted(scores, reverse=True)

    def test_minimum_relative_excludes_spammer_profile(self, single_source, travel_domain):
        """With an impossibly high relative threshold nobody qualifies."""
        detector = InfluencerDetector(
            ContributorQualityModel(travel_domain), minimum_relative=2.0
        )
        assert detector.detect(single_source) == []

    def test_invalid_parameters_rejected(self, travel_domain):
        model = ContributorQualityModel(travel_domain)
        with pytest.raises(AssessmentError):
            InfluencerDetector(model, absolute_weight=1.5)
        with pytest.raises(AssessmentError):
            InfluencerDetector(model, minimum_relative=-0.1)

    def test_influencer_ids_matches_detect(self, single_source, travel_domain):
        detector = InfluencerDetector(ContributorQualityModel(travel_domain))
        ids = detector.influencer_ids(single_source, top=3)
        assert ids == [a.user_id for a in detector.detect(single_source, top=3)]
