"""Columnar (vectorized) assessment state and kernels.

The measure → normalize → score → rank pipeline of the quality models
used to iterate per source in pure Python; at corpus scale that loop is
the dominant cost of every rebuild, patch and warm start.  This module
holds the columnar layout the pipeline now runs on — one parallel
float64 array per measure, keyed by a stable source-index map — plus the
kernels that operate on whole columns at once.

Bit-identity is the design constraint, not an afterthought.  Every
kernel reproduces the scalar reference (``Normalizer.normalize_many``,
``build_quality_scores``, the ``sorted((-overall, source_id))`` ranking)
**exactly**, to the last bit, because the incremental/eager/concurrent
equivalence suites pin warm results against cold rebuilds with plain
float equality.  The rules that make that possible:

* element-wise array ops (divide, subtract, ``np.minimum``/``np.maximum``
  clamps, the ``1.0 - x`` direction flip) are IEEE-754 operations applied
  per element — identical to the scalar code path by construction;
* **reductions are never delegated to numpy**: ``np.sum``/``np.mean``
  use pairwise summation, which rounds differently from the scalar
  code's sequential accumulation.  Cross-measure reductions therefore
  accumulate column by column in measure order (``acc += w * col``),
  which performs, per element, exactly the float-op sequence of the
  per-subject scalar loops;
* transcendentals (``log1p``, ``exp``) are **not** vectorized: numpy may
  dispatch them to SIMD implementations whose results differ from the
  scalar ``math`` calls by an ulp.  The affected kernels call ``math``
  per value (see :mod:`repro.core.normalization`);
* ``np.sort``/``np.searchsorted`` and element picks are exact, so
  normalizer fits and ranking maintenance vectorize freely.

Published column arrays are frozen (``writeable=False``): a context is
an immutable snapshot, and patching copies only the columns it writes —
unchanged columns are shared between context generations, which is what
makes snapshot-swap publication O(changed columns) for the rwlock
readers instead of a per-consumer deep copy.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import AssessmentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dimensions import QualityAttribute, QualityDimension

__all__ = [
    "AssessmentColumns",
    "SortedRankKeys",
    "columns_from_vectors",
    "vectors_from_columns",
    "freeze",
    "ensure_finite_columns",
]


def freeze(column: np.ndarray) -> np.ndarray:
    """Mark ``column`` immutable and return it (published-snapshot contract)."""
    column.flags.writeable = False
    return column


def ensure_finite_columns(columns: Mapping[str, np.ndarray]) -> None:
    """Reject NaN/inf raw measures before they can corrupt a fit.

    The scalar pipeline would silently propagate a non-finite measure
    into the normalizer state and every later score; the columnar build
    refuses it up front with a diagnosable error instead.
    """
    for name, column in columns.items():
        if column.size and not np.isfinite(column).all():
            raise AssessmentError(
                f"measure {name!r} produced non-finite raw values"
            )


def columns_from_vectors(
    vectors: Mapping[str, Mapping[str, float]],
    names: Optional[Sequence[str]] = None,
    *,
    validate: bool = True,
) -> tuple[tuple[str, ...], tuple[str, ...], dict[str, np.ndarray]]:
    """Pivot per-subject measure vectors into per-measure float64 columns.

    Returns ``(subject_ids, measure_names, columns)`` where row *i* of
    every column belongs to the *i*-th subject.  All vectors must cover
    the same measure set (the batched pipeline guarantees it: every
    vector comes from the same registry); a ragged matrix raises
    :class:`~repro.errors.AssessmentError` rather than producing columns
    that silently disagree with the scalar reference.
    """
    subject_ids = tuple(vectors)
    if names is None:
        first = next(iter(vectors.values()), None)
        names = tuple(first) if first is not None else ()
    else:
        names = tuple(names)
    name_set = set(names)
    columns: dict[str, list[float]] = {name: [] for name in names}
    for subject_id, vector in vectors.items():
        if len(vector) != len(names) or (validate and name_set.difference(vector)):
            raise AssessmentError(
                f"subject {subject_id!r} does not cover the measure set"
            )
        for name in names:
            columns[name].append(vector[name])
    return (
        subject_ids,
        names,
        {
            name: freeze(np.asarray(values, dtype=np.float64))
            for name, values in columns.items()
        },
    )


def vectors_from_columns(
    subject_ids: Sequence[str],
    names: Sequence[str],
    columns: Mapping[str, np.ndarray],
) -> dict[str, dict[str, float]]:
    """Materialise the per-subject dict-of-dicts view of a column set.

    The inverse of :func:`columns_from_vectors`; used to serve the
    wide dict-shaped consumer surface (exports, experiments, tests)
    lazily from the columnar state.  ``float()`` round-trips the stored
    float64 values bit-exactly.
    """
    lists = [columns[name].tolist() for name in names]
    return {
        subject_id: {
            name: lists[j][i] for j, name in enumerate(names)
        }
        for i, subject_id in enumerate(subject_ids)
    }


class SortedRankKeys:
    """A ranking as parallel sorted arrays, patched via ``np.searchsorted``.

    Replaces the ``bisect`` list-of-tuples surgery of the scalar ranking
    (and the search engine's static order): the sort keys
    ``(-score, subject_id)`` are held as an ascending float64 array of
    negated scores plus an aligned id list (ids sorted ascending within
    every tied-score run), so the ranked order falls out by reading the
    ids.  Key lookups are ``np.searchsorted`` on the score array with the
    id resolved by bisection inside the (typically tiny) tie span.

    The structure is equivalent to ``sorted((-score, subject_id))`` for
    unique subject ids — including ``-0.0``/``0.0`` ties, which compare
    equal in both representations — so a patched instance is
    indistinguishable from one rebuilt from scratch.
    """

    __slots__ = ("neg_scores", "ids", "_order")

    def __init__(self, neg_scores: np.ndarray, ids: list[str]) -> None:
        self.neg_scores = neg_scores
        self.ids = ids
        self._order: Optional[tuple[str, ...]] = None

    @classmethod
    def from_scores(
        cls, scores: np.ndarray, subject_ids: Sequence[str]
    ) -> "SortedRankKeys":
        """Full build: vectorized sort by ``(-score, subject_id)``."""
        neg = np.negative(np.asarray(scores, dtype=np.float64))
        if len(subject_ids):
            order = np.lexsort((np.asarray(subject_ids), neg))
            ids = [subject_ids[i] for i in order]
            neg = neg[order]
        else:
            ids = []
        return cls(neg, ids)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, str]]) -> "SortedRankKeys":
        """Adopt already-sorted ``(negated score, id)`` pairs (restore path)."""
        neg: list[float] = []
        ids: list[str] = []
        for score, subject_id in pairs:
            neg.append(score)
            ids.append(subject_id)
        return cls(np.asarray(neg, dtype=np.float64), ids)

    def __len__(self) -> int:
        return len(self.ids)

    def copy(self) -> "SortedRankKeys":
        """A privately mutable copy (patching never disturbs readers)."""
        return SortedRankKeys(self.neg_scores.copy(), list(self.ids))

    def order(self) -> tuple[str, ...]:
        """Subject ids by decreasing score (ties by ascending id)."""
        if self._order is None:
            self._order = tuple(self.ids)
        return self._order

    def pairs(self) -> list[tuple[float, str]]:
        """The ``(negated score, id)`` keys, ascending (export path)."""
        return list(zip(self.neg_scores.tolist(), self.ids))

    def _locate(self, neg_score: float, subject_id: str) -> tuple[int, bool]:
        lo = int(np.searchsorted(self.neg_scores, neg_score, side="left"))
        hi = int(np.searchsorted(self.neg_scores, neg_score, side="right"))
        index = bisect_left(self.ids, subject_id, lo, hi)
        found = index < hi and self.ids[index] == subject_id
        return index, found

    def remove(self, score: float, subject_id: str) -> bool:
        """Drop the key ``(-score, subject_id)`` when present."""
        index, found = self._locate(-score, subject_id)
        if not found:
            return False
        self.neg_scores = np.delete(self.neg_scores, index)
        del self.ids[index]
        self._order = None
        return True

    def insert(self, score: float, subject_id: str) -> None:
        """Insert the key ``(-score, subject_id)`` at its sorted position."""
        neg = -score
        index, _ = self._locate(neg, subject_id)
        self.neg_scores = np.insert(self.neg_scores, index, neg)
        self.ids.insert(index, subject_id)
        self._order = None


@dataclass
class AssessmentColumns:
    """The columnar core of one assessment context.

    Row *i* of every array belongs to ``subject_ids[i]``; ``index`` is
    the stable subject → row map patchers address changed rows through.
    All arrays are float64 and frozen once published.
    """

    subject_ids: tuple[str, ...]
    measures: tuple[str, ...]
    raw: dict[str, np.ndarray]
    normalized: dict[str, np.ndarray]
    overall: np.ndarray
    dimension_scores: "dict[QualityDimension, np.ndarray]"
    attribute_scores: "dict[QualityAttribute, np.ndarray]"
    rank: SortedRankKeys
    index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.index:
            self.index = {
                subject_id: i for i, subject_id in enumerate(self.subject_ids)
            }

    def __len__(self) -> int:
        return len(self.subject_ids)

    def row(self, subject_id: str) -> int:
        """The row index of ``subject_id`` (KeyError when absent)."""
        return self.index[subject_id]

    def ranking_ids(self) -> tuple[str, ...]:
        """Subject ids by decreasing overall score (ties by id)."""
        return self.rank.order()

    def overall_of(self, subject_id: str) -> float:
        """Overall score of one subject (bit-exact float)."""
        return float(self.overall[self.index[subject_id]])

    def gather(self, subject_ids: Sequence[str]) -> "dict[str, np.ndarray]":
        """Raw columns re-ordered/filtered to ``subject_ids`` (exact copies)."""
        rows = np.asarray([self.index[subject_id] for subject_id in subject_ids])
        return {
            name: freeze(column[rows] if len(rows) else column[:0].copy())
            for name, column in self.raw.items()
        }


def confine_renormalization_columns(
    normalizer: Any,
    counters: Any,
    raw_columns: Mapping[str, np.ndarray],
    fresh_rows: np.ndarray,
    previous_normalized: Optional[Mapping[str, np.ndarray]],
    previous_signature: Mapping[str, tuple],
    fit_signature: Mapping[str, tuple],
) -> dict[str, np.ndarray]:
    """Columnar twin of :func:`repro.core.normalization.confine_renormalization`.

    ``fresh_rows`` indexes the rows whose raw vector changed (or that are
    new); ``previous_normalized`` holds the prior normalized columns
    *already aligned to the current row order* (fresh rows may carry
    stale values — they are overwritten).  Measures whose fit signature
    moved are renormalised as whole columns; for the rest only the fresh
    rows are recomputed and every other value is carried over verbatim.
    Bit-identical to a full ``normalize_columns`` pass in every branch,
    because each element is produced by the same per-value arithmetic.
    """
    if not previous_signature or not fit_signature or previous_normalized is None:
        return normalizer.normalize_columns(raw_columns)
    stale = {
        name
        for name, signature in fit_signature.items()
        if previous_signature.get(name) != signature
    }
    have_fresh = fresh_rows.size > 0
    normalized: dict[str, np.ndarray] = {}
    for name, column in raw_columns.items():
        if name in stale or name not in previous_normalized:
            normalized[name] = normalizer.normalize_column(name, column)
        elif have_fresh:
            patched = previous_normalized[name].copy()
            patched[fresh_rows] = normalizer.normalize_column(
                name, column[fresh_rows]
            )
            normalized[name] = freeze(patched)
        else:
            normalized[name] = previous_normalized[name]
    if not stale:
        counters.increment("fit_signature_skips")
    elif len(stale) < len(fit_signature):
        counters.increment("partial_renormalisations")
        counters.increment("measures_renormalized", len(stale))
    return normalized
