"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.measures import source_measure_registry
from repro.core.normalization import BenchmarkNormalizer, MinMaxNormalizer, ZScoreNormalizer
from repro.core.scoring import uniform_scheme
from repro.sentiment.analyzer import SentimentAnalyzer
from repro.stats.anova import bonferroni_pairwise, one_way_anova
from repro.stats.descriptive import describe, pearson_correlation, standardize
from repro.stats.ranking import (
    compare_rankings,
    displacement_statistics,
    kendall_tau,
    spearman_rho,
)

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRankingProperties:
    @_SETTINGS
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_kendall_tau_is_symmetric_and_bounded(self, values):
        reversed_values = list(reversed(values))
        tau = kendall_tau(values, reversed_values)
        assert -1.0 <= tau <= 1.0
        assert kendall_tau(reversed_values, values) == pytest.approx(tau)

    @_SETTINGS
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_tau_with_self_is_one_unless_constant(self, values):
        tau = kendall_tau(values, values)
        if len(set(values)) > 1:
            assert tau == pytest.approx(1.0)
        else:
            assert tau == 0.0

    @_SETTINGS
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_spearman_bounded(self, values):
        assert -1.0 <= spearman_rho(values, list(reversed(values))) <= 1.0

    @_SETTINGS
    @given(st.permutations(list(range(12))))
    def test_rank_comparison_invariants(self, permutation):
        baseline = list(range(12))
        result = compare_rankings(baseline, list(permutation))
        assert 0.0 <= result.average_displacement <= 11
        assert 0.0 <= result.fraction_coincident <= 1.0
        assert result.fraction_displaced_over_10 <= result.fraction_displaced_over_5
        # Displacements of a permutation always sum to an even number.
        total = result.average_displacement * result.item_count
        assert round(total) % 2 == 0

    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
    def test_displacement_statistics_mean_bounds(self, displacements):
        stats = displacement_statistics(displacements)
        assert min(displacements) <= stats.average_displacement <= max(displacements)
        assert stats.max_displacement == max(displacements)


class TestDescriptiveProperties:
    @_SETTINGS
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_describe_bounds(self, values):
        summary = describe(values)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.variance >= 0.0

    @_SETTINGS
    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_pearson_bounded(self, values):
        shifted = [value * 2.0 + 1.0 for value in values]
        correlation = pearson_correlation(values, shifted)
        assert -1.0 - 1e-9 <= correlation <= 1.0 + 1e-9

    @_SETTINGS
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_standardize_mean_zero(self, values):
        standardized = standardize(values)
        assert len(standardized) == len(values)
        assert sum(standardized) == pytest.approx(0.0, abs=1e-6)


class TestAnovaProperties:
    @_SETTINGS
    @given(
        st.lists(positive_floats, min_size=3, max_size=30),
        st.lists(positive_floats, min_size=3, max_size=30),
    )
    def test_anova_p_value_in_unit_interval(self, group_a, group_b):
        result = one_way_anova({"a": group_a, "b": group_b})
        assert 0.0 <= result.p_value <= 1.0
        assert result.f_statistic >= 0.0 or math.isinf(result.f_statistic)

    @_SETTINGS
    @given(
        st.lists(positive_floats, min_size=3, max_size=30),
        st.lists(positive_floats, min_size=3, max_size=30),
    )
    def test_bonferroni_difference_matches_means(self, group_a, group_b):
        comparisons = bonferroni_pairwise({"a": group_a, "b": group_b})
        expected = sum(group_a) / len(group_a) - sum(group_b) / len(group_b)
        assert comparisons[0].difference == pytest.approx(expected)
        assert 0.0 <= comparisons[0].p_value <= 1.0


class TestNormalizerProperties:
    _registry = source_measure_registry().subset(
        ["daily_visitors", "traffic_rank", "comments_per_discussion"]
    )

    @_SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False),
    )
    def test_normalized_values_always_in_unit_interval(self, reference, probe):
        reference_map = {
            "daily_visitors": reference,
            "traffic_rank": [value + 1.0 for value in reference],
            "comments_per_discussion": reference,
        }
        for normalizer_class in (BenchmarkNormalizer, MinMaxNormalizer, ZScoreNormalizer):
            normalizer = normalizer_class(self._registry).fit(reference_map)
            for name in reference_map:
                assert 0.0 <= normalizer.normalize(name, probe) <= 1.0

    @_SETTINGS
    @given(
        st.dictionaries(
            st.sampled_from(["daily_visitors", "traffic_rank", "comments_per_discussion"]),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
        )
    )
    def test_weighted_average_stays_in_convex_hull(self, normalized):
        scheme = uniform_scheme(self._registry)
        average = scheme.weighted_average(normalized)
        assert min(normalized.values()) - 1e-9 <= average <= max(normalized.values()) + 1e-9


class TestSentimentProperties:
    analyzer = SentimentAnalyzer()

    @_SETTINGS
    @given(st.text(max_size=300))
    def test_polarity_and_subjectivity_bounded_for_arbitrary_text(self, text):
        score = self.analyzer.score(text)
        assert -1.0 <= score.polarity <= 1.0
        assert 0.0 <= score.subjectivity <= 1.0
        assert score.positive_hits >= 0
        assert score.negative_hits >= 0

    @_SETTINGS
    @given(
        st.lists(
            st.sampled_from(["wonderful", "terrible", "metro", "hotel", "not", "very"]),
            min_size=1,
            max_size=30,
        )
    )
    def test_label_consistent_with_polarity(self, words):
        score = self.analyzer.score(" ".join(words))
        if score.label == "positive":
            assert score.polarity > 0.1
        elif score.label == "negative":
            assert score.polarity < -0.1
        else:
            assert -0.1 <= score.polarity <= 0.1
