"""Benchmark E5 — regenerate Table 4 (contributor class differences)."""

from __future__ import annotations

from repro.experiments.table4_contributor_anova import Table4Spec, run_table4


def test_table4_contributor_anova(benchmark, london_dataset):
    result = benchmark.pedantic(
        run_table4, args=(Table4Spec(), london_dataset), rounds=1, iterations=1
    )
    print("\n=== Table 4: paired differences of means by account kind ===")
    print(result.to_markdown())
    print(
        f"dataset: {result.account_count} accounts, classes {result.class_sizes}, "
        f"volume span ~{result.volume_orders_of_magnitude:.1f} orders of magnitude"
    )
    signs = result.sign_matrix()
    # Paper's absolute-volume findings (the headline of Table 4).
    assert signs["interactions"]["person-brand"] == ">"
    assert signs["interactions"]["person-news"] == "="
    assert signs["interactions"]["news-brand"] == ">"
    assert signs["mentions"]["person-brand"] == ">"
    assert signs["mentions"]["person-news"] == ">"
    assert signs["mentions"]["news-brand"] == "="
    assert signs["retweets"]["person-news"] == "<"
    assert signs["retweets"]["news-brand"] == ">"
    assert signs["retweets"]["person-brand"] == "="
    assert result.account_count == 813
