"""Cross-process sharded serving over the InvalidationBus.

The serving stack of a single process is correct, concurrent and durable,
but every read still shares one GIL.  This package splits the corpus
across N worker processes by a stable source-id hash and serves reads by
scatter-gather:

:mod:`~repro.sharding.partition`
    The stable partition function (``blake2b(source_id) mod N``) —
    deterministic across processes, platforms and Python hash
    randomisation.
:mod:`~repro.sharding.wire`
    The length-prefixed CRC-framed wire codec carrying JSON messages
    over a socket pair; the framing is exactly the persistence layer's
    record framing (:func:`repro.persistence.format.pack_record`).
:mod:`~repro.sharding.worker`
    The worker process entry point (``python -m repro.sharding.worker``):
    runs the existing serving stack — SearchEngine, SourceQualityModel,
    EagerRefreshScheduler, per-shard CorpusStore — over its shard and
    answers protocol requests in a single-threaded loop.
:mod:`~repro.sharding.coordinator`
    :class:`~repro.sharding.coordinator.ShardCoordinator` — owns the
    authoritative corpus, bridges its invalidation bus onto the wire
    (:class:`~repro.sources.diffing.WireBridgeSubscriber`), and merges
    scattered reads: top-k merge for search, rank-merge for assessment —
    bit-identical at quiesce to a single-process build over the same
    corpus (pinned by ``tests/test_sharded_serving.py``).

See ``docs/ARCHITECTURE.md`` ("Cross-process sharded serving") for the
partition/merge contract and the failure model.
"""

from repro.sharding.coordinator import ShardCoordinator
from repro.sharding.partition import partition_shard
from repro.sharding.wire import WireConnection

__all__ = ["ShardCoordinator", "WireConnection", "partition_shard"]
