#!/usr/bin/env python3
"""Quickstart: assess the quality of Web 2.0 sources against a Domain of Interest.

The script generates a small synthetic corpus of blogs and forums (the
offline stand-in for crawling), defines a Domain of Interest, assesses every
source with the paper's Table 1 quality model and prints the ranking with
its dimension-level breakdown.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CorpusGenerator, CorpusSpec, DomainOfInterest, SourceQualityModel
from repro.core.dimensions import QualityDimension


def main() -> None:
    # 1. Build a corpus of synthetic blogs/forums (stands in for crawling).
    corpus = CorpusGenerator(
        CorpusSpec(source_count=20, seed=7, discussion_budget=15, user_budget=20)
    ).generate()

    # 2. Define the Domain of Interest: the categories the analysis cares about.
    domain = DomainOfInterest(categories=("travel", "food", "culture"), name="quickstart")

    # 3. Assess and rank every source.
    model = SourceQualityModel(domain)
    ranking = model.rank(corpus)

    print(f"Assessed {len(corpus)} sources against DI {domain.name!r} "
          f"(categories: {', '.join(domain.categories)})\n")
    header = f"{'rank':>4}  {'source':<14} {'overall':>8}  " + "  ".join(
        f"{dimension.value[:6]:>6}" for dimension in QualityDimension
    )
    print(header)
    print("-" * len(header))
    for position, assessment in enumerate(ranking, start=1):
        dimensions = "  ".join(
            f"{assessment.score.dimension(dimension):6.3f}"
            for dimension in QualityDimension
        )
        print(
            f"{position:>4}  {assessment.source_id:<14} "
            f"{assessment.overall:8.3f}  {dimensions}"
        )

    best = ranking[0]
    print(
        f"\nTop source: {best.source_id} "
        f"(overall quality {best.overall:.3f}, "
        f"{best.snapshot.total_discussions} discussions, "
        f"{best.snapshot.total_comments} comments)"
    )


if __name__ == "__main__":
    main()
