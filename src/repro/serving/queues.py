"""Per-consumer work queues for the eager serving scheduler.

The PR 4 scheduler kept one global pending set and patched every consumer
under one patch lock, so one slow consumer refresh blocked every other
consumer's patch *and* every guarded read.  The concurrent serving core
splits that state per consumer: each registered consumer owns a
:class:`ConsumerQueue` holding

* its own typed :class:`~repro.sources.diffing.BusSubscription` on the
  corpus's :class:`~repro.sources.diffing.InvalidationBus` (carrying the
  consumer's source filter, so non-matching events never even reach the
  queue),
* its own :class:`~repro.serving.rwlock.ReadWriteLock` (shared with the
  consumer itself for the built-ins, so the scheduler's composite
  :meth:`~repro.serving.scheduler.EagerRefreshScheduler.read_lock` /
  ``write_lock`` actually guard the consumer's snapshots),
* its own drain mutex serialising *this queue's* refreshes only.

Queues are drained independently: ``scheduler.flush()`` walks them in
registration order, but a drain touches no shared lock beyond the bus's
brief intake bookkeeping, so draining (or lazily patching) one consumer
never blocks reads — or drains — of another.  A single queue can also be
drained by name (``scheduler.drain(name)``) for callers that want to
prioritise one consumer's freshness.

Lock ordering (deadlock-free by construction): the refresh gate is the
queue's *outermost* lock — a drain takes ``refresh gate → drain mutex``
for its own consumer only, and the consumer's refresh takes its gate
then its rwlock's write side for the snapshot swap, so every acquirer
orders ``gate → everything else``.  The only multi-consumer acquirers
are the scheduler's composite locks, which walk consumers in sorted-name
order using the same per-consumer order, and corpus change notifications
are delivered outside the corpus mutation lock, keeping it out of the
ordering entirely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import PersistenceError
from repro.perf.counters import PerfCounters
from repro.serving.rwlock import ReadWriteLock, ordered
from repro.sources.diffing import BusSubscription, PendingInvalidation

__all__ = ["ConsumerStats", "ConsumerQueue"]


@dataclass
class ConsumerStats:
    """Per-consumer bookkeeping exposed by ``EagerRefreshScheduler.stats``."""

    name: str
    patches: int = 0
    skips: int = 0
    errors: int = 0
    #: ``"ExceptionType: message"`` of the most recent failed refresh.  A
    #: string, not the exception object: a live exception would pin the
    #: whole failed patch call stack (matrices, snapshots) via its
    #: traceback for the long-lived scheduler's lifetime.
    last_error: Optional[str] = None
    last_duration_seconds: float = 0.0


class ConsumerQueue:
    """One consumer's independent work queue (see module docstring)."""

    def __init__(
        self,
        name: str,
        refresh: Callable[[], Any],
        subscription: BusSubscription,
        *,
        clock: Callable[[], float],
        rwlock: Optional[ReadWriteLock] = None,
        refresh_gate: Optional[Any] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        self.name = name
        self._refresh = refresh
        #: The queue's coalescing view of the corpus's change stream.
        self.subscription = subscription
        #: Reader/writer lock guarding the consumer's snapshots.  The
        #: built-in registration wrappers pass the consumer's own lock so
        #: scheduler-level composite locks guard the real state; ad-hoc
        #: consumers get a private one.
        self.rwlock = rwlock if rwlock is not None else ReadWriteLock()
        #: The consumer's refresh serialisation gate (its patch mutex for
        #: the built-ins).  Composite write locks acquire it so "no patch
        #: while held" covers lazy reads as well as queue drains.
        self.refresh_gate = refresh_gate if refresh_gate is not None else threading.RLock()
        self._drain_mutex = threading.RLock()
        #: Lock classes for the runtime order validator.  The checkpoint
        #: queue's gate ranks *below* every consumer lock (its drain
        #: drives ``CorpusStore.checkpoint``, which re-enters consumer
        #: gates while exporting snapshots); everything else is a plain
        #: consumer.
        is_checkpoint = "checkpoint" in name
        self.gate_lock_class = "checkpoint.gate" if is_checkpoint else "consumer.gate"
        self.drain_lock_class = "checkpoint.drain" if is_checkpoint else "consumer.drain"
        self._clock = clock
        self._counters = counters if counters is not None else PerfCounters()
        self.stats = ConsumerStats(name=name)

    # -- pending state ---------------------------------------------------------------

    @property
    def pending(self) -> bool:
        """True when at least one matching event awaits this queue's drain."""
        return self.subscription.peek() is not None

    def peek(self) -> Optional[PendingInvalidation]:
        """The coalesced pending events, without consuming them."""
        return self.subscription.peek()

    # -- draining ---------------------------------------------------------------------

    def drain(self) -> tuple[int, Optional[BaseException]]:
        """Apply pending work, if any; return ``(patches_run, error)``.

        The pending view is consumed *before* the refresh runs; a refresh
        that raises re-dirties the subscription (via ``force_dirty``) so
        the staleness is not lost — the consumer will patch lazily on its
        next read, exactly as without a scheduler.

        The refresh gate is acquired *before* the drain mutex: the gate
        is the queue's outermost lock everywhere (composite write locks,
        lazy read-path refreshes, drains), so two threads draining and
        freezing the same consumer can never deadlock on opposite orders.
        """
        if self.subscription.peek() is None:
            return 0, None
        with ordered(self.refresh_gate, self.gate_lock_class):
            with ordered(self._drain_mutex, self.drain_lock_class):
                if self.subscription.drain() is None:
                    return 0, None
                return self._run()

    def force_refresh(self) -> tuple[int, Optional[BaseException]]:
        """Unconditionally run the consumer's refresh once (clears pending)."""
        with ordered(self.refresh_gate, self.gate_lock_class):
            with ordered(self._drain_mutex, self.drain_lock_class):
                self.subscription.drain()
                return self._run()

    def _run(self) -> tuple[int, Optional[BaseException]]:
        started = self._clock()
        try:
            with ordered(self.refresh_gate, self.gate_lock_class):
                self._refresh()
        except Exception as exc:  # noqa: BLE001 - recorded; callers may re-raise
            self.subscription.force_dirty()
            self.stats.errors += 1
            self.stats.last_error = f"{type(exc).__name__}: {exc}"
            self._counters.increment("refresh_errors")
            self.stats.last_duration_seconds = self._clock() - started
            if isinstance(exc, PersistenceError):
                # A durability failure (journal append, checkpoint write)
                # must never be absorbed into a silent force_dirty: lazy
                # refresh cannot repair lost persistence the way it
                # repairs a stale cache.  Recorded above, then re-raised
                # through every path — including the ones that normally
                # swallow refresh errors.
                raise
            return 0, exc
        self.stats.patches += 1
        self._counters.increment("consumers_patched")
        self.stats.last_duration_seconds = self._clock() - started
        return 1, None

    def skip(self) -> None:
        """Record that a scheduler apply-cycle had nothing for this queue."""
        self.stats.skips += 1
        self._counters.increment("consumer_skips")

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Detach the queue's subscription from the bus (idempotent)."""
        self.subscription.close()
