#!/usr/bin/env python3
"""Build and run the Figure 1 mashup: a sentiment dashboard for Milan tourism.

The example mirrors the paper's Section 6 case study: the Milan tourism
dataset provides a Twitter-like community and a TripAdvisor-like review
site; the quality model selects the authoritative sources; an influencer
filter keeps only influencer-authored comments; sentiment is extracted and
weighted by source quality; list and map viewers are synchronised so that a
selection in one propagates to the other.

Run with::

    python examples/tourism_dashboard.py
"""

from __future__ import annotations

from repro.datasets.milan_tourism import MilanTourismSpec, build_milan_tourism
from repro.experiments.figure1_mashup import Figure1Spec, build_figure1_mashup


def main() -> None:
    dataset = build_milan_tourism(
        MilanTourismSpec(microblog_accounts=60, review_discussions=25, blog_discussions=18)
    )
    spec = Figure1Spec(influencer_top=10)
    mashup, context = build_figure1_mashup(dataset, spec)

    print(f"Composition {mashup.name!r}:")
    for component in mashup.components():
        description = component.describe()
        print(f"  [{description['type']:<24}] {description['component_id']}")
    print(f"  connections: {len(mashup.connections)}, sync groups: "
          f"{[link.group for link in mashup.sync_links]}\n")

    print("Quality-driven source selection:")
    for entry in context["ranking"]:
        marker = "*" if entry.source_id in context["top_source_ids"] else " "
        print(f"  {marker} {entry.rank:>2}. {entry.source_id:<22} {entry.overall:.3f}")

    state = mashup.execute()
    indicator = state.output("sentiment", "indicator")
    print("\nSentiment indicator (influencer-authored content only):")
    print(f"  items analysed            : {indicator['item_count']}")
    print(f"  unweighted polarity       : {indicator['average_polarity']:+.3f}")
    print(f"  quality-weighted polarity : {indicator['quality_weighted_polarity']:+.3f}")
    print("  per category:")
    for category, polarity in indicator["per_category"].items():
        print(f"    {category:<16} {polarity:+.3f}")

    # Select the first influencer comment and show the synchronised map.
    rows = state.view("influencer_list")["rows"]
    if rows:
        selected = rows[0]["item_id"]
        refreshed = mashup.select("influencer_list", selected)
        map_view = refreshed.view("influencer_map")
        print(f"\nSelected {selected!r} in the influencer list;")
        print(f"the synchronised map now highlights location "
              f"{map_view['selected_location']!r} (selected_id={map_view['selected_id']!r}).")


if __name__ == "__main__":
    main()
