"""DashMash-like mashup composition framework.

Section 5 of the paper proposes a mashup paradigm in which *data services*
(wrappers over the filtered, authoritative sources), *analysis services*
(quality-based selection, filters, content-based analysis) and *viewers*
are composed by end users into situational dashboards; Figure 1 shows such
a composition for sentiment analysis.

The framework reproduces the composition semantics headlessly:

* components expose named input/output ports and are wired into a dataflow
  graph (:class:`Mashup`);
* viewers render their state as plain dictionaries so dashboards can be
  inspected, tested and serialised;
* viewers can be *synchronised*: selecting an item in one viewer publishes
  an event that updates the linked viewers (the list/map synchronisation of
  Figure 1);
* compositions can be described as JSON documents and rebuilt through the
  :class:`ComponentRegistry`, mirroring the way DashMash stored user-built
  dashboards.
"""

from repro.mashup.events import Event, EventBus
from repro.mashup.component import Component, ContentItem, Port
from repro.mashup.data_services import (
    CorpusDataService,
    MicroblogDataService,
    ReviewDataService,
    SourceDataService,
)
from repro.mashup.filters import (
    CategoryFilter,
    InfluencerFilter,
    LocationFilter,
    QualitySourceFilter,
    TimeWindowFilter,
    UnionMerge,
)
from repro.mashup.analysis import (
    BuzzWordService,
    QualityRankingService,
    SentimentAnalysisService,
)
from repro.mashup.viewers import ChartViewer, ListViewer, MapViewer
from repro.mashup.composition import Connection, DashboardState, Mashup, SyncLink
from repro.mashup.registry import ComponentRegistry, default_registry

__all__ = [
    "BuzzWordService",
    "CategoryFilter",
    "ChartViewer",
    "Component",
    "ComponentRegistry",
    "Connection",
    "ContentItem",
    "CorpusDataService",
    "DashboardState",
    "Event",
    "EventBus",
    "InfluencerFilter",
    "ListViewer",
    "LocationFilter",
    "MapViewer",
    "Mashup",
    "MicroblogDataService",
    "Port",
    "QualityRankingService",
    "QualitySourceFilter",
    "ReviewDataService",
    "SentimentAnalysisService",
    "SourceDataService",
    "SyncLink",
    "TimeWindowFilter",
    "UnionMerge",
    "default_registry",
]
