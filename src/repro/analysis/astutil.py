"""Shared AST plumbing for the invariant checkers.

All four checkers operate on plain :mod:`ast` trees — no imports of the
analysed code, no execution — so the lint pass can never be blocked by
an import-time failure in the module it is diagnosing, and it runs in
milliseconds per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

__all__ = [
    "ParsedModule",
    "parse_module",
    "iter_functions",
    "dotted_name",
    "receiver_of",
    "call_name",
]


@dataclass
class ParsedModule:
    """One parsed source file plus the bookkeeping checkers need."""

    path: Path
    #: Path relative to the scanned root (what findings report).
    relative: str
    tree: ast.Module
    source_lines: list[str]


def parse_module(path: Path, root: Path) -> ParsedModule:
    """Parse ``path`` into a :class:`ParsedModule` (syntax errors propagate)."""
    text = path.read_text(encoding="utf-8")
    try:
        relative = str(path.relative_to(root))
    except ValueError:
        relative = str(path)
    return ParsedModule(
        path=path,
        relative=relative,
        tree=ast.parse(text, filename=str(path)),
        source_lines=text.splitlines(),
    )


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[Optional[str], ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(class name or None, function node)`` for every def in the module.

    Nested functions are *not* yielded separately — they belong to their
    enclosing def, whose body visitors walk them in place (a nested
    helper runs with the same held-lock context as its definition site
    only when called there, which the visitors model conservatively by
    analysing the whole subtree).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, child


def dotted_name(node: ast.expr) -> str:
    """Render ``a.b.c``-style expressions; calls render with ``()``.

    Unrenderable parts (subscripts, literals) become ``?`` — good enough
    for the attribute-pattern matching the checkers do.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted_name(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{dotted_name(node.func)}()"
    return "?"


def receiver_of(call: ast.Call) -> Optional[ast.expr]:
    """The receiver expression of an attribute call (None for name calls)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The called method/function name (``foo`` for both ``foo()`` and ``x.foo()``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None
