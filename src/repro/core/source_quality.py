"""Source quality model (Table 1).

:class:`SourceQualityModel` orchestrates the full assessment pipeline for a
corpus of Web 2.0 sources:

1. crawl every source into a :class:`~repro.sources.crawler.CrawlSnapshot`;
2. query the web-statistics panels (Alexa-like, Feedburner-like);
3. compute the raw Table 1 measures against the Domain of Interest;
4. fit a normaliser on a benchmark population (by default the corpus
   itself, mimicking "benchmarks derived from the assessment of well-known,
   highly-ranked sources" by using the top of the observed distribution);
5. aggregate normalised measures into dimension, attribute and overall
   scores through a weighting scheme.

Steps 1–5 are executed as one *batched assessment pass* materialised into
an :class:`AssessmentContext`: every source is crawled exactly once, the
corpus-wide aggregates (e.g. the largest source's open-discussion count)
are computed once instead of once per source, and the normaliser is fitted
once and applied to the whole raw-measure matrix.

Contexts are maintained *incrementally*.  The model subscribes to the
corpus's ``CorpusChange`` notifications (see
:class:`~repro.sources.diffing.CorpusChangeTracker`), so repeated
``assess_corpus`` / ``rank`` / ``ranking_ids`` calls over an unchanged
corpus are an O(1) dirty-flag check — no per-read fingerprint scan.  When
the flag fires, the corpus is diffed against the cached context's
per-source fingerprints and only the added/changed sources are re-crawled
and re-measured; the normaliser is re-fitted only when the reference
population actually changed, unchanged assessments are reused verbatim,
and the ranking is patched via ``np.searchsorted`` surgery on the
columnar sort keys (:class:`~repro.core.columnar.SortedRankKeys`) instead
of re-sorted.  The
patched context is indistinguishable from a from-scratch rebuild — the
equivalence is pinned bit-for-bit by ``tests/test_incremental_assessment.py``.

When the patch needs a normaliser re-fit, renormalisation is further
confined through per-measure *fit signatures*
(:meth:`~repro.core.normalization.Normalizer.fit_signature`): measures
whose fitted parameters did not move keep their previously normalised
values verbatim, so a refit that only shifted one benchmark renormalises
one measure, and a refit that reproduced the previous fit exactly
renormalises nothing.

Announced mutations — corpus ``add``/``remove``/``touch`` and in-place
growth through the ``Source`` helpers (which announce themselves to their
owning corpora) — raise the flag automatically.  Unannounced growth that
bypasses the helpers (e.g. appending directly into ``discussion.posts``)
needs either ``deep=True`` on the next read, which forces the fingerprint
scan, or a ``touch()``; count-preserving unannounced edits are visible to
no tier and always require :meth:`~repro.sources.corpus.SourceCorpus.touch`
(or :meth:`SourceQualityModel.invalidate`).

Refresh is *lazy*: the first read after a mutation pays the patch.  To
move that cost off the read path, register the model with an
:class:`repro.serving.EagerRefreshScheduler`
(``scheduler.register_source_model(model, corpus)``), which drives
:meth:`assessment_context` in the background — the identical incremental
path, so eager and lazy results are bit-identical.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

import numpy as np

from repro.core.columnar import (
    AssessmentColumns,
    SortedRankKeys,
    columns_from_vectors,
    confine_renormalization_columns,
    ensure_finite_columns,
    freeze,
    vectors_from_columns,
)
from repro.core.dimensions import QualityAttribute, QualityDimension
from repro.core.domain import DomainOfInterest
from repro.core.measures import MeasureRegistry, source_measure_registry
from repro.core.normalization import BenchmarkNormalizer, Normalizer
from repro.core.scoring import (
    QualityScore,
    WeightingScheme,
    build_quality_score_columns,
    scores_from_columns,
    uniform_scheme,
)
from repro.core.source_measures import (
    SourceMeasurementContext,
    compute_source_measures,
)
from repro.errors import AssessmentError
from repro.perf.cache import LRUCache, compose_source_fingerprint, source_fingerprint
from repro.perf.counters import PerfCounters
from repro.serving.rwlock import ReadWriteLock, ordered
from repro.sources.corpus import SourceCorpus
from repro.sources.crawler import Crawler, CrawlSnapshot
from repro.sources.diffing import (
    CorpusChangeTracker,
    diff_fingerprint_maps,
    gather_rows,
    patch_measure_columns,
    scoped_fingerprints,
)
from repro.sources.models import Source
from repro.sources.webstats import AlexaLikeService, FeedburnerLikeService, WebStatsPanel

__all__ = ["SourceAssessment", "AssessmentContext", "SourceQualityModel"]


@dataclass
class SourceAssessment:
    """Quality assessment of a single source."""

    source_id: str
    score: QualityScore
    snapshot: CrawlSnapshot

    @property
    def overall(self) -> float:
        """Overall weighted-average quality in [0, 1]."""
        return self.score.overall

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "source_id": self.source_id,
            "score": self.score.to_dict(),
            "snapshot": self.snapshot.to_dict(),
        }


@dataclass(eq=False)
class AssessmentContext:
    """One batched assessment pass over a corpus, materialised for reuse.

    The primary state is *columnar* (:class:`~repro.core.columnar.AssessmentColumns`):
    one frozen float64 array per measure, plus the overall / dimension /
    attribute score arrays and the sorted rank keys, all aligned on the
    stable source-index map.  The dict-shaped surface the rest of the
    system consumes (``normalized_vectors``, ``assessments``,
    ``ranking``) is materialised lazily from the columns on first access
    and cached — bit-exact, because ``tolist()`` round-trips float64
    exactly.  Crawl snapshots and the raw measure vectors stay eager:
    they are produced per source by the crawler/measure pass anyway and
    back the raw-measure cache.

    ``sources`` / ``benchmark_sources`` hold strong references to the
    source objects the context was built from.  The fingerprints include
    ``id(source)``, so the cached context must keep those objects alive:
    otherwise CPython could reuse a freed id for a different-content source
    with identical counts and the cache would silently serve stale results.

    Contexts are published immutable; the lazy caches are plain attribute
    writes (atomic under the GIL), so concurrent readers may at worst
    materialise the same view twice.
    """

    fingerprint: tuple
    benchmark_fingerprint: Optional[tuple]
    sources: tuple[Source, ...]
    benchmark_sources: Optional[tuple[Source, ...]]
    snapshots: dict[str, CrawlSnapshot]
    raw_vectors: dict[str, dict[str, float]]
    #: The columnar core: raw/normalized measure columns, score arrays and
    #: the sorted rank keys, row-aligned with ``columns.subject_ids``.
    columns: AssessmentColumns
    #: Name of the weighting scheme the scores were computed under.
    scheme_name: str
    #: Per-source fingerprints the context was derived from — the diff base
    #: for incremental patching.
    source_fingerprints: dict[str, tuple] = field(default_factory=dict)
    #: The corpus-wide open-discussion maximum the raw measures were
    #: computed against; when a mutation moves it, every raw vector must be
    #: re-measured (from the cached snapshots — no re-crawl).
    max_open_discussions: int = 0
    _normalized_vectors: Optional[dict[str, dict[str, float]]] = field(
        default=None, init=False, repr=False
    )
    _scores: Optional[dict[str, QualityScore]] = field(
        default=None, init=False, repr=False
    )
    _assessments: Optional[dict[str, SourceAssessment]] = field(
        default=None, init=False, repr=False
    )
    _ranking: Optional[tuple[SourceAssessment, ...]] = field(
        default=None, init=False, repr=False
    )

    @property
    def normalized_vectors(self) -> dict[str, dict[str, float]]:
        """Per-source normalised vectors (lazy dict view of the columns)."""
        if self._normalized_vectors is None:
            self._normalized_vectors = vectors_from_columns(
                self.columns.subject_ids, self.columns.measures, self.columns.normalized
            )
        return self._normalized_vectors

    def _score_map(self) -> dict[str, QualityScore]:
        if self._scores is None:
            self._scores = scores_from_columns(
                self.columns.subject_ids,
                self.columns.measures,
                self.columns.raw,
                self.columns.normalized,
                self.columns.overall,
                self.columns.dimension_scores,
                self.columns.attribute_scores,
                self.scheme_name,
            )
        return self._scores

    @property
    def assessments(self) -> dict[str, SourceAssessment]:
        """Per-source assessments (lazy object view of the columns)."""
        if self._assessments is None:
            scores = self._score_map()
            self._assessments = {
                source_id: SourceAssessment(
                    source_id=source_id,
                    score=scores[source_id],
                    snapshot=self.snapshots[source_id],
                )
                for source_id in self.columns.subject_ids
            }
        return self._assessments

    @property
    def ranking(self) -> tuple[SourceAssessment, ...]:
        """Assessments by decreasing overall quality (ties by source id)."""
        if self._ranking is None:
            assessments = self.assessments
            self._ranking = tuple(
                assessments[source_id] for source_id in self.columns.ranking_ids()
            )
        return self._ranking


@dataclass
class _IncrementalEntry:
    """Per-(corpus, benchmark) incremental state of a quality model.

    Holds the latest context (which anchors its source objects), the O(1)
    dirty-flag trackers, and the normaliser fit token the context's
    normalised matrix corresponds to (see ``Normalizer.fit_count``).
    """

    corpus_ref: "weakref.ref[SourceCorpus]"
    tracker: CorpusChangeTracker
    benchmark_ref: Optional["weakref.ref[SourceCorpus]"]
    benchmark_tracker: Optional[CorpusChangeTracker]
    context: AssessmentContext
    fit_token: int
    #: Per-measure fit signature the context's normalised matrix was
    #: computed with (``Normalizer.fit_signature``); an empty dict means
    #: "unknown", forcing the next refit to renormalise every measure.
    fit_signature: dict = field(default_factory=dict)
    #: Set when a rebuild failed after draining its invalidation burst:
    #: the burst's source ids are lost, so the retry must fall back to
    #: the full fingerprint scan instead of scoping to the next burst.
    scope_lost: bool = False


class SourceQualityModel:
    """Assess and rank Web 2.0 sources against a Domain of Interest."""

    #: Number of (corpus, benchmark) assessment contexts retained per model.
    CONTEXT_CACHE_SIZE = 8

    def __init__(
        self,
        domain: DomainOfInterest,
        registry: Optional[MeasureRegistry] = None,
        scheme: Optional[WeightingScheme] = None,
        normalizer: Optional[Normalizer] = None,
        alexa: Optional[WebStatsPanel] = None,
        feedburner: Optional[WebStatsPanel] = None,
        crawler: Optional[Crawler] = None,
        domain_independent_only: bool = False,
    ) -> None:
        self._domain = domain
        self._registry = registry or source_measure_registry()
        if domain_independent_only:
            names = [measure.name for measure in self._registry.domain_independent()]
            self._registry = self._registry.subset(names)
        self._scheme = scheme or uniform_scheme(self._registry)
        self._normalizer = normalizer or BenchmarkNormalizer(self._registry)
        self._alexa = alexa or AlexaLikeService()
        self._feedburner = feedburner or FeedburnerLikeService()
        self._crawler = crawler or Crawler()
        self._contexts = LRUCache(maxsize=self.CONTEXT_CACHE_SIZE)
        self._measure_cache = LRUCache(maxsize=self.CONTEXT_CACHE_SIZE)
        #: (id(corpus), id(benchmark) or None) -> incremental state.  The
        #: id keys are guarded by weakrefs inside the entries, so a reused
        #: id can never serve another corpus's context.  Each entry records
        #: the normaliser's ``fit_count`` its context was computed with; a
        #: mismatch (another corpus — or another model sharing the same
        #: normaliser instance — was fitted in between) forces a re-fit
        #: before the normaliser is reused for incremental patching.
        self._incremental: dict[tuple[int, Optional[int]], _IncrementalEntry] = {}
        #: Serialises context builders/patchers (and the shared normaliser
        #: they refit); clean-path reads never take it.  Reentrant: a
        #: holder (a composite serving lock) may read and refresh freely.
        self._refresh_mutex = threading.RLock()
        #: Reader/writer lock: reads take the shared side around grabbing
        #: the current context; patchers publish a patched context under
        #: the exclusive side in O(1) (the context itself is built aside).
        self._rwlock = ReadWriteLock()
        self.counters = PerfCounters()

    # -- accessors ------------------------------------------------------------------

    @property
    def domain(self) -> DomainOfInterest:
        """The Domain of Interest assessments are computed against."""
        return self._domain

    @property
    def registry(self) -> MeasureRegistry:
        """The measure registry in use."""
        return self._registry

    @property
    def scheme(self) -> WeightingScheme:
        """The weighting scheme in use."""
        return self._scheme

    @property
    def rwlock(self) -> ReadWriteLock:
        """The model's reader/writer lock (shared with its serving queue)."""
        return self._rwlock

    @property
    def refresh_mutex(self) -> threading.RLock:
        """The gate serialising context builds (shared with the scheduler)."""
        return self._refresh_mutex

    def invalidate(self) -> None:
        """Drop every cached assessment context and raw-measure matrix.

        Needed only after unannounced in-place mutations that keep every
        content count identical (which the structural fingerprint cannot
        detect); ``corpus.touch(source_id)`` is the finer-grained
        alternative — it changes the fingerprint, so only the affected
        corpus re-assesses.  Also releases the source objects anchored by
        the cached contexts.
        """
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._contexts.invalidate()
            self._measure_cache.invalidate()
            for key in list(self._incremental):
                self._discard_entry(key)

    def close(self) -> None:
        """Detach every incremental entry's bus subscription (idempotent).

        The cached contexts stay readable; the model just stops tracking
        corpus changes, exactly like a consumer queue after ``close()``.
        """
        with ordered(self._refresh_mutex, "consumer.gate"):
            for key in list(self._incremental):
                self._discard_entry(key)

    # -- raw measures ------------------------------------------------------------------

    def measurement_context(
        self, source: Source, corpus: Optional[SourceCorpus] = None
    ) -> SourceMeasurementContext:
        """Build the measurement context of ``source`` within ``corpus``.

        One-off path used for single-source inspection; the batched pipeline
        goes through :meth:`raw_measures`, which shares crawl snapshots and
        corpus aggregates across the whole corpus instead.
        """
        snapshot = self._crawler.crawl_source(source)
        max_open = (
            corpus.largest_source_open_discussions()
            if corpus is not None
            else snapshot.open_discussions
        )
        return SourceMeasurementContext(
            snapshot=snapshot,
            domain=self._domain,
            alexa=self._alexa.observe(source),
            feedburner=self._feedburner.observe(source),
            corpus_max_open_discussions=max_open,
        )

    def _measure_corpus(
        self,
        corpus: SourceCorpus,
        corpus_max_open_discussions: Optional[int] = None,
    ) -> tuple[dict[str, CrawlSnapshot], dict[str, dict[str, float]]]:
        """Single-pass crawl + raw-measure matrix for every source of ``corpus``.

        ``corpus_max_open_discussions`` overrides the corpus-wide
        open-discussion maximum the "compared to largest forum" measures
        normalise against — the sharded path injects the *global* maximum
        here, because a shard's local maximum would skew those measures.
        """
        self.counters.increment("measure_passes")
        snapshots = self._crawler.crawl_corpus(corpus)
        max_open = (
            corpus.largest_source_open_discussions()
            if corpus_max_open_discussions is None
            else corpus_max_open_discussions
        )
        vectors: dict[str, dict[str, float]] = {}
        for source in corpus:
            context = SourceMeasurementContext(
                snapshot=snapshots[source.source_id],
                domain=self._domain,
                alexa=self._alexa.observe(source),
                feedburner=self._feedburner.observe(source),
                corpus_max_open_discussions=max_open,
            )
            vectors[source.source_id] = compute_source_measures(
                context, registry=self._registry
            )
        return snapshots, vectors

    def _measured(
        self, corpus: SourceCorpus, fingerprint: Optional[tuple] = None
    ) -> tuple[dict[str, CrawlSnapshot], dict[str, dict[str, float]]]:
        if len(corpus) == 0:
            raise AssessmentError("cannot assess an empty corpus")
        key = fingerprint if fingerprint is not None else corpus.content_fingerprint()
        # The cached entry anchors the source objects (first element): the
        # fingerprint key contains id()s, which must not be reused while the
        # entry lives.
        entry = self._measure_cache.get_or_create(
            key, lambda: (tuple(corpus), *self._measure_corpus(corpus))
        )
        return entry[1], entry[2]

    def raw_measures(self, corpus: SourceCorpus) -> dict[str, dict[str, float]]:
        """Raw Table 1 measure vectors for every source of ``corpus``.

        Results are cached under the corpus fingerprint; the returned
        mapping is a copy, so callers may mutate it freely.
        """
        _, vectors = self._measured(corpus)
        return {source_id: dict(vector) for source_id, vector in vectors.items()}

    # -- assessment --------------------------------------------------------------------

    def _fit_normalizer_columns(
        self, reference_columns: Mapping[str, np.ndarray]
    ) -> None:
        """Fit the shared normaliser (its ``fit_count`` advances itself)."""
        self._normalizer.fit_columns(reference_columns)
        self.counters.increment("normalizer_fits")

    def _reference_columns(
        self,
        raw_columns: dict[str, np.ndarray],
        benchmark_corpus: Optional[SourceCorpus],
        benchmark_fingerprint: Optional[tuple],
    ) -> dict[str, np.ndarray]:
        """The columns the normaliser fit runs on (benchmark or the corpus)."""
        if benchmark_corpus is None:
            return raw_columns
        _, benchmark_vectors = self._measured(benchmark_corpus, benchmark_fingerprint)
        names, _ = self._registry.column_layout()
        _, _, reference_columns = columns_from_vectors(benchmark_vectors, names)
        ensure_finite_columns(reference_columns)
        return reference_columns

    def _build_context(
        self,
        corpus: SourceCorpus,
        fingerprint: tuple,
        benchmark_corpus: Optional[SourceCorpus],
        benchmark_fingerprint: Optional[tuple],
    ) -> AssessmentContext:
        self.counters.increment("context_builds")
        snapshots, raw_vectors = self._measured(corpus, fingerprint)
        names, _ = self._registry.column_layout()
        subject_ids, measures, raw_columns = columns_from_vectors(raw_vectors, names)
        ensure_finite_columns(raw_columns)
        self._fit_normalizer_columns(
            self._reference_columns(raw_columns, benchmark_corpus, benchmark_fingerprint)
        )

        normalized = self._normalizer.normalize_columns(raw_columns)
        overall, dimension_scores, attribute_scores = build_quality_score_columns(
            subject_ids, measures, normalized, self._registry, self._scheme
        )
        columns = AssessmentColumns(
            subject_ids=subject_ids,
            measures=measures,
            raw=raw_columns,
            normalized=normalized,
            overall=overall,
            dimension_scores=dimension_scores,
            attribute_scores=attribute_scores,
            rank=SortedRankKeys.from_scores(overall, subject_ids),
        )
        return AssessmentContext(
            fingerprint=fingerprint,
            benchmark_fingerprint=benchmark_fingerprint,
            sources=tuple(corpus),
            benchmark_sources=(
                tuple(benchmark_corpus) if benchmark_corpus is not None else None
            ),
            snapshots=snapshots,
            raw_vectors=raw_vectors,
            columns=columns,
            scheme_name=self._scheme.name,
            source_fingerprints={entry[0]: entry for entry in fingerprint},
            max_open_discussions=max(
                (snapshot.open_discussions for snapshot in snapshots.values()),
                default=0,
            ),
        )

    def _patch_context(
        self,
        entry: _IncrementalEntry,
        corpus: SourceCorpus,
        fingerprint: tuple,
        benchmark_corpus: Optional[SourceCorpus],
        benchmark_fingerprint: Optional[tuple],
    ) -> tuple[AssessmentContext, int, dict]:
        """Patch ``entry.context`` to match the current corpus content.

        Returns the patched context plus the normaliser fit token and
        per-measure fit signature it corresponds to.  The patch is built so
        that every float in the result is produced by the same function, in
        the same state, over the same inputs, in the same iteration order
        as a from-scratch :meth:`_build_context` — the two are
        bit-identical:

        * only added/changed sources are re-crawled; raw vectors are
          re-measured for those sources only, unless the corpus-wide
          open-discussion maximum moved (then every vector is re-measured
          from the *cached* snapshots — still no re-crawl);
        * the normaliser is re-fitted only when the reference population
          changed (content or order) or when it was re-fitted for another
          corpus in between (fit-token mismatch); without a re-fit, only
          the changed vectors are re-normalised and re-scored.  When a
          re-fit does run, its per-measure fit signatures are compared to
          the previous fit's and renormalisation is confined to measures
          whose fit actually moved (see
          :func:`~repro.core.normalization.confine_renormalization`);
        * measure columns are patched in place by changed-source index:
          one gather per column carries the unchanged values over bit for
          bit, then exactly the re-measured rows are overwritten; scoring
          re-runs as whole-column kernels (identical inputs → identical
          bits), and the cached rank keys are patched via
          ``np.searchsorted`` for just the sources whose overall moved.
        """
        previous = entry.context
        # The corpus fingerprint tuple (computed once for the cache key)
        # already carries every per-source fingerprint in corpus order —
        # derive the diff from it instead of walking the corpus again.
        current_fingerprints = {entry_fp[0]: entry_fp for entry_fp in fingerprint}
        current_sources = {source.source_id: source for source in corpus}
        diff = diff_fingerprint_maps(previous.source_fingerprints, current_fingerprints)
        corpus_order = list(current_sources)
        previous_order = [entry_fp[0] for entry_fp in previous.fingerprint]

        snapshots = dict(previous.snapshots)
        raw_vectors = dict(previous.raw_vectors)
        for source_id in diff.removed:
            snapshots.pop(source_id, None)
            raw_vectors.pop(source_id, None)

        recrawl_ids = list(diff.touched)
        if recrawl_ids:
            fresh_snapshots = self._crawler.crawl_corpus(
                current_sources[source_id] for source_id in recrawl_ids
            )
            self.counters.increment("sources_recrawled", len(recrawl_ids))
        else:
            fresh_snapshots = {}
        snapshot_changed = {
            source_id
            for source_id, snapshot in fresh_snapshots.items()
            if snapshots.get(source_id) != snapshot
        }
        snapshots.update(fresh_snapshots)

        # The corpus-wide maximum comes from the snapshots (fresh ones for
        # every changed source, cached ones for the rest): O(n) with no
        # per-source list materialisation, and consistent with the content
        # view the vectors are computed from.
        max_open = max(
            (snapshots[source_id].open_discussions for source_id in current_sources),
            default=0,
        )
        if max_open != previous.max_open_discussions:
            # The "compared to largest forum" measures renormalise against
            # this maximum: every vector changes, but from cached snapshots.
            measure_ids = corpus_order
            self.counters.increment("measure_renormalisations")
        else:
            measure_ids = recrawl_ids

        changed_vector_ids: set[str] = set()
        if measure_ids:
            self.counters.increment("sources_remeasured", len(measure_ids))
        for source_id in measure_ids:
            source = current_sources[source_id]
            measurement = SourceMeasurementContext(
                snapshot=snapshots[source_id],
                domain=self._domain,
                alexa=self._alexa.observe(source),
                feedburner=self._feedburner.observe(source),
                corpus_max_open_discussions=max_open,
            )
            vector = compute_source_measures(measurement, registry=self._registry)
            if raw_vectors.get(source_id) != vector:
                changed_vector_ids.add(source_id)
            raw_vectors[source_id] = vector

        # Re-key every map in corpus order so the patched context is
        # indistinguishable from a rebuild even for order-sensitive float
        # accumulations (e.g. a z-score normaliser's reference sums).
        snapshots = {source_id: snapshots[source_id] for source_id in corpus_order}
        raw_vectors = {source_id: raw_vectors[source_id] for source_id in corpus_order}

        # Columnar patch: carry every unchanged value over with one gather
        # per measure column, overwrite exactly the re-measured rows.
        previous_columns = previous.columns
        subject_ids = tuple(corpus_order)
        measures = previous_columns.measures
        raw_columns, fresh_rows, rows = patch_measure_columns(
            previous_columns.index,
            previous_columns.raw,
            subject_ids,
            {source_id: raw_vectors[source_id] for source_id in changed_vector_ids},
            measures,
        )
        ensure_finite_columns(raw_columns)
        safe = np.where(rows < 0, 0, rows)

        if benchmark_corpus is not None:
            population_changed = benchmark_fingerprint != previous.benchmark_fingerprint
        else:
            population_changed = (
                bool(changed_vector_ids or diff.removed or diff.added)
                or corpus_order != previous_order
            )

        needs_refit = population_changed or entry.fit_token != self._normalizer.fit_count
        if needs_refit:
            previous_signature = entry.fit_signature
            self._fit_normalizer_columns(
                self._reference_columns(
                    raw_columns, benchmark_corpus, benchmark_fingerprint
                )
            )
            fit_signature = self._normalizer.fit_signature()
            # ROADMAP (f): confine renormalisation to measures whose fit
            # actually moved; bit-identical to a full normalize_columns pass.
            normalized = confine_renormalization_columns(
                self._normalizer,
                self.counters,
                raw_columns,
                fresh_rows,
                {
                    name: previous_columns.normalized[name][safe]
                    for name in measures
                },
                previous_signature,
                fit_signature,
            )
        else:
            fit_signature = entry.fit_signature
            normalized = {
                name: previous_columns.normalized[name][safe] for name in measures
            }
            if fresh_rows.size:
                for name in measures:
                    normalized[name][fresh_rows] = self._normalizer.normalize_column(
                        name, raw_columns[name][fresh_rows]
                    )
        normalized = {name: freeze(column) for name, column in normalized.items()}

        # Scoring is a pure per-row function of the normalised columns;
        # recomputing every row over bit-identical inputs reproduces the
        # unchanged scores bit for bit, so no per-source reuse set is
        # needed — the whole corpus re-scores in a handful of array ops.
        overall, dimension_scores, attribute_scores = build_quality_score_columns(
            subject_ids, measures, normalized, self._registry, self._scheme
        )

        rank = self._patch_ranking(
            previous_columns, diff.removed, subject_ids, overall, rows
        )
        columns = AssessmentColumns(
            subject_ids=subject_ids,
            measures=measures,
            raw=raw_columns,
            normalized=normalized,
            overall=overall,
            dimension_scores=dimension_scores,
            attribute_scores=attribute_scores,
            rank=rank,
        )
        context = AssessmentContext(
            fingerprint=fingerprint,
            benchmark_fingerprint=benchmark_fingerprint,
            sources=tuple(corpus),
            benchmark_sources=(
                tuple(benchmark_corpus) if benchmark_corpus is not None else None
            ),
            snapshots=snapshots,
            raw_vectors=raw_vectors,
            columns=columns,
            scheme_name=self._scheme.name,
            source_fingerprints=current_fingerprints,
            max_open_discussions=max_open,
        )
        self.counters.increment("context_patches")
        # Seed the raw-measure cache so raw_measures() stays hot after a patch.
        self._measure_cache.put(fingerprint, (context.sources, snapshots, raw_vectors))
        return (
            context,
            (self._normalizer.fit_count if needs_refit else entry.fit_token),
            fit_signature,
        )

    def _patch_ranking(
        self,
        previous_columns: AssessmentColumns,
        removed: tuple[str, ...],
        subject_ids: tuple[str, ...],
        overall: np.ndarray,
        rows: np.ndarray,
    ) -> SortedRankKeys:
        """Update the cached rank keys for the scores that moved.

        Sources whose ``(overall, source_id)`` sort key is unchanged keep
        their position; moved sources are removed at their old key and
        inserted at the new one via ``np.searchsorted`` on the sorted
        score array (see :class:`~repro.core.columnar.SortedRankKeys`) —
        O(k·n) array surgery instead of an O(n log n) re-sort.  When most
        of the corpus moved, one vectorized sort is cheaper, so the patch
        falls back to it.  ``rows`` is the gather map from the previous
        row order (``-1`` marks newly added sources).
        """
        previous_overall = previous_columns.overall
        present = rows >= 0
        gathered = previous_overall[np.where(present, rows, 0)]
        moved_mask = ~present | (gathered != overall)
        moved = np.nonzero(moved_mask)[0]
        if len(moved) + len(removed) > max(8, len(subject_ids) // 2):
            self.counters.increment("ranking_rebuilds")
            return SortedRankKeys.from_scores(overall, subject_ids)
        rank = previous_columns.rank.copy()
        previous_index = previous_columns.index
        for source_id in removed:
            row = previous_index.get(source_id)
            if row is not None:
                rank.remove(float(previous_overall[row]), source_id)
        overall_list = overall.tolist()
        for i in moved.tolist():
            source_id = subject_ids[i]
            row = previous_index.get(source_id)
            if row is not None:
                rank.remove(float(previous_overall[row]), source_id)
            rank.insert(overall_list[i], source_id)
        self.counters.increment("ranking_patches")
        return rank

    def _resolve_entry(
        self,
        key: tuple[int, Optional[int]],
        corpus: SourceCorpus,
        benchmark_corpus: Optional[SourceCorpus],
        prune: bool = True,
    ) -> Optional[_IncrementalEntry]:
        """Return the live incremental entry for ``key``, discarding stale ones.

        ``prune=False`` (the lock-free fast path) only inspects: discarding
        a stale entry mutates the table, which belongs under the refresh
        mutex.
        """
        entry = self._incremental.get(key)
        if entry is None:
            return None
        if entry.corpus_ref() is not corpus:
            if prune:
                self._discard_entry(key)  # id(corpus) was reused by a new object
            return None
        if benchmark_corpus is not None and (
            entry.benchmark_ref is None or entry.benchmark_ref() is not benchmark_corpus
        ):
            if prune:
                self._discard_entry(key)
            return None
        return entry

    def _entry_clean(self, entry: _IncrementalEntry, deep: bool) -> bool:
        """The O(1) staleness check over an entry's bus-backed trackers."""
        return (
            not deep
            and not entry.tracker.dirty
            and (entry.benchmark_tracker is None or not entry.benchmark_tracker.dirty)
        )

    def _discard_entry(self, key: tuple[int, Optional[int]]) -> None:
        """Drop one incremental entry, detaching its bus subscriptions.

        The trackers' subscriptions are only weakly held by the bus, but
        closing them here makes the detach deterministic: a pruned entry
        stops paying per-mutation intake bookkeeping immediately.
        """
        entry = self._incremental.pop(key, None)
        if entry is None:
            return
        entry.tracker.close()
        if entry.benchmark_tracker is not None:
            entry.benchmark_tracker.close()

    def _prune_incremental(self) -> None:
        """Drop entries whose corpus died; bound the table to a small multiple."""
        dead = [
            key
            for key, entry in self._incremental.items()
            if entry.corpus_ref() is None
        ]
        for key in dead:
            self._discard_entry(key)
        while len(self._incremental) > 2 * self.CONTEXT_CACHE_SIZE:
            self._discard_entry(next(iter(self._incremental)))

    def assessment_context(
        self,
        corpus: SourceCorpus,
        benchmark_corpus: Optional[SourceCorpus] = None,
        deep: bool = False,
    ) -> AssessmentContext:
        """Return the (cached, incrementally maintained) assessment context.

        The common path — no announced mutation since the last call — is an
        O(1) dirty-flag check.  A dirty corpus is fingerprint-diffed and the
        context patched incrementally (see :meth:`_patch_context`); the
        content fingerprinting is *burst-scoped* — only the sources the
        drained invalidation burst names are rescanned, the rest pass an
        O(1) probe check and keep their recorded fingerprints.
        ``deep=True`` skips the flag and forces the full fingerprint scan;
        use it after *unannounced* in-place growth (objects appended
        directly into a source's internal lists, bypassing the ``Source``
        helpers), which neither the bus nor the probe sweep can see.

        This is also the refresh entry point the eager serving layer
        drives off the read path: it is idempotent, O(1) when the corpus
        is unchanged, and produces bit-identical contexts whether called
        eagerly (by a scheduler) or lazily (by the next read).

        Thread-safety: the clean path is a lock-free snapshot read
        (contexts are immutable once published; the shared read lock is
        taken only around grabbing the reference).  Builders are
        serialised under ``refresh_mutex``; they mark the entry's trackers
        clean *before* reading the corpus and publish the patched context
        under the write lock in O(1), so a mutation landing mid-build
        leaves the entry dirty and the next read patches again — a read
        racing a patch serves the previous consistent context, and a
        quiesced model is bit-identical to a from-scratch rebuild.
        """
        if len(corpus) == 0:
            raise AssessmentError("cannot assess an empty corpus")
        entry_key = (
            id(corpus),
            id(benchmark_corpus) if benchmark_corpus is not None else None,
        )
        entry = self._resolve_entry(entry_key, corpus, benchmark_corpus, prune=False)
        if entry is not None and self._entry_clean(entry, deep):
            self.counters.increment("context_hits")
            self.counters.increment("staleness_flag_hits")
            with self._rwlock.read_lock():
                return entry.context

        with ordered(self._refresh_mutex, "consumer.gate"):
            entry = self._resolve_entry(entry_key, corpus, benchmark_corpus)
            if entry is not None and self._entry_clean(entry, deep):
                # Another thread patched while this one waited for the gate.
                self.counters.increment("context_hits")
                self.counters.increment("staleness_flag_hits")
                return entry.context
            fresh_entry = entry is None
            pending = None
            if fresh_entry:
                # Create the trackers *before* reading the corpus: their
                # clean version captures "now", so any mutation landing
                # during the build below re-dirties the entry.
                self._prune_incremental()
                entry = _IncrementalEntry(
                    corpus_ref=weakref.ref(corpus),
                    tracker=CorpusChangeTracker(corpus),
                    benchmark_ref=(
                        weakref.ref(benchmark_corpus)
                        if benchmark_corpus is not None
                        else None
                    ),
                    benchmark_tracker=(
                        CorpusChangeTracker(benchmark_corpus)
                        if benchmark_corpus is not None
                        else None
                    ),
                    context=None,  # type: ignore[arg-type] - published below
                    fit_token=-1,
                )
            else:
                pending = entry.tracker.subscription.drain()
                if entry.benchmark_tracker is not None:
                    entry.benchmark_tracker.mark_clean()

            try:
                # Burst-scoped fingerprinting: the drained burst names every
                # source an *announced* mutation touched, so only those pay
                # the O(discussions) content fingerprint — the rest reuse
                # their recorded fingerprints after an O(1) probe check
                # (see :func:`~repro.sources.diffing.scoped_fingerprints`).
                # ``deep=True``, a fresh entry, a detail-less burst (retry
                # after a failure, version bump without events) and a lost
                # scope all fall back to the full content scan.
                if (
                    not deep
                    and not fresh_entry
                    and not entry.scope_lost
                    and pending is not None
                    and pending.source_ids
                    and entry.context is not None
                ):
                    _, current_fps = scoped_fingerprints(
                        entry.context.source_fingerprints, corpus, pending.source_ids
                    )
                    fingerprint = tuple(current_fps.values())
                    self.counters.increment("scoped_diffs")
                else:
                    fingerprint = corpus.content_fingerprint()
                benchmark_fingerprint = (
                    benchmark_corpus.content_fingerprint()
                    if benchmark_corpus is not None
                    else None
                )
                cache_key = (fingerprint, benchmark_fingerprint)
                context = self._contexts.get(cache_key)
                if context is not None:
                    self.counters.increment("context_hits")
                    if not fresh_entry and entry.context is context:
                        fit_token = entry.fit_token
                        fit_signature = entry.fit_signature
                    else:
                        fit_token = -1  # unknown normaliser: force a re-fit on patch
                        fit_signature = {}
                elif not fresh_entry:
                    context, fit_token, fit_signature = self._patch_context(
                        entry,
                        corpus,
                        fingerprint,
                        benchmark_corpus,
                        benchmark_fingerprint,
                    )
                    self._contexts.put(cache_key, context)
                else:
                    context = self._build_context(
                        corpus, fingerprint, benchmark_corpus, benchmark_fingerprint
                    )
                    fit_token = self._normalizer.fit_count
                    fit_signature = self._normalizer.fit_signature()
                    self._contexts.put(cache_key, context)
            except BaseException:
                # The trackers were marked clean above; a failed rebuild
                # must not leave the stale published context looking
                # fresh — restore the staleness so the next read retries.
                # The drained burst detail is lost with the failure, so
                # the retry must run the full fingerprint scan.
                if not fresh_entry:
                    entry.scope_lost = True
                    entry.tracker.force_dirty()
                    if entry.benchmark_tracker is not None:
                        entry.benchmark_tracker.force_dirty()
                raise

            # Publish: the context was built aside, the swap is O(1).
            with self._rwlock.write_lock():
                entry.context = context
                entry.fit_token = fit_token
                entry.fit_signature = fit_signature
                entry.scope_lost = False
                if fresh_entry:
                    self._incremental[entry_key] = entry
            return context

    # -- snapshot export / restore (persistence layer) -----------------------------

    def export_assessment_state(self, corpus: SourceCorpus) -> dict[str, Any]:
        """Serialise the corpus's assessment context to a JSON-compatible dict.

        Refreshes first (the export is exact for the current corpus).
        The payload is *columnar*: per-measure raw/normalised float64
        columns plus the score arrays, row-aligned with ``order``.  Full
        fingerprints and source objects are not exported — they embed
        ``id()`` values — but the per-source post totals (the one
        fingerprint field that costs O(discussions) to recompute) are, so
        :meth:`restore_assessment_state` composes trusted fingerprints
        from the section instead of rescanning content.  Only the
        default-benchmark context (normaliser fitted on the corpus
        itself) is exported; explicit benchmark corpora are a transient
        experiment configuration.
        """
        context = self.assessment_context(corpus)
        columns = context.columns
        return {
            "order": list(columns.subject_ids),
            "measures": list(columns.measures),
            "ranking": list(columns.ranking_ids()),
            "snapshots": {
                source_id: snapshot.to_dict()
                for source_id, snapshot in context.snapshots.items()
            },
            "raw_columns": {
                name: columns.raw[name].tolist() for name in columns.measures
            },
            "normalized_columns": {
                name: columns.normalized[name].tolist() for name in columns.measures
            },
            "overall": columns.overall.tolist(),
            "dimension_scores": {
                dimension.value: scores.tolist()
                for dimension, scores in columns.dimension_scores.items()
            },
            "attribute_scores": {
                attribute.value: scores.tolist()
                for attribute, scores in columns.attribute_scores.items()
            },
            "scheme_name": context.scheme_name,
            # Per-source content fingerprint hints (the per-discussion post
            # sums — the only non-O(1) fingerprint field): restore composes
            # trusted fingerprints from these instead of rescanning content.
            "post_totals": {entry[0]: entry[5] for entry in context.fingerprint},
            "max_open_discussions": context.max_open_discussions,
        }

    def restore_assessment_state(
        self, corpus: SourceCorpus, payload: Mapping[str, Any]
    ) -> AssessmentContext:
        """Install an exported assessment context for ``corpus``.

        Rebuilds the :class:`AssessmentContext` around the recovered
        corpus's live source objects.  Fingerprints are *composed* from
        the section-carried per-source post totals plus O(1) live fields
        (they embed ``id()``, so the ids are fresh but the content scan
        is skipped), the columnar state is adopted directly from the
        payload's arrays, the dict-shaped views stay lazy, and the
        context and raw-measure caches are seeded; it also
        installs the incremental entry for ``corpus`` directly — exactly
        the state :meth:`assessment_context` would leave behind, so the
        next read (or a journal-tail replay) is an O(1) flag check or an
        incremental patch, never a crawl.  The entry pins
        ``fit_token = -1``: the first post-restore mutation forces a
        normaliser re-fit from the restored raw vectors — arithmetic
        only, still no re-crawl — keeping every later patch bit-identical
        to a cold rebuild's.

        Raises :class:`~repro.errors.CorruptSnapshotError` when the
        payload does not cover exactly this corpus's sources; callers
        (the recovery path) degrade to a cold build on that error.
        """
        from repro.errors import CorruptSnapshotError

        if len(corpus) == 0:
            raise AssessmentError("cannot assess an empty corpus")
        order = [source.source_id for source in corpus]
        try:
            if sorted(order) != sorted(payload["snapshots"]):
                raise CorruptSnapshotError(
                    "assessment state does not match the recovered corpus"
                )
            payload_order = list(payload["order"])
            if sorted(payload_order) != sorted(order):
                raise CorruptSnapshotError(
                    "assessment state does not match the recovered corpus"
                )
            measures = tuple(payload["measures"])
            snapshots = {
                source_id: CrawlSnapshot.from_dict(payload["snapshots"][source_id])
                for source_id in order
            }
            # Re-align the persisted columns to the recovered corpus order
            # (normally the identity gather — snapshot and corpus sections
            # are written from the same pass).
            payload_index = {
                source_id: i for i, source_id in enumerate(payload_order)
            }
            alignment = np.asarray(
                [payload_index[source_id] for source_id in order], dtype=np.intp
            )

            def column(values: Any) -> np.ndarray:
                array = np.asarray(values, dtype=np.float64)
                if array.ndim != 1 or len(array) != len(order):
                    raise ValueError("column does not cover the corpus")
                return freeze(array[alignment])

            raw_columns = {
                name: column(payload["raw_columns"][name]) for name in measures
            }
            normalized = {
                name: column(payload["normalized_columns"][name])
                for name in measures
            }
            overall = column(payload["overall"])
            dimension_scores = {
                QualityDimension(key): column(values)
                for key, values in payload["dimension_scores"].items()
            }
            attribute_scores = {
                QualityAttribute(key): column(values)
                for key, values in payload["attribute_scores"].items()
            }
            scheme_name = str(payload["scheme_name"])
            ranking_ids = list(payload["ranking"])
            post_totals = dict(payload["post_totals"])
            max_open_discussions = int(payload["max_open_discussions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptSnapshotError(
                f"invalid assessment state: {exc!r}"
            ) from exc
        if len(ranking_ids) != len(order):
            raise CorruptSnapshotError(
                "assessment ranking does not cover the recovered corpus"
            )
        # Tracker before the corpus read, like the build path: a mutation
        # landing mid-restore leaves the entry dirty, so the next read
        # patches instead of trusting the just-installed context.
        tracker = CorpusChangeTracker(corpus)
        # ROADMAP open item 3: trust the section-carried post totals
        # instead of rescanning content — every other fingerprint field is
        # an O(1) live read, so composing is O(1) per source where
        # ``corpus.content_fingerprint()`` walks every discussion.  A
        # source missing from the hints falls back to the full scan.
        fingerprint = tuple(
            compose_source_fingerprint(source, post_totals[source.source_id])
            if source.source_id in post_totals
            else source_fingerprint(source)
            for source in corpus
        )
        sources = tuple(corpus)
        subject_ids = tuple(order)
        columns = AssessmentColumns(
            subject_ids=subject_ids,
            measures=measures,
            raw=raw_columns,
            normalized=normalized,
            overall=overall,
            dimension_scores=dimension_scores,
            attribute_scores=attribute_scores,
            # Rebuilt rather than adopted from ``ranking_ids``: bit-identical
            # by construction, and immune to a corrupted ranking section.
            rank=SortedRankKeys.from_scores(overall, subject_ids),
        )
        raw_vectors = vectors_from_columns(subject_ids, measures, raw_columns)
        context = AssessmentContext(
            fingerprint=fingerprint,
            benchmark_fingerprint=None,
            sources=sources,
            benchmark_sources=None,
            snapshots=snapshots,
            raw_vectors=raw_vectors,
            columns=columns,
            scheme_name=scheme_name,
            source_fingerprints={entry[0]: entry for entry in fingerprint},
            max_open_discussions=max_open_discussions,
        )
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._contexts.put((fingerprint, None), context)
            # Seed the raw-measure cache too, so raw_measures() and
            # benchmark-fitted contexts stay crawl-free after recovery.
            self._measure_cache.put(fingerprint, (sources, snapshots, raw_vectors))
            self._prune_incremental()
            entry = _IncrementalEntry(
                corpus_ref=weakref.ref(corpus),
                tracker=tracker,
                benchmark_ref=None,
                benchmark_tracker=None,
                context=context,
                fit_token=-1,  # unknown normaliser: re-fit on the first patch
            )
            with self._rwlock.write_lock():
                self._incremental[(id(corpus), None)] = entry
        return context

    def assess_corpus(
        self,
        corpus: SourceCorpus,
        benchmark_corpus: Optional[SourceCorpus] = None,
        deep: bool = False,
    ) -> dict[str, SourceAssessment]:
        """Assess every source of ``corpus``.

        ``benchmark_corpus`` provides the population the normaliser is
        fitted on; it defaults to ``corpus`` itself.  ``deep=True`` forces
        a fingerprint scan instead of trusting the O(1) staleness flag (see
        :meth:`assessment_context`).

        The returned mapping is a fresh dict, but the
        :class:`SourceAssessment` objects are shared with the cached
        assessment context: treat them as read-only (mutating one would
        corrupt every later call for the same corpus).  Use
        :meth:`raw_measures` for a mutable copy of the underlying matrix.
        """
        context = self.assessment_context(corpus, benchmark_corpus, deep=deep)
        return dict(context.assessments)

    def assess(
        self, source: Source, corpus: SourceCorpus, deep: bool = False
    ) -> SourceAssessment:
        """Assess a single source in the context of ``corpus``.

        The returned :class:`SourceAssessment` is shared with the cached
        assessment context — treat it as read-only.
        """
        context = self.assessment_context(corpus, deep=deep)
        assessment = context.assessments.get(source.source_id)
        if assessment is None:
            raise AssessmentError(
                f"source {source.source_id!r} is not part of the provided corpus"
            )
        return assessment

    # -- ranking ------------------------------------------------------------------------

    def rank(
        self,
        corpus: SourceCorpus,
        benchmark_corpus: Optional[SourceCorpus] = None,
        deep: bool = False,
    ) -> list[SourceAssessment]:
        """Assess and rank the corpus by decreasing overall quality.

        Ties are broken deterministically by source identifier.  The sort is
        computed once per assessment context, patched incrementally under
        mutations, and reused by repeated calls.  The returned list is
        fresh but its :class:`SourceAssessment` elements are shared with
        the cache — treat them as read-only.
        """
        context = self.assessment_context(corpus, benchmark_corpus, deep=deep)
        return list(context.ranking)

    def ranking_ids(
        self,
        corpus: SourceCorpus,
        benchmark_corpus: Optional[SourceCorpus] = None,
        deep: bool = False,
    ) -> list[str]:
        """Source identifiers ordered by decreasing overall quality."""
        return [
            assessment.source_id
            for assessment in self.rank(corpus, benchmark_corpus, deep=deep)
        ]

    # -- sharded scatter-gather protocol (repro.sharding) ----------------------------

    def shard_raw_measures(
        self, corpus: SourceCorpus, *, corpus_max_open_discussions: int
    ) -> dict[str, dict[str, float]]:
        """Raw measure vectors of one shard against the *global* aggregates.

        Phase 2 of a sharded assessment: the worker crawls and measures
        only its own sources, but the "compared to largest forum" measures
        normalise against the corpus-wide open-discussion maximum, which
        the coordinator gathers in phase 1 and injects here.  Everything
        downstream of the raw vectors — normaliser fit, scoring, ranking —
        is *global* arithmetic over the merged matrix and runs on the
        coordinator (:meth:`rank_from_raw`).

        Results are cached under ``(content fingerprint, injected
        maximum)`` with the source objects anchored, exactly like
        :meth:`raw_measures`; the returned mapping is a copy.
        """
        if len(corpus) == 0:
            return {}
        key = (corpus.content_fingerprint(), corpus_max_open_discussions)
        entry = self._measure_cache.get_or_create(
            key,
            lambda: (
                tuple(corpus),
                *self._measure_corpus(corpus, corpus_max_open_discussions),
            ),
        )
        return {source_id: dict(vector) for source_id, vector in entry[2].items()}

    def rank_from_raw(
        self, raw_vectors: Mapping[str, Mapping[str, float]]
    ) -> list[tuple[str, QualityScore]]:
        """Normalise, score and rank a merged raw-measure matrix.

        Phase 3 of a sharded assessment, run on the coordinator over the
        gathered per-shard vectors (assembled in the coordinator corpus's
        insertion order).  The pipeline is operation-for-operation the
        single-process :meth:`_build_context` tail — column assembly,
        finiteness check, normaliser fit on the matrix itself, scoring,
        lexsorted rank keys — so the returned ranking is bit-identical to
        a single-process :meth:`rank` over the same corpus content.
        Returns ``(source_id, score)`` pairs in ranking order.
        """
        if not raw_vectors:
            raise AssessmentError("cannot assess an empty corpus")
        names, _ = self._registry.column_layout()
        subject_ids, _, raw_columns = columns_from_vectors(raw_vectors, names)
        return self.rank_from_columns(subject_ids, raw_columns)

    def rank_from_columns(
        self,
        subject_ids: "tuple[str, ...]",
        raw_columns: Mapping[str, np.ndarray],
    ) -> list[tuple[str, QualityScore]]:
        """Columnar twin of :meth:`rank_from_raw` over assembled columns.

        The binary wire path hands the gathered per-shard ``float64``
        columns (already in coordinator corpus order) directly to this
        method, skipping the per-source dict detour entirely; the
        arithmetic is identical to :meth:`rank_from_raw` — the two differ
        only in how the columns were materialised.
        """
        if not len(subject_ids):
            raise AssessmentError("cannot assess an empty corpus")
        names, _ = self._registry.column_layout()
        measures = tuple(name for name in names if name in raw_columns)
        ensure_finite_columns(raw_columns)
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._fit_normalizer_columns(raw_columns)
            normalized = self._normalizer.normalize_columns(raw_columns)
        overall, dimension_scores, attribute_scores = build_quality_score_columns(
            subject_ids, measures, normalized, self._registry, self._scheme
        )
        rank = SortedRankKeys.from_scores(overall, subject_ids)
        scores = scores_from_columns(
            subject_ids,
            measures,
            raw_columns,
            normalized,
            overall,
            dimension_scores,
            attribute_scores,
            self._scheme.name,
        )
        return [(source_id, scores[source_id]) for source_id in rank.order()]

    # -- worker-side pre-merge phases (repro.sharding, binary wire path) ------------

    #: Flat column-name prefixes of a candidate block (see
    #: :meth:`shard_rank_candidates` / :meth:`merge_rank_candidates`).
    _RAW_PREFIX = "raw:"
    _NORM_PREFIX = "norm:"
    _DIM_PREFIX = "dim:"
    _ATTR_PREFIX = "attr:"
    _OVERALL_KEY = "overall"

    def supports_shard_premerge(self) -> bool:
        """True when the normaliser's fit can be rebuilt from sorted columns.

        Order-invariant strategies (benchmark, min-max) depend only on
        each measure's sorted multiset, so per-shard pre-sorted columns
        merged in any order reproduce the global fit exactly; the fit
        then travels to the workers as
        :meth:`~repro.core.normalization.Normalizer.fit_state`.
        Order-dependent strategies (z-score) make the coordinator fall
        back to gathering the full raw matrix.
        """
        return self._normalizer.fit_is_order_invariant

    def shard_measure_columns(
        self, corpus: SourceCorpus, *, corpus_max_open_discussions: int
    ) -> "tuple[tuple[str, ...], tuple[str, ...], dict[str, np.ndarray]]":
        """Columnar twin of :meth:`shard_raw_measures` for the binary wire.

        Returns ``(source ids, measure names, {name: float64 column})`` in
        the shard corpus's insertion order, cached exactly like the
        vector form (same key shape, sources anchored).  The columns are
        what :func:`~repro.core.columnar.columns_from_vectors` would
        build from the vectors — the wire just ships them as raw bytes
        instead of JSON.
        """
        names, _ = self._registry.column_layout()
        if len(corpus) == 0:
            return (), tuple(names), {}
        key = ("columns", corpus.content_fingerprint(), corpus_max_open_discussions)

        def build() -> tuple:
            sources = tuple(corpus)
            _, vectors = self._measure_corpus(corpus, corpus_max_open_discussions)
            subject_ids, measures, columns = columns_from_vectors(vectors, names)
            return (sources, subject_ids, measures, columns)

        entry = self._measure_cache.get_or_create(key, build)
        return entry[1], entry[2], entry[3]

    def shard_sorted_fit_columns(
        self, corpus: SourceCorpus, *, corpus_max_open_discussions: int
    ) -> "tuple[int, dict[str, np.ndarray]]":
        """Per-measure *sorted* columns of this shard, for the pre-merge fit.

        Sorting moves values without changing them, and sorting the
        concatenation of per-shard sorted columns equals sorting the full
        column — all an order-invariant fit ever reads.  Returns the row
        count plus the sorted columns.
        """
        subject_ids, _, columns = self.shard_measure_columns(
            corpus, corpus_max_open_discussions=corpus_max_open_discussions
        )
        return len(subject_ids), {
            name: freeze(np.sort(column)) for name, column in columns.items()
        }

    def premerge_fit_state(
        self, sorted_columns: Mapping[str, np.ndarray]
    ) -> dict:
        """Fit the normaliser on merged sorted columns; return its fit state.

        Coordinator side of the pre-merge: the merged sorted columns hold
        exactly the multiset the full-matrix fit would see, and the fit is
        order-invariant (:meth:`supports_shard_premerge` guards callers),
        so the resulting state is bit-identical to fitting on the
        assembled corpus-order matrix.  The returned state is broadcast
        to the workers for :meth:`shard_rank_candidates`.
        """
        if not self.supports_shard_premerge():
            raise AssessmentError(
                "normalizer fit is order-dependent; sharded pre-merge unavailable"
            )
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._fit_normalizer_columns(sorted_columns)
            state = self._normalizer.fit_state()
        if state is None:
            raise AssessmentError(
                "normalizer declares an order-invariant fit but no transportable state"
            )
        return state

    def shard_rank_candidates(
        self,
        corpus: SourceCorpus,
        *,
        corpus_max_open_discussions: int,
        fit_state: Mapping[str, Any],
        limit: int,
    ) -> "tuple[tuple[str, ...], dict[str, np.ndarray]]":
        """Score this shard under the broadcast fit; return its top candidates.

        Worker side of the pre-merge: adopts the coordinator's fit state,
        normalises and scores only the shard's rows (both are elementwise
        per row, so every row equals the same row of a global pass bit
        for bit), ranks locally and returns the top ``limit`` rows as a
        flat candidate block — ``raw:*`` / ``norm:*`` measure columns,
        ``dim:*`` / ``attr:*`` score columns and ``overall``.  Any global
        top-``limit`` source is inside its own shard's top ``limit``, so
        the union of shard candidate blocks always covers the global
        answer.
        """
        subject_ids, measures, raw_columns = self.shard_measure_columns(
            corpus, corpus_max_open_discussions=corpus_max_open_discussions
        )
        if not subject_ids:
            return (), {}
        ensure_finite_columns(raw_columns)
        with ordered(self._refresh_mutex, "consumer.gate"):
            self._normalizer.load_fit_state(fit_state)
            self.counters.increment("premerge_fit_loads")
            normalized = self._normalizer.normalize_columns(raw_columns)
        overall, dimension_scores, attribute_scores = build_quality_score_columns(
            subject_ids, measures, normalized, self._registry, self._scheme
        )
        rank = SortedRankKeys.from_scores(overall, subject_ids)
        chosen = rank.order()[: max(0, int(limit))]
        index = {source_id: row for row, source_id in enumerate(subject_ids)}
        rows = np.asarray([index[source_id] for source_id in chosen], dtype=np.intp)
        block: "dict[str, np.ndarray]" = {}
        for name in measures:
            block[self._RAW_PREFIX + name] = freeze(raw_columns[name][rows])
            block[self._NORM_PREFIX + name] = freeze(normalized[name][rows])
        block[self._OVERALL_KEY] = freeze(overall[rows])
        for dimension, column in dimension_scores.items():
            block[self._DIM_PREFIX + dimension.value] = freeze(column[rows])
        for attribute, column in attribute_scores.items():
            block[self._ATTR_PREFIX + attribute.value] = freeze(column[rows])
        return tuple(chosen), block

    def merge_rank_candidates(
        self,
        candidate_ids: "tuple[str, ...]",
        candidate_columns: Mapping[str, np.ndarray],
        limit: int,
    ) -> list[tuple[str, QualityScore]]:
        """Rank pooled per-shard candidate blocks; return the global top.

        Coordinator side of the pre-merge: shards partition the corpus,
        so the pooled candidates are distinct rows scored under one
        shared fit; re-sorting them with the same lexsorted keys the
        single-process path uses makes the top ``limit`` prefix — order
        and every score — bit-identical to ``rank()[:limit]`` over the
        full corpus.
        """
        if not candidate_ids:
            raise AssessmentError("cannot assess an empty corpus")
        names, _ = self._registry.column_layout()
        measures = tuple(
            name for name in names if self._RAW_PREFIX + name in candidate_columns
        )
        overall = candidate_columns[self._OVERALL_KEY]
        rank = SortedRankKeys.from_scores(overall, candidate_ids)
        chosen = rank.order()[: max(0, int(limit))]
        index = {source_id: row for row, source_id in enumerate(candidate_ids)}
        rows = np.asarray([index[source_id] for source_id in chosen], dtype=np.intp)
        raw = {
            name: candidate_columns[self._RAW_PREFIX + name][rows] for name in measures
        }
        normalized = {
            name: candidate_columns[self._NORM_PREFIX + name][rows]
            for name in measures
        }
        dimension_scores = {
            QualityDimension(key[len(self._DIM_PREFIX) :]): column[rows]
            for key, column in candidate_columns.items()
            if key.startswith(self._DIM_PREFIX)
        }
        attribute_scores = {
            QualityAttribute(key[len(self._ATTR_PREFIX) :]): column[rows]
            for key, column in candidate_columns.items()
            if key.startswith(self._ATTR_PREFIX)
        }
        scores = scores_from_columns(
            tuple(chosen),
            measures,
            raw,
            normalized,
            overall[rows],
            dimension_scores,
            attribute_scores,
            self._scheme.name,
        )
        return [(source_id, scores[source_id]) for source_id in chosen]
