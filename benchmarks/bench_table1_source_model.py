"""Benchmark E1 — regenerate Table 1 (source quality measure matrix)."""

from __future__ import annotations

from repro.core.domain import DomainOfInterest
from repro.experiments.table1_source_model import run_table1


def test_table1_source_model(benchmark, table1_corpus):
    domain = DomainOfInterest(categories=("travel", "food", "culture"), name="table1")
    result = benchmark(run_table1, table1_corpus, domain)
    print("\n=== Table 1: source quality attributes and measures ===")
    print(result.to_markdown())
    assert len(result.rows) == 19
    assert len(result.applicable_cells()) == 16
