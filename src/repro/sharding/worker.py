"""Shard worker process: the existing serving stack over one corpus partition.

A worker is spawned by the :class:`~repro.sharding.coordinator.ShardCoordinator`
with one end of a socketpair (passed as an inherited file descriptor) and
runs a **single-threaded** request loop over the wire protocol
(:mod:`repro.sharding.wire`).  Single-threadedness is a correctness
feature, not a simplification: the coordinator serialises all traffic on
a connection, so per-connection FIFO ordering plus one dispatching
thread means a read request observes every mutation batch sent before it
— no locks, no barrier round-trip on the read path.

The worker owns an ordinary serving stack for its shard: a
:class:`~repro.sources.corpus.SourceCorpus`, an optional per-shard
:class:`~repro.persistence.store.CorpusStore` (stamped with the shard
identity), a lazily built :class:`~repro.search.engine.SearchEngine`
(an empty shard has nothing to index), a
:class:`~repro.core.source_quality.SourceQualityModel`, and optionally an
:class:`~repro.serving.EagerRefreshScheduler` pumped in the foreground
via ``flush()`` after every replicated batch (the background thread is
never started — the dispatch loop *is* the thread).

Replicated mutations arrive as journal-schema records (produced by the
coordinator's :class:`~repro.sources.diffing.WireBridgeSubscriber`) and
are applied with the very same
:func:`~repro.persistence.store.replay_journal` used by crash recovery:
version-ordered, idempotent, driving the ordinary corpus mutation API so
every consumer is invalidated through its normal incremental path.

Read requests implement the worker-side phases of the scatter-gather
protocols (``shard_term_stats`` / ``shard_score`` / ``shard_select`` on
the engine, ``largest_source_open_discussions`` / ``shard_raw_measures``
on the model); the coordinator merges them into results bit-identical to
a single-process build — see ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import argparse
import socket
import time
from pathlib import Path
from typing import Any, Optional

from repro.core.domain import DomainOfInterest
from repro.core.source_quality import SourceQualityModel
from repro.errors import PersistenceError, ShardingError, WireProtocolError
from repro.persistence.store import CorpusStore, _overlay_source, replay_journal
from repro.search.engine import SearchEngine, SearchEngineConfig
from repro.serving import EagerRefreshScheduler, register_worker_stack
from repro.sharding.columns import encode_columns
from repro.sharding.wire import WireConnection
from repro.sources.corpus import SourceCorpus
from repro.sources.models import Source

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """Single-threaded request server over one shard of the corpus."""

    def __init__(self, connection: WireConnection) -> None:
        self._connection = connection
        self._corpus: SourceCorpus = SourceCorpus()
        self._store: Optional[CorpusStore] = None
        self._engine: Optional[SearchEngine] = None
        self._model: Optional[SourceQualityModel] = None
        self._scheduler: Optional[EagerRefreshScheduler] = None
        self._engine_config = SearchEngineConfig()
        self._shard_index = 0
        self._shard_count = 1
        self._configured = False
        self._busy_seconds = 0.0
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------------------

    def serve(self) -> None:
        """Dispatch requests until shutdown or the coordinator goes away.

        A ``None`` from :meth:`WireConnection.recv` means the peer is
        gone (clean close or mid-frame death) — the worker exits quietly;
        its durable state is whatever the journal holds, which is exactly
        what restart-and-resync recovers from.  CPU spent inside handlers
        is accumulated (``time.process_time`` deltas) and reported by the
        ``busy_time`` request, which the capacity benchmark reads.
        """
        try:
            while not self._stopping:
                message = self._connection.recv()
                if message is None:
                    break
                reply, binary = self._dispatch(message)
                try:
                    self._connection.send(reply, binary=binary)
                except WireProtocolError:
                    break
        finally:
            self.close()

    def close(self) -> None:
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        if self._store is not None:
            self._store.close()
            self._store = None
        self._connection.close()

    def _dispatch(
        self, message: dict[str, Any]
    ) -> tuple[dict[str, Any], Optional[bytes]]:
        """Run one handler; returns ``(reply, binary blob or None)``.

        Handlers on the binary columnar path return ``(result, blob)``
        tuples; the blob rides the reply frame as a ``RPWB`` payload
        (see :mod:`repro.sharding.wire`) instead of JSON.
        """
        request_id = message.get("id")
        kind = message.get("kind")
        started = time.process_time()
        try:
            handler = self._HANDLERS.get(kind)
            if handler is None:
                raise ShardingError(f"unknown request kind {kind!r}")
            if kind != "configure" and not self._configured:
                raise ShardingError("worker received a request before configure")
            result = handler(self, message)
        except Exception as exc:  # noqa: BLE001 — every failure becomes a typed reply
            self._busy_seconds += time.process_time() - started
            return (
                {
                    "id": request_id,
                    "ok": False,
                    "error": {"type": type(exc).__name__, "message": str(exc)},
                },
                None,
            )
        binary: Optional[bytes] = None
        if isinstance(result, tuple):
            result, binary = result
        self._busy_seconds += time.process_time() - started
        return {"id": request_id, "ok": True, "result": result}, binary

    # -- setup -------------------------------------------------------------------------

    def _handle_configure(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._configured:
            raise ShardingError("worker is already configured")
        self._shard_index = int(message["shard_index"])
        self._shard_count = int(message["shard_count"])
        self._engine_config = SearchEngineConfig(**(message.get("engine_config") or {}))
        self._engine_config.validate()
        domain_payload = message.get("domain")
        domain = (
            DomainOfInterest.from_dict(domain_payload)
            if domain_payload is not None
            else None
        )
        store_dir = message.get("store_dir")
        recovered = False
        if store_dir is not None:
            self._store = CorpusStore(
                Path(store_dir),
                fsync=bool(message.get("fsync", True)),
                checkpoint_every=int(message.get("checkpoint_every", 256)),
                shard=(self._shard_index, self._shard_count),
            )
        if bool(message.get("recover", False)):
            if self._store is None:
                raise PersistenceError("recover requested but no store_dir given")
            stack = self._store.recover_stack(
                domain=domain, build_engine=True, attach=True
            )
            self._corpus = stack.corpus
            self._engine = stack.engine
            self._model = stack.source_model
            recovered = True
        if self._model is None and domain is not None:
            self._model = SourceQualityModel(domain)
        if not recovered and self._store is not None:
            self._store.attach(self._corpus, source_model=self._model)
        if bool(message.get("eager", False)):
            self._scheduler = EagerRefreshScheduler(self._corpus)
            register_worker_stack(
                self._scheduler,
                shard_index=self._shard_index,
                engine=self._engine,
                source_model=self._model,
                corpus=self._corpus,
                store=self._store,
            )
        self._configured = True
        return {
            "shard_index": self._shard_index,
            "version": self._corpus.version,
            "sources": len(self._corpus),
            "recovered": recovered,
        }

    def _ensure_engine(self) -> Optional[SearchEngine]:
        """The shard's engine, built on first use of a non-empty shard."""
        if self._engine is None and len(self._corpus) > 0:
            self._engine = SearchEngine(self._corpus, config=self._engine_config)
            if self._store is not None:
                self._store.bind_consumers(engine=self._engine)
            if self._scheduler is not None:
                self._scheduler.register_search_engine(
                    self._engine, name=f"shard{self._shard_index}.search-engine"
                )
        return self._engine

    def _flush_scheduler(self) -> None:
        # An emptied shard must not be eagerly refreshed: both the engine
        # and the model refuse an empty corpus (reads short-circuit to
        # empty replies instead).  Pending events stay queued and coalesce
        # into the next flush once the shard has sources again.
        if self._scheduler is not None and len(self._corpus) > 0:
            self._scheduler.flush()

    # -- replication -------------------------------------------------------------------

    def _handle_apply(self, message: dict[str, Any]) -> dict[str, Any]:
        records = message.get("records") or []
        applied, skipped = replay_journal(self._corpus, records)
        self._flush_scheduler()
        return {
            "applied": applied,
            "skipped": skipped,
            "version": self._corpus.version,
        }

    def _handle_sync(self, message: dict[str, Any]) -> dict[str, Any]:
        return {"version": self._corpus.version, "sources": len(self._corpus)}

    def _handle_resync(self, message: dict[str, Any]) -> dict[str, Any]:
        """Reconcile the shard against the coordinator's full owned-source set.

        Used both to seed a fresh worker and to repair a restarted one on
        top of whatever its per-shard recovery produced: strays are
        removed, divergent sources are overlaid in place and touched
        (fingerprint caches key on object identity, exactly as journal
        replay does), missing sources are added, and the corpus version
        is pinned to the coordinator's.  Pinning is monotonic: the
        worker's local version can bump at most once per divergent
        source, and every divergence implies at least one coordinator
        version step the worker missed.
        """
        sources: dict[str, Any] = message.get("sources") or {}
        target_version = int(message["version"])
        removed = 0
        overlaid = 0
        added = 0
        for source_id in list(self._corpus.source_ids()):
            if source_id not in sources:
                self._corpus.remove(source_id)
                removed += 1
        for source_id, payload in sources.items():
            if source_id in self._corpus:
                live = self._corpus.get(source_id)
                if live.to_dict() != payload:
                    _overlay_source(live, payload)
                    self._corpus.touch(source_id)
                    overlaid += 1
            else:
                self._corpus.add(Source.from_dict(dict(payload)))
                added += 1
        self._corpus._restore_version(target_version)
        self._flush_scheduler()
        return {
            "version": self._corpus.version,
            "sources": len(self._corpus),
            "removed": removed,
            "overlaid": overlaid,
            "added": added,
        }

    # -- search phases -----------------------------------------------------------------

    def _handle_search_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        terms = list(message.get("terms") or [])
        engine = self._ensure_engine()
        if engine is None:
            return {
                "document_frequencies": {term: 0 for term in terms},
                "n_documents": 0,
                "max_visitors": 0.0,
                "max_links": 0,
            }
        return engine.shard_term_stats(terms)

    def _handle_search_score(self, message: dict[str, Any]) -> dict[str, Any]:
        engine = self._ensure_engine()
        if engine is None:
            return {"max_raw": 0.0, "candidates": 0}
        return engine.shard_score(
            int(message["query_id"]),
            list(message["terms"]),
            n_documents=int(message["n_documents"]),
            document_frequencies=message["document_frequencies"],
            max_visitors=float(message["max_visitors"]),
            max_links=int(message["max_links"]),
        )

    def _handle_search_select(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._engine is None:
            return {"entries": []}
        entries = self._engine.shard_select(
            int(message["query_id"]),
            max_topical=float(message["max_topical"]),
            limit=int(message["limit"]),
        )
        return {"entries": entries}

    # -- assessment phases -------------------------------------------------------------

    def _handle_rank_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        if len(self._corpus) == 0:
            return {"max_open": 0}
        return {"max_open": self._corpus.largest_source_open_discussions()}

    def _handle_rank_measures(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._model is None:
            raise ShardingError("worker was configured without a domain")
        vectors = self._model.shard_raw_measures(
            self._corpus, corpus_max_open_discussions=int(message["max_open"])
        )
        return {"vectors": vectors}

    def _require_model(self) -> SourceQualityModel:
        if self._model is None:
            raise ShardingError("worker was configured without a domain")
        return self._model

    def _handle_rank_measure_cols(
        self, message: dict[str, Any]
    ) -> tuple[dict[str, Any], bytes]:
        """Binary twin of ``rank_measures``: the raw matrix as column bytes."""
        ids, names, columns = self._require_model().shard_measure_columns(
            self._corpus, corpus_max_open_discussions=int(message["max_open"])
        )
        blob = encode_columns(ids, {name: columns[name] for name in names} if ids else {})
        return {"count": len(ids)}, blob

    def _handle_rank_fit(
        self, message: dict[str, Any]
    ) -> tuple[dict[str, Any], bytes]:
        """Pre-merge phase 2a: this shard's sorted fit columns."""
        count, sorted_columns = self._require_model().shard_sorted_fit_columns(
            self._corpus, corpus_max_open_discussions=int(message["max_open"])
        )
        return {"count": count}, encode_columns((), sorted_columns)

    def _handle_rank_score(
        self, message: dict[str, Any]
    ) -> tuple[dict[str, Any], bytes]:
        """Pre-merge phase 2b: score under the broadcast fit, return top-k."""
        ids, block = self._require_model().shard_rank_candidates(
            self._corpus,
            corpus_max_open_discussions=int(message["max_open"]),
            fit_state=message["fit"],
            limit=int(message["limit"]),
        )
        return {"count": len(ids)}, encode_columns(ids, block)

    # -- operations --------------------------------------------------------------------

    def _handle_checkpoint(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._store is None:
            raise PersistenceError("worker has no store to checkpoint")
        self._ensure_engine()
        return {"version": self._store.checkpoint()}

    def _handle_version(self, message: dict[str, Any]) -> dict[str, Any]:
        return {"version": self._corpus.version, "sources": len(self._corpus)}

    def _handle_busy_time(self, message: dict[str, Any]) -> dict[str, Any]:
        return {"busy_seconds": self._busy_seconds}

    def _handle_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        self._stopping = True
        return {"stopped": True}

    _HANDLERS = {
        "configure": _handle_configure,
        "apply": _handle_apply,
        "sync": _handle_sync,
        "resync": _handle_resync,
        "search_stats": _handle_search_stats,
        "search_score": _handle_search_score,
        "search_select": _handle_search_select,
        "rank_stats": _handle_rank_stats,
        "rank_measures": _handle_rank_measures,
        "rank_measure_cols": _handle_rank_measure_cols,
        "rank_fit": _handle_rank_fit,
        "rank_score": _handle_rank_score,
        "checkpoint": _handle_checkpoint,
        "version": _handle_version,
        "busy_time": _handle_busy_time,
        "shutdown": _handle_shutdown,
    }


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point of ``python -m repro.sharding.worker``."""
    parser = argparse.ArgumentParser(description="repro shard worker process")
    parser.add_argument(
        "--fd",
        type=int,
        required=True,
        help="inherited socket file descriptor connected to the coordinator",
    )
    args = parser.parse_args(argv)
    sock = socket.socket(fileno=args.fd)
    # No timeout: the worker blocks on the coordinator indefinitely; the
    # coordinator dying closes its socket end, recv() returns None, and
    # the worker exits.
    connection = WireConnection(sock, timeout=None)
    ShardWorker(connection).serve()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
