"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
fully offline environments (no build isolation, no ``wheel`` package):
pip falls back to the legacy ``setup.py develop`` path in that case.
"""

from setuptools import setup

setup()
