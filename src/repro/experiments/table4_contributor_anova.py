"""Experiment E5 — Table 4: contributor class differences.

The paper compares five interaction measures across the three classes of
Twitter accounts (people, brand, news) with a one-way ANOVA followed by
Bonferroni post-hoc paired comparisons, reporting for every pair the sign of
the mean difference and its significance.

The reproduction runs the identical statistical pipeline on the synthetic
London Twitter dataset and renders the same three paired columns
(people - brand, people - news, news - brand) for the same five measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.datasets.london_twitter import (
    TABLE4_MEASURES,
    LondonTwitterDataset,
    LondonTwitterSpec,
    build_london_twitter,
)
from repro.experiments.reporting import format_markdown_table
from repro.stats.anova import bonferroni_pairwise, one_way_anova
from repro.stats.descriptive import describe

__all__ = ["Table4Spec", "Table4Cell", "Table4Result", "run_table4"]

#: The paired comparisons of Table 4, in the paper's column order.
TABLE4_PAIRS: tuple[tuple[str, str], ...] = (
    ("person", "brand"),
    ("person", "news"),
    ("news", "brand"),
)

#: Human-readable measure labels matching the paper's row captions.
MEASURE_LABELS: dict[str, str] = {
    "interactions": "Interactions",
    "mentions": "Absolute mentions (replies received)",
    "retweets": "Absolute retweets (feedbacks received)",
    "relative_mentions": "Relative mentions (replies per comment)",
    "relative_retweets": "Relative retweets (feedbacks per comment)",
}


@dataclass(frozen=True)
class Table4Spec:
    """Configuration of the contributor ANOVA experiment."""

    dataset: LondonTwitterSpec = LondonTwitterSpec()
    alpha: float = 0.05


@dataclass(frozen=True)
class Table4Cell:
    """One paired comparison of one measure (one cell of Table 4)."""

    measure: str
    first: str
    second: str
    difference: float
    p_value: float
    sign: str

    @property
    def label(self) -> str:
        """Paper-style cell rendering, e.g. ``"> 0 (sig = 0.002)"``."""
        return f"{self.sign} 0 (sig = {self.p_value:.3f})"


@dataclass
class Table4Result:
    """Result of the contributor-class comparison experiment."""

    account_count: int
    class_sizes: dict[str, int] = field(default_factory=dict)
    anova_p_values: dict[str, float] = field(default_factory=dict)
    cells: list[Table4Cell] = field(default_factory=list)
    volume_orders_of_magnitude: float = 0.0

    def cell(self, measure: str, first: str, second: str) -> Table4Cell:
        """Return one specific cell."""
        for entry in self.cells:
            if entry.measure == measure and entry.first == first and entry.second == second:
                return entry
        raise KeyError((measure, first, second))

    def sign_matrix(self) -> dict[str, dict[str, str]]:
        """Mapping measure -> "first-second" -> sign, convenient for tests."""
        matrix: dict[str, dict[str, str]] = {}
        for entry in self.cells:
            matrix.setdefault(entry.measure, {})[f"{entry.first}-{entry.second}"] = entry.sign
        return matrix

    def to_markdown(self) -> str:
        """Render the Table 4 reproduction as markdown."""
        headers = ("Measure",) + tuple(f"{first} - {second}" for first, second in TABLE4_PAIRS)
        rows = []
        for measure in TABLE4_MEASURES:
            row: list[str] = [MEASURE_LABELS.get(measure, measure)]
            for first, second in TABLE4_PAIRS:
                row.append(self.cell(measure, first, second).label)
            rows.append(tuple(row))
        return format_markdown_table(headers, rows)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "account_count": self.account_count,
            "class_sizes": dict(self.class_sizes),
            "anova_p_values": dict(self.anova_p_values),
            "volume_orders_of_magnitude": self.volume_orders_of_magnitude,
            "cells": [entry.__dict__ for entry in self.cells],
        }


def run_table4(
    spec: Optional[Table4Spec] = None,
    dataset: Optional[LondonTwitterDataset] = None,
) -> Table4Result:
    """Run the Table 4 ANOVA / Bonferroni experiment."""
    spec = spec or Table4Spec()
    dataset = dataset or build_london_twitter(spec.dataset)

    result = Table4Result(
        account_count=len(dataset),
        class_sizes=dataset.class_sizes(),
    )

    # Heterogeneity check reported in the paper: the span between the most
    # and least connected accounts is about four orders of magnitude.
    connection_volumes = [
        float(activity.mentions_received + activity.retweets_received)
        for activity in dataset.activities
    ]
    result.volume_orders_of_magnitude = describe(connection_volumes).range_orders_of_magnitude

    for measure in TABLE4_MEASURES:
        groups = dataset.measure_groups(measure)
        anova = one_way_anova(groups)
        result.anova_p_values[measure] = anova.p_value
        comparisons = bonferroni_pairwise(groups, alpha=spec.alpha, pairs=TABLE4_PAIRS)
        for comparison in comparisons:
            result.cells.append(
                Table4Cell(
                    measure=measure,
                    first=comparison.first,
                    second=comparison.second,
                    difference=comparison.difference,
                    p_value=comparison.p_value,
                    sign=comparison.sign,
                )
            )
    return result
