"""Descriptive statistics and correlation analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import InsufficientDataError, StatisticsError

__all__ = [
    "DescriptiveSummary",
    "describe",
    "pearson_correlation",
    "correlation_matrix",
    "standardize",
]


@dataclass(frozen=True)
class DescriptiveSummary:
    """Summary statistics of a univariate sample."""

    count: int
    mean: float
    variance: float
    std: float
    minimum: float
    maximum: float
    median: float

    @property
    def range_orders_of_magnitude(self) -> float:
        """Orders of magnitude spanned between the minimum and maximum.

        The paper uses this to characterise the heterogeneity of the
        Twitaholic dataset ("the difference between the most and the least
        connected users is about 4 orders of magnitude").  Only values
        <= 0 are clamped to 1 before taking the logarithm (the log is
        undefined there); positive sub-unit values are kept, so a sample
        spanning 0.001 to 10 reports 4 orders of magnitude, not 1.  The
        result is never negative: when clamping inverts the pair (minimum
        <= 0 while 0 < maximum < 1) the span collapses to 0.
        """
        low = self.minimum if self.minimum > 0 else 1.0
        high = self.maximum if self.maximum > 0 else 1.0
        if high <= low:
            return 0.0
        return math.log10(high / low)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "median": self.median,
        }


def describe(values: Sequence[float]) -> DescriptiveSummary:
    """Compute the descriptive summary of ``values``."""
    if not values:
        raise InsufficientDataError("cannot describe an empty sample")
    array = np.asarray(list(values), dtype=float)
    minimum = float(array.min())
    maximum = float(array.max())
    # Float summation can push the computed mean a few ULPs outside the
    # observed range (e.g. three identical large values); mathematically the
    # mean always lies within [min, max], so clamp it back.
    mean = min(max(float(array.mean()), minimum), maximum)
    return DescriptiveSummary(
        count=int(array.size),
        mean=mean,
        variance=float(array.var()),
        std=float(array.std()),
        minimum=minimum,
        maximum=maximum,
        median=float(np.median(array)),
    )


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two paired samples."""
    if len(xs) != len(ys):
        raise StatisticsError("paired samples must have the same length")
    if len(xs) < 2:
        raise InsufficientDataError("at least two observations are required")
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def correlation_matrix(
    columns: Mapping[str, Sequence[float]]
) -> dict[tuple[str, str], float]:
    """Pairwise Pearson correlations between named columns."""
    names = list(columns)
    lengths = {len(columns[name]) for name in names}
    if len(lengths) > 1:
        raise StatisticsError("all columns must have the same length")
    result: dict[tuple[str, str], float] = {}
    for i, first in enumerate(names):
        for second in names[i:]:
            value = (
                1.0
                if first == second
                else pearson_correlation(columns[first], columns[second])
            )
            result[(first, second)] = value
            result[(second, first)] = value
    return result


def standardize(values: Sequence[float]) -> list[float]:
    """Z-score standardisation; constant columns map to all zeros.

    A column is treated as constant when its standard deviation is zero
    *relative to its magnitude*: for large identical values the float mean
    leaves a rounding residue, and dividing that residue by the resulting
    tiny std would otherwise fabricate huge z-scores.  The threshold is
    purely relative (no absolute floor), so a column of genuinely varying
    tiny values still standardises correctly.
    """
    if not values:
        return []
    array = np.asarray(list(values), dtype=float)
    std = array.std()
    scale = float(np.abs(array).max())
    if std == 0 or std <= 1e-12 * scale:
        return [0.0] * len(values)
    return list((array - array.mean()) / std)
