"""A reentrant reader/writer lock for the concurrent serving core.

The PR 4 scheduler serialised *everything* — every consumer patch and
every guarded read — behind one ``RLock``, so a slow quality-model refit
blocked unrelated search reads.  The concurrent serving core instead
gives every consumer its own :class:`ReadWriteLock`:

* **reads** take the *shared* side: any number of reader threads hold it
  simultaneously, so reads under no pending patch never queue behind each
  other;
* **patches** take the *exclusive* side only for the O(1) snapshot swap —
  the patched state is built aside first, so readers are excluded for one
  pointer assignment, not for the patch.

Semantics:

* **Writer preference** — a waiting writer blocks *new* readers, so a
  steady read stream cannot starve the swap.  Threads that already hold
  the lock (in either mode) are exempt, which is what makes it reentrant.
* **Reentrancy** — a thread may re-acquire the read side while reading,
  re-acquire the write side while writing, and take the read side while
  holding the write side (a guarded read calling into a consumer whose
  read path takes its own shared lock).  The one forbidden shape is the
  classic upgrade deadlock — acquiring the write side while holding only
  the read side raises :class:`~repro.errors.ServingError` immediately
  instead of deadlocking, since two upgrading readers would each wait for
  the other to release.
* Both sides are exposed as context managers (:meth:`read_lock` /
  :meth:`write_lock`), the shape the scheduler re-exports so callers
  cannot accidentally hold the exclusive side for a read.

**Runtime lock-order validation.**  This module also hosts the debug-mode
complement to the static ``lock-discipline`` checker
(:mod:`repro.analysis.locks`): a per-thread stack of held lock classes
checked against the declared rank order (:data:`RUNTIME_LOCK_RANKS`) at
every instrumented acquisition.  It is off by default (every note is a
single flag test); ``make stress`` turns it on via the
``REPRO_LOCK_ORDER_CHECK=1`` environment variable, and tests via
:func:`enable_lock_order_validation`.  A violating acquisition raises
:class:`~repro.errors.ServingError` *before* blocking on the lock, so an
ordering bug surfaces as a loud test failure instead of a hung stress
run.  The check compares against the top of the stack only: the
scheduler's composite locks push their gate frames with ``check=False``
(their sorted-consumer-name protocol is deadlock-free but not
rank-monotonic across consumers), and everything acquired on top of such
a frame is still checked against it.  Re-acquiring an object already on
the stack is reentrant and always exempt.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.errors import ServingError

__all__ = [
    "ReadWriteLock",
    "RUNTIME_LOCK_RANKS",
    "enable_lock_order_validation",
    "lock_order_validation_enabled",
    "note_acquired",
    "note_released",
    "ordered",
]

#: The declared acquisition order (mirrors
#: ``repro.analysis.locks.LOCK_RANKS``; a test asserts they agree).
#: Acquire in non-decreasing rank only.
RUNTIME_LOCK_RANKS: dict[str, int] = {
    "checkpoint.gate": 1,
    "checkpoint.drain": 2,
    "store.lock": 3,
    "journal.append": 4,
    "scheduler.intake": 5,
    "shard.io": 6,
    "shard.conn": 7,
    "consumer.gate": 10,
    "consumer.drain": 20,
    "rwlock.write": 30,
    "rwlock.read": 31,
    "corpus.mutation": 40,
    "bus.intake": 50,
}

#: Flipped by ``REPRO_LOCK_ORDER_CHECK=1`` (read once at import) or
#: :func:`enable_lock_order_validation`.  Toggle only while the calling
#: thread holds no instrumented locks — frames noted while enabled are
#: not popped while disabled.
_validation_enabled = os.environ.get("REPRO_LOCK_ORDER_CHECK", "") not in ("", "0")

_held_frames = threading.local()


def enable_lock_order_validation(enabled: bool = True) -> None:
    """Turn the runtime lock-order validator on (or off) process-wide."""
    global _validation_enabled
    _validation_enabled = enabled


def lock_order_validation_enabled() -> bool:
    """True when instrumented acquisitions are being checked."""
    return _validation_enabled


def _frames() -> list[tuple[int, str, int]]:
    frames = getattr(_held_frames, "stack", None)
    if frames is None:
        frames = []
        _held_frames.stack = frames
    return frames


def note_acquired(lock_class: str, lock: Any, check: bool = True) -> None:
    """Record (and, unless ``check=False``, validate) an acquisition.

    Call *before* the blocking acquire so a violation raises instead of
    deadlocking.  ``lock`` identifies the instance: re-acquiring an
    object already on this thread's stack is reentrant and exempt.
    """
    if not _validation_enabled:
        return
    frames = _frames()
    key = id(lock)
    rank = RUNTIME_LOCK_RANKS.get(lock_class, 0)
    if check and frames and not any(frame[2] == key for frame in frames):
        top_rank, top_class, _ = frames[-1]
        if rank < top_rank:
            raise ServingError(
                f"lock-order violation: acquiring {lock_class} (rank {rank}) "
                f"while holding {top_class} (rank {top_rank}) — the declared "
                "order requires non-decreasing ranks; see docs/INVARIANTS.md"
            )
    frames.append((rank, lock_class, key))


def note_released(lock: Any) -> None:
    """Pop the most recent frame recorded for ``lock`` (no-op if absent)."""
    if not _validation_enabled:
        return
    frames = _frames()
    key = id(lock)
    for index in range(len(frames) - 1, -1, -1):
        if frames[index][2] == key:
            del frames[index]
            return


@contextmanager
def ordered(lock: Any, lock_class: str) -> Iterator[None]:
    """Hold ``lock`` for the block, validated against the declared order.

    The drop-in instrumented form of ``with lock:`` for plain
    ``threading`` locks; :class:`ReadWriteLock` instruments its own
    acquire/release paths natively.
    """
    note_acquired(lock_class, lock)
    try:
        with lock:
            yield
    finally:
        note_released(lock)


class ReadWriteLock:
    """Writer-preferring, reentrant reader/writer lock (see module docstring)."""

    def __init__(self) -> None:
        self._condition = threading.Condition(threading.Lock())
        #: Per-thread read-entry depth (reentrant reads).
        self._readers: dict[int, int] = {}
        #: Thread id currently holding the write side, if any.
        self._writer: Optional[int] = None
        self._writer_depth = 0
        #: Writers blocked waiting for readers/writer to drain; new
        #: readers queue behind them (writer preference).
        self._waiting_writers = 0

    # -- introspection ------------------------------------------------------------

    @property
    def read_held(self) -> bool:
        """True when the calling thread holds the read side."""
        return threading.get_ident() in self._readers

    @property
    def write_held(self) -> bool:
        """True when the calling thread holds the write side."""
        return self._writer == threading.get_ident()

    # -- acquisition --------------------------------------------------------------

    def acquire_read(self) -> None:
        """Acquire the shared side (blocks while a writer holds or waits)."""
        note_acquired("rwlock.read", self)
        me = threading.get_ident()
        with self._condition:
            if self._writer == me or me in self._readers:
                # Reentrant: a thread already inside (either side) may
                # read; making it wait on itself would deadlock.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._condition.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Release one read entry of the calling thread."""
        me = threading.get_ident()
        with self._condition:
            depth = self._readers.get(me)
            if depth is None:
                raise ServingError("release_read without a matching acquire_read")
            if depth > 1:
                self._readers[me] = depth - 1
                note_released(self)
                return
            del self._readers[me]
            self._condition.notify_all()
        note_released(self)

    def acquire_write(self) -> None:
        """Acquire the exclusive side (blocks until readers/writer drain).

        Raises :class:`~repro.errors.ServingError` when the calling thread
        holds only the read side: a read-to-write upgrade deadlocks the
        moment two readers attempt it, so it is rejected outright.
        """
        # The frame is pushed before blocking; the native upgrade check
        # below still raises (same-object frames are exempt from the
        # rank check), in which case the frame is popped again.
        note_acquired("rwlock.write", self)
        me = threading.get_ident()
        try:
            with self._condition:
                if self._writer == me:
                    self._writer_depth += 1
                    return
                if me in self._readers:
                    raise ServingError(
                        "cannot upgrade a read lock to a write lock; "
                        "acquire the write side first"
                    )
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._readers:
                        self._condition.wait()
                    self._writer = me
                    self._writer_depth = 1
                finally:
                    self._waiting_writers -= 1
        except BaseException:
            note_released(self)
            raise

    def release_write(self) -> None:
        """Release one write entry of the calling thread."""
        me = threading.get_ident()
        with self._condition:
            if self._writer != me:
                raise ServingError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._condition.notify_all()
        note_released(self)

    # -- context managers -----------------------------------------------------------

    @contextmanager
    def read_lock(self) -> Iterator["ReadWriteLock"]:
        """Hold the shared side for the ``with`` block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self) -> Iterator["ReadWriteLock"]:
        """Hold the exclusive side for the ``with`` block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
