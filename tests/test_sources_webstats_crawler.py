"""Tests for the web-statistics panel simulators and the crawler."""

from __future__ import annotations

import pytest

from repro.errors import UnknownUserError
from repro.sources.crawler import Crawler
from repro.sources.generators import SourceGenerator, SourceSpec
from repro.sources.webstats import AlexaLikeService, FeedburnerLikeService


def make_source(source_id, popularity, engagement, stickiness=0.5, seed=3):
    return SourceGenerator(
        SourceSpec(
            source_id=source_id,
            latent_popularity=popularity,
            latent_engagement=engagement,
            latent_stickiness=stickiness,
            discussion_budget=6,
            user_budget=8,
        ),
        seed=seed,
    ).generate()


class TestAlexaLikeService:
    def test_observation_is_cached_and_deterministic(self, single_source):
        panel = AlexaLikeService(seed=1)
        first = panel.observe(single_source)
        second = panel.observe(single_source)
        assert first is second
        fresh = AlexaLikeService(seed=1).observe(single_source)
        assert fresh == first

    def test_different_seed_changes_noise(self, single_source):
        a = AlexaLikeService(seed=1).observe(single_source)
        b = AlexaLikeService(seed=2).observe(single_source)
        assert a != b

    def test_popularity_drives_traffic(self):
        popular = make_source("popular", popularity=0.95, engagement=0.5)
        niche = make_source("niche", popularity=0.05, engagement=0.5)
        panel = AlexaLikeService(seed=0)
        assert panel.observe(popular).daily_visitors > panel.observe(niche).daily_visitors
        assert panel.observe(popular).traffic_rank < panel.observe(niche).traffic_rank
        assert panel.observe(popular).inbound_links > panel.observe(niche).inbound_links

    def test_stickiness_drives_dwell_and_bounce(self):
        sticky = make_source("sticky", popularity=0.5, engagement=0.5, stickiness=0.95)
        flaky = make_source("flaky", popularity=0.5, engagement=0.5, stickiness=0.05)
        panel = AlexaLikeService(seed=0)
        assert (
            panel.observe(sticky).average_time_on_site
            > panel.observe(flaky).average_time_on_site
        )
        assert panel.observe(sticky).bounce_rate < panel.observe(flaky).bounce_rate

    def test_page_views_per_visitor_property(self, single_source):
        observation = AlexaLikeService(seed=0).observe(single_source)
        assert observation.page_views_per_visitor == pytest.approx(
            observation.daily_page_views / observation.daily_visitors
        )

    def test_invalidate_refreshes_cache(self, single_source):
        panel = AlexaLikeService(seed=0)
        first = panel.observe(single_source)
        panel.invalidate(single_source.source_id)
        second = panel.observe(single_source)
        assert first == second  # deterministic, but recomputed
        panel.invalidate()
        assert panel.observe(single_source) == first

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            AlexaLikeService(noise=-0.1)


class TestFeedburnerLikeService:
    def test_subscriptions_reflect_loyalty(self):
        loyal = make_source("loyal", popularity=0.7, engagement=0.9)
        shallow = make_source("shallow", popularity=0.7, engagement=0.05)
        panel = FeedburnerLikeService(seed=0)
        assert panel.subscriptions(loyal) > panel.subscriptions(shallow)

    def test_observe_many_returns_every_source(self, small_corpus):
        panel = FeedburnerLikeService(seed=0)
        observations = panel.observe_many(small_corpus)
        assert set(observations) == set(small_corpus.source_ids())


class TestCrawlerSourceSnapshot:
    def test_snapshot_counts_match_source(self, single_source):
        snapshot = Crawler().crawl_source(single_source)
        assert snapshot.total_discussions == len(single_source.discussions)
        assert snapshot.open_discussions == len(single_source.open_discussions())
        assert snapshot.total_posts == single_source.post_count()
        assert snapshot.total_comments == single_source.comment_count()
        assert snapshot.contributor_count == len(single_source.contributors())

    def test_per_category_totals_sum_to_totals(self, single_source):
        snapshot = Crawler().crawl_source(single_source)
        assert sum(snapshot.discussions_per_category.values()) == snapshot.total_discussions
        assert sum(snapshot.comments_per_category.values()) == snapshot.total_comments
        assert sum(snapshot.open_discussions_per_category.values()) == snapshot.open_discussions

    def test_category_helpers(self, single_source):
        snapshot = Crawler().crawl_source(single_source)
        everything = snapshot.discussions_in_categories(snapshot.covered_categories)
        assert everything == snapshot.total_discussions
        assert snapshot.discussions_in_categories(["missing-category"]) == 0
        assert snapshot.covered(["missing-category"]) == set()

    def test_rates_are_non_negative(self, single_source):
        snapshot = Crawler().crawl_source(single_source)
        assert snapshot.new_discussions_per_day >= 0
        assert snapshot.average_comments_per_discussion >= 0
        assert snapshot.average_comments_per_discussion_per_day >= 0
        assert snapshot.comments_per_user >= 0
        assert snapshot.average_thread_age >= 0

    def test_crawl_corpus_covers_every_source(self, small_corpus):
        snapshots = Crawler().crawl_corpus(small_corpus)
        assert set(snapshots) == set(small_corpus.source_ids())

    def test_snapshot_serialisation(self, single_source):
        payload = Crawler().crawl_source(single_source).to_dict()
        assert payload["source_id"] == single_source.source_id
        assert payload["total_posts"] == single_source.post_count()


class TestCrawlerContributorSnapshot:
    def test_contributor_totals(self, single_source):
        crawler = Crawler()
        user_id = sorted(single_source.contributors())[0]
        snapshot = crawler.crawl_contributor(single_source, user_id)
        assert snapshot.total_posts == len(single_source.posts_by_user(user_id))
        assert snapshot.interactions_received == len(
            single_source.interactions_for_user(user_id)
        )
        assert snapshot.discussions_participated >= 1
        assert snapshot.account_age >= 0

    def test_unknown_contributor_rejected(self, single_source):
        with pytest.raises(UnknownUserError):
            Crawler().crawl_contributor(single_source, "ghost-user")

    def test_crawl_contributors_defaults_to_all(self, single_source):
        snapshots = Crawler().crawl_contributors(single_source)
        assert set(snapshots) == single_source.contributors()

    def test_rate_measures_are_consistent(self, single_source):
        crawler = Crawler()
        user_id = sorted(single_source.contributors())[0]
        snapshot = crawler.crawl_contributor(single_source, user_id)
        if snapshot.total_posts:
            assert snapshot.replies_per_comment == pytest.approx(
                snapshot.replies_received / snapshot.total_posts
            )
            assert snapshot.feedback_per_comment == pytest.approx(
                snapshot.feedback_received / snapshot.total_posts
            )
        assert snapshot.interactions_per_day >= 0
