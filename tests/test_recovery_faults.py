"""Crash-recovery fault injection: kill writes at every byte-boundary class.

Each scenario drives a real store (journaling, checkpointing) with the
fault harness (:mod:`repro.persistence.faults`) installed, "kills the
process" (``InjectedCrash``) at a chosen boundary — mid-record, mid-header,
at an fsync, after the data but before the atomic rename — and then runs
recovery against whatever the crash left on disk.  The single durability
invariant asserted everywhere:

    recovery restores a corpus whose version is **at least the last
    acknowledged mutation**, and whose content is **exactly** the state
    the live corpus had at that version.

Keeping *more* than acknowledged (a killed fsync whose data still hit the
disk) is allowed; losing an acknowledged mutation, or recovering a state
that never existed, is a failure.  The seeded randomized sweep
(``-m stress``, also ``make recovery-stress``) walks crash points across
whole mutate/checkpoint schedules.
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.errors import CorruptSnapshotError
from repro.persistence import CorpusStore, FaultPlan, InjectedCrash, inject_faults
from repro.persistence.journal import read_journal
from repro.sources.corpus import SourceCorpus

from test_persistence import make_corpus, mutate


class CrashScenario:
    """A live store plus the acknowledged-state ledger recovery is judged by."""

    def __init__(self, directory, *, count: int = 5, seed: int = 29) -> None:
        self.directory = directory
        self.corpus = make_corpus(count=count, seed=seed, budget=3)
        self.store = CorpusStore(directory, fsync=True)
        self.store.attach(self.corpus)
        self.store.checkpoint()
        self.states: dict[int, dict] = {}
        self.last_acked = self.corpus.version
        self.events = 0
        self.record()

    def record(self) -> None:
        self.states[self.corpus.version] = copy.deepcopy(self.corpus.to_dict())

    def mutate(self) -> None:
        mutate(self.corpus, self.events)
        self.events += 1
        self.last_acked = self.corpus.version
        self.record()

    def checkpoint(self) -> None:
        self.store.checkpoint()

    def crash(self, plan: FaultPlan, action) -> None:
        """Run ``action`` repeatedly under ``plan`` until the kill fires."""
        with inject_faults(plan):
            try:
                for _ in range(20):
                    action()
            except InjectedCrash:
                # In-memory state may include the half-durable mutation;
                # recovery is allowed to land on it.
                self.record()
                return
        raise AssertionError("fault plan never fired")

    def assert_recovered(self) -> SourceCorpus:
        """Recover from disk (fresh store, real I/O) and check the invariant."""
        with CorpusStore(self.directory, fsync=False) as store:
            result = store.recover()
            result.replay()
        recovered = result.corpus
        assert recovered.version >= self.last_acked, result.notes
        assert recovered.version in self.states, result.notes
        assert recovered.to_dict() == self.states[recovered.version]
        return recovered


#: (id, FaultPlan kwargs, which operation the kill interrupts).
CRASH_MATRIX = [
    ("journal-append-zero-bytes", dict(kill_after_bytes=0, match="journal"), "mutate"),
    ("journal-append-mid-header", dict(kill_after_bytes=3, match="journal"), "mutate"),
    ("journal-append-mid-payload", dict(kill_after_bytes=24, match="journal"), "mutate"),
    ("journal-later-append", dict(kill_after_bytes=9, operation_index=2, match="journal"), "mutate"),
    ("journal-append-at-fsync", dict(kill_on_fsync=True, match="journal"), "mutate"),
    ("snapshot-rotation-mid-write", dict(kill_after_bytes=64, match="snapshot"), "checkpoint"),
    ("snapshot-new-mid-write", dict(kill_after_bytes=64, operation_index=1, match="snapshot"), "checkpoint"),
    ("snapshot-data-before-rename", dict(kill_on_replace=True, match="snapshot.rpss"), "checkpoint"),
    ("snapshot-rotation-before-rename", dict(kill_on_replace=True, match="snapshot.prev"), "checkpoint"),
    ("snapshot-at-fsync", dict(kill_on_fsync=True, match="snapshot"), "checkpoint"),
]


@pytest.mark.parametrize(
    "plan_kwargs,phase",
    [entry[1:] for entry in CRASH_MATRIX],
    ids=[entry[0] for entry in CRASH_MATRIX],
)
def test_crash_matrix(tmp_path, plan_kwargs, phase):
    scenario = CrashScenario(tmp_path)
    scenario.mutate()
    scenario.mutate()
    if phase == "mutate":
        scenario.crash(FaultPlan(**plan_kwargs), scenario.mutate)
    else:
        scenario.crash(FaultPlan(**plan_kwargs), scenario.checkpoint)
    scenario.assert_recovered()


def test_store_stays_usable_after_crash_recovery(tmp_path):
    """After a torn-tail crash, re-attach, mutate, checkpoint, recover again."""
    scenario = CrashScenario(tmp_path)
    scenario.mutate()
    scenario.crash(FaultPlan(kill_after_bytes=5, match="journal"), scenario.mutate)
    recovered = scenario.assert_recovered()

    store = CorpusStore(tmp_path, fsync=True)
    store.attach(recovered)
    mutate(recovered, 17)
    store.checkpoint()
    store.close()
    with CorpusStore(tmp_path, fsync=False) as fresh:
        result = fresh.recover()
        result.replay()
    assert result.corpus.to_dict() == recovered.to_dict()


def test_crash_during_recovery_truncation_is_idempotent(tmp_path):
    """Recovery itself may die mid-truncation; a rerun completes cleanly."""
    scenario = CrashScenario(tmp_path)
    scenario.mutate()
    scenario.crash(FaultPlan(kill_after_bytes=9, match="journal"), scenario.mutate)
    assert read_journal(scenario.store.journal_path).torn

    plan = FaultPlan(kill_on_fsync=True, match="journal")
    with inject_faults(plan):
        with pytest.raises(InjectedCrash):
            with CorpusStore(tmp_path, fsync=True) as store:
                store.recover()
    assert plan.fired
    scenario.assert_recovered()


def test_checkpoint_crash_preserves_previous_snapshot(tmp_path):
    """A snapshot killed mid-write must leave the previous one loadable."""
    scenario = CrashScenario(tmp_path)
    scenario.mutate()
    scenario.crash(
        FaultPlan(kill_after_bytes=128, operation_index=1, match="snapshot"),
        scenario.checkpoint,
    )
    # The torn bytes are confined to the .tmp file; the snapshot itself
    # still carries the pre-crash checkpoint.
    recovered = scenario.assert_recovered()
    assert recovered.version == scenario.last_acked


@pytest.mark.stress
def test_randomized_crash_sweep(tmp_path):
    """Seeded sweep: random kill points across random mutate/checkpoint runs.

    Each iteration builds a fresh store, runs a random schedule of
    mutations and checkpoints with one random fault armed, and — whether
    or not the fault fired — asserts the recovery invariant afterwards.
    """
    rng = random.Random(20260807)
    for iteration in range(25):
        directory = tmp_path / f"run-{iteration}"
        scenario = CrashScenario(directory, count=4, seed=rng.randrange(1000))

        kind = rng.choice(("write", "fsync", "replace"))
        plan = FaultPlan(
            kill_after_bytes=rng.randrange(0, 200) if kind == "write" else None,
            kill_on_fsync=kind == "fsync",
            kill_on_replace=kind == "replace",
            operation_index=rng.randrange(0, 6),
            match=rng.choice(("journal", "snapshot", "")),
        )
        schedule = [
            "checkpoint" if rng.random() < 0.25 else "mutate"
            for _ in range(rng.randrange(3, 10))
        ]
        try:
            with inject_faults(plan):
                for step in schedule:
                    if step == "mutate":
                        scenario.mutate()
                    else:
                        scenario.checkpoint()
        except InjectedCrash:
            scenario.record()
        except CorruptSnapshotError:
            # A journal reset killed mid-header leaves the *writer* unable
            # to reopen the file on the next append; the on-disk state is
            # still recoverable, which is what the invariant checks below.
            scenario.record()
        scenario.assert_recovered()
