"""Eager refresh scheduling for latency-critical serving (ROADMAP (d)).

Every consumer of a :class:`~repro.sources.corpus.SourceCorpus` — the
search engine, the quality models — already refreshes *lazily*: each read
checks an O(1) dirty flag and, when a mutation happened since the last
read, patches its derived state incrementally before answering.  That
keeps reads correct under any mutation stream, but it puts the patch cost
on the *read path*: the first read after a burst of mutations absorbs the
whole patch, which is exactly where an interactive mashup can least
afford latency.

:class:`EagerRefreshScheduler` moves that cost off the read path.  It
registers one typed subscription per consumer on the corpus's shared
:class:`~repro.sources.diffing.InvalidationBus` and drives the
consumers' *ordinary* refresh entry points ahead of the next read, so a
hot read finds a clean dirty flag and serves in O(1).  Three modes trade
patch count against write latency:

``sync``
    Refresh inline, inside the mutation's notification: every event pays
    one patch per consumer, reads are always clean.  Simplest, and the
    right mode when mutations are rare.
``deferred``
    Mark work pending and apply it at the next :meth:`~EagerRefreshScheduler.flush`
    / :meth:`~EagerRefreshScheduler.poll` (or as soon as the background
    worker wakes).  Mutations return immediately; a burst of events that
    arrives before the patch runs collapses into one patch.
``coalescing``
    Like ``deferred``, plus a *debounce window*: the patch is held until
    the stream has been quiet for ``debounce_window`` seconds (bounded by
    ``max_delay``, so a steady stream cannot starve serving forever).  A
    burst of N mutations costs one patch per consumer, the mode to pair
    with write-heavy workloads.

**Correctness never depends on the scheduler.**  Eager refresh invokes the
same incremental-maintenance paths the consumers run lazily (which are
bit-identical to from-scratch rebuilds — see ``docs/PERFORMANCE.md``), and
every consumer read path keeps its own dirty-flag check: if a read
arrives before the scheduler got around to patching, the consumer simply
patches itself lazily, exactly as without a scheduler.  The scheduler is
therefore purely a latency optimisation, and eager results are
bit-identical to lazy ones by construction (pinned by
``tests/test_serving.py`` and re-asserted per event by
``benchmarks/bench_eager_refresh.py``).

The consumer registration contract is documented in
``docs/ARCHITECTURE.md``: anything callable can be registered via
:meth:`~EagerRefreshScheduler.register`; convenience wrappers cover the
built-in consumers.  Registrations may carry a *source filter* so that
per-source consumers (a contributor model watching one community) are
only refreshed by events touching their source — the filter lives in the
consumer's bus subscription, so non-matching events never even reach its
queue.

Threading (the concurrent serving core): every registered consumer owns
a :class:`~repro.serving.queues.ConsumerQueue` — its own coalescing bus
subscription, its own drain serialisation and its own
:class:`~repro.serving.rwlock.ReadWriteLock` — so a patch to one
consumer never blocks reads, or patches, of another.  The built-in
consumers are themselves thread-safe (their refreshes build the patched
state *aside* and swap it in under their write lock in O(1)), so plain
reads need no scheduler lock at all; reads under no pending patch take
only the consumer's shared lock.  For callers that want to freeze every
registered consumer at once (multi-consumer consistency, end-of-run
assertions), :meth:`~EagerRefreshScheduler.read_lock` and
:meth:`~EagerRefreshScheduler.write_lock` return composite context
managers over all queues; the legacy ``scheduler.lock`` property remains
as a deprecated alias for the write side.
:meth:`~EagerRefreshScheduler.start` launches a daemon worker that
applies deferred/coalescing patches in the background; notifications
from mutating threads only record the event into the bus and poke the
worker — they never wait for a running patch.

Error policy: a consumer refresh that raises is always recorded in the
consumer's :class:`~repro.serving.queues.ConsumerStats` (and the
``refresh_errors`` counter), and the staleness it consumed is restored to
its queue's subscription so the consumer falls back to lazy refresh.
Explicit foreground calls — :meth:`~EagerRefreshScheduler.flush`,
:meth:`~EagerRefreshScheduler.poll`,
:meth:`~EagerRefreshScheduler.refresh_all`,
:meth:`~EagerRefreshScheduler.drain` — additionally re-raise the first
failure as a :class:`~repro.errors.ServingError`.  Sync-mode patches
(which run inside the *mutation's* notification) and the background
worker do not raise: a failed eager refresh must not make an
already-applied corpus mutation appear to fail, nor starve other
listeners of the event.
"""

from __future__ import annotations

import threading
import time
import warnings
from enum import Enum
from typing import Any, Callable, Iterable, Optional

from repro.errors import PersistenceError, ServingError
from repro.perf.counters import PerfCounters
from repro.serving.queues import ConsumerQueue, ConsumerStats
from repro.serving.rwlock import ReadWriteLock, note_acquired, note_released
from repro.sources.corpus import CorpusChange, SourceCorpus
from repro.sources.diffing import PendingInvalidation

__all__ = [
    "RefreshMode",
    "ConsumerStats",
    "EagerRefreshScheduler",
    "register_worker_stack",
]


class RefreshMode(str, Enum):
    """When the scheduler patches its consumers relative to mutations."""

    #: Patch inline, inside each mutation's change notification.
    SYNC = "sync"
    #: Patch at the next flush/poll or background wake-up, without a window.
    DEFERRED = "deferred"
    #: Patch once the stream has been quiet for the debounce window.
    COALESCING = "coalescing"


class _CompositeLock:
    """Acquire one side of every registered queue's rwlock, in sorted order.

    The write side additionally acquires each consumer's refresh gate, so
    "no patch while held" covers lazy read-path patches too, not just the
    scheduler's drains.  All multi-consumer acquirers use the same sorted
    name order (and the same per-consumer gate-then-write order the
    consumers' own refresh paths use), which is what keeps the composite
    deadlock-free against individual patchers.
    """

    def __init__(self, scheduler: "EagerRefreshScheduler", write: bool) -> None:
        self._scheduler = scheduler
        self._write = write
        self._acquired: list[tuple[str, Any]] = []

    def __enter__(self) -> "_CompositeLock":
        queues = self._scheduler._queues_snapshot()
        try:
            for queue in sorted(queues, key=lambda q: q.name):
                if self._write:
                    # check=False: the sorted-name walk is deadlock-free
                    # by protocol but not rank-monotonic across consumers
                    # (gate after the previous consumer's write side), so
                    # the frame is recorded without a rank check; locks
                    # taken on top of it are still checked against it.
                    note_acquired(queue.gate_lock_class, queue.refresh_gate, check=False)
                    queue.refresh_gate.acquire()
                    self._acquired.append(("gate", queue.refresh_gate))
                    queue.rwlock.acquire_write()
                    self._acquired.append(("write", queue.rwlock))
                else:
                    queue.rwlock.acquire_read()
                    self._acquired.append(("read", queue.rwlock))
        except BaseException:
            # A mid-walk failure (e.g. a rejected read→write upgrade on
            # one consumer's rwlock) must not leak the locks already
            # taken: __exit__ never runs when __enter__ raises.
            self._release_acquired()
            raise
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._release_acquired()

    def _release_acquired(self) -> None:
        while self._acquired:
            kind, lock = self._acquired.pop()
            if kind == "gate":
                lock.release()
                note_released(lock)
            elif kind == "write":
                lock.release_write()
            else:
                lock.release_read()


class EagerRefreshScheduler:
    """Subscribe to corpus changes and patch registered consumers eagerly.

    See the module docstring for the mode semantics.  The scheduler holds
    strong references to its consumers and registers subscriptions on the
    corpus's invalidation bus; call :meth:`close` (or use it as a context
    manager) when done, which detaches every subscription and stops the
    background worker.
    """

    def __init__(
        self,
        corpus: SourceCorpus,
        mode: RefreshMode | str = RefreshMode.COALESCING,
        *,
        debounce_window: float = 0.05,
        max_delay: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if debounce_window < 0:
            raise ServingError("debounce_window must be non-negative")
        if max_delay < debounce_window:
            raise ServingError("max_delay must be at least the debounce window")
        self._corpus = corpus
        self._mode = RefreshMode(mode)
        self._debounce_window = float(debounce_window)
        self._max_delay = float(max_delay)
        self._clock = clock
        self._queues: dict[str, ConsumerQueue] = {}
        #: Intake lock: protects the queue registry and the worker state.
        self._intake = threading.RLock()
        self._wakeup = threading.Condition(self._intake)
        self._auto_names = 0
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.counters = PerfCounters()
        self._bus = corpus.invalidation_bus()
        #: The scheduler's own unfiltered subscription: the global pending
        #: marker (drives ``pending``/``due``/the worker) and the
        #: notification hook that wakes the worker / runs sync patches.
        self._marker = self._bus.subscribe(
            name="eager-refresh-scheduler", clock=clock, on_event=self._on_event
        )

    # -- accessors -----------------------------------------------------------------

    @property
    def corpus(self) -> SourceCorpus:
        """The corpus whose change notifications drive the scheduler."""
        return self._corpus

    @property
    def mode(self) -> RefreshMode:
        """The configured refresh mode."""
        return self._mode

    def read_lock(self) -> _CompositeLock:
        """Context manager holding every consumer's *shared* lock.

        Freezes all registered consumers' snapshots for a multi-consumer
        consistent read; concurrent readers are unaffected, patches wait
        at their O(1) swap.  Plain single-consumer reads do not need it —
        the built-in consumers are internally thread-safe.
        """
        return _CompositeLock(self, write=False)

    def write_lock(self) -> _CompositeLock:
        """Context manager holding every consumer's *exclusive* side.

        Excludes scheduler drains and lazy read-path patches alike; the
        holder may still read (and even refresh) the consumers itself —
        the per-consumer locks are reentrant for their holder.
        """
        return _CompositeLock(self, write=True)

    @property
    def lock(self) -> _CompositeLock:
        """Deprecated alias for :meth:`write_lock`.

        PR 4 exposed one raw ``RLock`` serialising every patch and guarded
        read; the concurrent core replaced it with per-consumer
        reader/writer locks.  Use ``with scheduler.read_lock():`` for
        guarded reads and ``with scheduler.write_lock():`` for exclusive
        freezes instead of holding the exclusive side for reads.
        """
        warnings.warn(
            "EagerRefreshScheduler.lock is deprecated; use read_lock() for "
            "guarded reads or write_lock() for exclusive access",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.write_lock()

    @property
    def pending(self) -> bool:
        """True when at least one event awaits a patch (always False in sync mode)."""
        return self._marker.peek() is not None

    @property
    def running(self) -> bool:
        """True while the background worker thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def consumer_names(self) -> list[str]:
        """Names of the registered consumers, in registration order."""
        with self._intake:
            return list(self._queues)

    def stats(self) -> dict[str, ConsumerStats]:
        """Per-consumer patch/skip/error statistics keyed by consumer name."""
        with self._intake:
            return {name: queue.stats for name, queue in self._queues.items()}

    def queue(self, name: str) -> ConsumerQueue:
        """The work queue registered under ``name`` (KeyError when unknown)."""
        with self._intake:
            return self._queues[name]

    def _queues_snapshot(self) -> list[ConsumerQueue]:
        with self._intake:
            return list(self._queues.values())

    # -- registration ---------------------------------------------------------------

    def register(
        self,
        name: str,
        refresh: Callable[[], Any],
        *,
        source_ids: Optional[Iterable[str]] = None,
        rwlock: Optional[ReadWriteLock] = None,
        refresh_gate: Optional[Any] = None,
    ) -> None:
        """Register ``refresh`` to be driven eagerly under ``name``.

        ``refresh`` must be an idempotent zero-argument callable that
        brings the consumer's derived state in sync with the corpus — for
        the built-in consumers that is exactly their lazy refresh entry
        point, which is what guarantees eager results are bit-identical to
        lazy ones.  ``source_ids`` optionally restricts the consumer to
        events touching those sources (the filter lives in the consumer's
        bus subscription).  ``rwlock``/``refresh_gate`` let the consumer
        share its own reader/writer lock and refresh serialisation with
        the queue, so the scheduler's composite locks guard the real
        snapshots; the built-in registration wrappers pass them
        automatically.  Registering an existing name replaces it (the old
        queue's subscription is detached).
        """
        subscription = self._bus.subscribe(
            name=f"consumer:{name}",
            source_ids=source_ids,
            clock=self._clock,
        )
        queue = ConsumerQueue(
            name,
            refresh,
            subscription,
            clock=self._clock,
            rwlock=rwlock,
            refresh_gate=refresh_gate,
            counters=self.counters,
        )
        with self._intake:
            previous = self._queues.pop(name, None)
            self._queues[name] = queue
        if previous is not None:
            previous.close()

    def _auto_name(self, prefix: str) -> str:
        """A fresh consumer name that can never replace a live registration."""
        with self._intake:
            while True:
                name = f"{prefix}-{self._auto_names}"
                self._auto_names += 1
                if name not in self._queues:
                    return name

    def register_search_engine(self, engine: Any, name: Optional[str] = None) -> str:
        """Register a :class:`~repro.search.engine.SearchEngine` (``engine.refresh``)."""
        name = name or self._auto_name("search-engine")
        self.register(
            name,
            engine.refresh,
            rwlock=getattr(engine, "rwlock", None),
            refresh_gate=getattr(engine, "refresh_mutex", None),
        )
        return name

    def register_source_model(
        self,
        model: Any,
        corpus: Optional[SourceCorpus] = None,
        benchmark_corpus: Optional[SourceCorpus] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register a :class:`~repro.core.source_quality.SourceQualityModel`.

        The eager refresh drives ``model.assessment_context(corpus,
        benchmark_corpus)`` — the same incremental path every model read
        goes through.  ``corpus`` defaults to the scheduler's corpus.
        """
        target = corpus if corpus is not None else self._corpus
        name = name or self._auto_name("source-model")
        self.register(
            name,
            lambda: model.assessment_context(target, benchmark_corpus),
            rwlock=getattr(model, "rwlock", None),
            refresh_gate=getattr(model, "refresh_mutex", None),
        )
        return name

    def register_contributor_model(
        self, model: Any, source: Any, name: Optional[str] = None
    ) -> str:
        """Register a contributor model for one source's community.

        The consumer's subscription is filtered to events touching
        ``source`` (other sources' mutations cannot stale this community),
        and the eager refresh drives ``model.refresh(source)``.
        """
        name = name or self._auto_name(f"contributor-model-{source.source_id}")
        self.register(
            name,
            lambda: model.refresh(source),
            source_ids=(source.source_id,),
            rwlock=getattr(model, "rwlock", None),
            refresh_gate=getattr(model, "refresh_mutex", None),
        )
        return name

    def register_checkpoint_store(
        self, store: Any, name: Optional[str] = None
    ) -> str:
        """Register a :class:`~repro.persistence.store.CorpusStore` checkpointer.

        Drives ``store.checkpoint_if_due`` as a fourth consumer queue:
        checkpoints are coalesced per mutation burst and run off the
        mutating thread like any other eager refresh.  A checkpoint
        failure is a :class:`~repro.errors.PersistenceError`, which the
        queue re-raises through every path (durability loss is never
        silently absorbed — see :class:`~repro.serving.queues.ConsumerQueue`).
        """
        name = name or self._auto_name("checkpoint")
        self.register(name, store.checkpoint_if_due)
        return name

    def unregister(self, name: str) -> bool:
        """Remove a registered consumer; returns False when unknown."""
        with self._intake:
            queue = self._queues.pop(name, None)
        if queue is None:
            return False
        queue.close()
        return True

    # -- event intake ----------------------------------------------------------------

    def _on_event(self, change: CorpusChange) -> None:
        """Per-event hook (called by the bus, outside its intake lock).

        The event itself is already coalesced into every matching queue's
        subscription by the bus; this hook only keeps the scheduler-level
        counters and wakes the worker — or, in sync mode, patches inline
        on the mutating thread.
        """
        with self._intake:
            if self._closed:
                return
            self.counters.increment("notifications")
            pending = self._marker.peek()
            if pending is not None and pending.events > 1:
                self.counters.increment("coalesced_events")
            if self._mode is not RefreshMode.SYNC:
                self._wakeup.notify_all()
                return
        # Sync mode: patch on the mutating thread, outside the intake lock
        # and *without raising* — a failed eager refresh must not make the
        # already-applied mutation appear to fail, nor starve the corpus's
        # later-registered listeners of this event (errors are recorded in
        # the consumer stats; the consumer falls back to lazy refresh).
        self._apply(raise_errors=False)

    # -- patching --------------------------------------------------------------------

    def _due_pending(self, pending: PendingInvalidation, now: float) -> bool:
        if self._mode is not RefreshMode.COALESCING:
            return True
        return (
            now - pending.last_at >= self._debounce_window
            or now - pending.first_at >= self._max_delay
        )

    def due(self, now: Optional[float] = None) -> bool:
        """True when pending work should be applied at ``now`` (poll contract).

        Deferred mode is due as soon as anything is pending; coalescing
        mode is due once the stream has been quiet for the debounce window
        or the oldest pending event has waited ``max_delay``.
        """
        pending = self._marker.peek()
        if pending is None:
            return False
        return self._due_pending(pending, self._clock() if now is None else now)

    def poll(self) -> int:
        """Apply pending work if it is due; return the number of patches run.

        The foreground pump for callers without a background worker:
        call it from the serving loop (e.g. once per request batch).
        """
        if not self.due():
            return 0
        return self._apply(raise_errors=True)

    def flush(self) -> int:
        """Apply pending work *now*, ignoring the debounce window.

        Returns the number of consumer patches run (0 when nothing was
        pending).  Also the deterministic hook tests and benchmarks use to
        force the eager patch without waiting on wall-clock time.
        """
        return self._apply(raise_errors=True)

    def drain(self, name: str) -> int:
        """Drain one consumer's queue independently of the others.

        Applies the named queue's pending work now (ignoring the debounce
        window) without touching any other queue — the entry point for
        callers that want to prioritise one consumer's freshness.  Returns
        the number of patches run (0 when that queue was idle); re-raises
        a refresh failure as :class:`~repro.errors.ServingError`.
        """
        with self._intake:
            queue = self._queues.get(name)
        if queue is None:
            raise ServingError(f"no consumer registered under {name!r}")
        patched, error = queue.drain()
        if error is not None:
            raise ServingError(
                f"eager refresh of consumer {name!r} failed"
            ) from error
        return patched

    def refresh_all(self) -> int:
        """Unconditionally run every registered consumer's refresh once.

        Useful right after registration to warm consumers up so the first
        mutation patches incrementally instead of building from scratch.
        """
        self._marker.drain()
        patched = 0
        errors: list[tuple[str, BaseException]] = []
        for queue in self._queues_snapshot():
            count, error = queue.force_refresh()
            patched += count
            if error is not None:
                errors.append((queue.name, error))
        self._raise_first(errors, raise_errors=True)
        return patched

    def _apply(self, raise_errors: bool) -> int:
        """Apply the pending patch to every queue with matching events.

        The scheduler-level marker is drained first (one ``patches_applied``
        apply-cycle per burst); each queue then drains *its own* pending
        state under its own serialisation — queues with nothing pending
        (their source filter excluded the whole burst) record a skip.  No
        lock is shared across queues, so one consumer's slow patch never
        delays another's.
        """
        if self._marker.drain() is None:
            return 0
        self.counters.increment("patches_applied")
        patched = 0
        errors: list[tuple[str, BaseException]] = []
        for queue in self._queues_snapshot():
            if queue.pending:
                count, error = queue.drain()
                patched += count
                if error is not None:
                    errors.append((queue.name, error))
            else:
                queue.skip()
        self._raise_first(errors, raise_errors)
        return patched

    def _raise_first(
        self, errors: list[tuple[str, BaseException]], raise_errors: bool
    ) -> None:
        if errors and raise_errors:
            # Explicit foreground calls get the failure; sync notifications
            # and the background worker record it (see ConsumerStats) and
            # keep serving the other consumers.
            name, exc = errors[0]
            raise ServingError(f"eager refresh of consumer {name!r} failed") from exc

    # -- background worker -------------------------------------------------------------

    def start(self) -> None:
        """Launch the daemon worker applying deferred/coalescing patches.

        A no-op in sync mode (patches already run inline) and when the
        worker is already running.  Incompatible with an injected
        ``clock``: the worker sleeps on real Condition timeouts, so a
        simulated clock would never make pending work due — drive such a
        scheduler with :meth:`poll`/:meth:`flush` instead.
        """
        if self._mode is RefreshMode.SYNC:
            return
        if self._clock is not time.monotonic:
            raise ServingError(
                "the background worker needs the real clock; "
                "with an injected clock, drive the scheduler via poll()/flush()"
            )
        with self._intake:
            if self._closed:
                raise ServingError("scheduler is closed")
            if self.running:
                return
            self._thread = threading.Thread(
                target=self._worker, name="eager-refresh-scheduler", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the background worker (pending work stays pending)."""
        with self._intake:
            thread = self._thread
            self._thread = None
            self._wakeup.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    def _worker(self) -> None:
        while True:
            with self._intake:
                if self._thread is not threading.current_thread() or self._closed:
                    return
                pending = self._marker.peek()
                if pending is None:
                    self._wakeup.wait(timeout=0.5)
                    continue
                now = self._clock()
                if not self._due_pending(pending, now):
                    deadline = min(
                        pending.last_at + self._debounce_window,
                        pending.first_at + self._max_delay,
                    )
                    self._wakeup.wait(timeout=max(0.0, deadline - now))
                    continue
            # Due: patch outside the intake lock so mutating threads are
            # never blocked behind the running refreshes.
            try:
                self._apply(raise_errors=False)
            except PersistenceError:
                # Already recorded in the failing queue's ConsumerStats
                # (see ConsumerQueue._run, which re-raises persistence
                # errors through every path).  Swallowing would be silent
                # data-durability loss; killing the worker would silently
                # stop every other consumer's eager refresh — so count it
                # and retry on the next due burst.
                self.counters.increment("persistence_errors")

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Detach every bus subscription and stop the worker (idempotent).

        Pending work is *not* applied: after ``close`` the consumers are
        back to plain lazy refresh, which remains correct.  The
        scheduler's subscriptions — its own pending marker and every
        queue's — are unregistered from the corpus's invalidation bus, so
        a closed scheduler receives no further notifications and holds no
        listener registration on the corpus.
        """
        with self._intake:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
            queues = list(self._queues.values())
        self.stop()
        self._marker.close()
        for queue in queues:
            queue.close()

    def __enter__(self) -> "EagerRefreshScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def register_worker_stack(
    scheduler: EagerRefreshScheduler,
    *,
    shard_index: int,
    engine: Any = None,
    source_model: Any = None,
    corpus: Optional[SourceCorpus] = None,
    store: Any = None,
) -> list[str]:
    """Register a shard worker's serving stack under shard-scoped names.

    The sharded worker (:mod:`repro.sharding.worker`) runs the very same
    consumers a single-process deployment does; this helper registers
    whichever of them exist under ``shard<i>.``-prefixed names — e.g.
    ``shard2.search-engine`` — so consumer stats, stress output and test
    assertions can tell the shards apart at a glance.  Pass only the
    pieces that already exist (the worker builds its engine lazily and
    registers it on first build); returns the registered names.
    """
    names: list[str] = []
    prefix = f"shard{shard_index}."
    if engine is not None:
        names.append(
            scheduler.register_search_engine(engine, name=f"{prefix}search-engine")
        )
    if source_model is not None:
        names.append(
            scheduler.register_source_model(
                source_model, corpus, name=f"{prefix}source-model"
            )
        )
    if store is not None:
        names.append(
            scheduler.register_checkpoint_store(store, name=f"{prefix}checkpoint")
        )
    return names
