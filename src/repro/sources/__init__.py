"""Web 2.0 source substrate.

This subpackage implements everything the quality model observes about the
Web: a data model for user-generated-content sources (blogs, forums,
microblogs, review sites), seeded synthetic generators that take the place of
live crawling, simulators of the third-party measurement panels the paper
relies on (Alexa, Feedburner), a crawler producing the snapshots consumed by
the quality measures, and a microblog (Twitter-like) community model used by
the contributor experiments.
"""

from repro.sources.models import (
    AccountKind,
    Discussion,
    Interaction,
    InteractionType,
    Post,
    Source,
    SourceType,
    UserProfile,
)
from repro.sources.corpus import CorpusChange, SourceCorpus
from repro.sources.crawler import Crawler, CrawlSnapshot
from repro.sources.graph import (
    GraphInfluence,
    InteractionGraph,
    build_community_graph,
    build_source_graph,
)
from repro.sources.generators import (
    CorpusGenerator,
    CorpusSpec,
    SourceGenerator,
    SourceSpec,
)
from repro.sources.webstats import (
    AlexaLikeService,
    FeedburnerLikeService,
    PanelObservation,
    WebStatsPanel,
)
from repro.sources.twitter import (
    MicroblogAccount,
    MicroblogCommunity,
    MicroblogGenerator,
    MicroblogSpec,
    Tweet,
    TwitaholicLikeService,
)

__all__ = [
    "AccountKind",
    "AlexaLikeService",
    "CorpusChange",
    "CorpusGenerator",
    "CorpusSpec",
    "Crawler",
    "CrawlSnapshot",
    "Discussion",
    "FeedburnerLikeService",
    "GraphInfluence",
    "Interaction",
    "InteractionGraph",
    "InteractionType",
    "MicroblogAccount",
    "MicroblogCommunity",
    "MicroblogGenerator",
    "MicroblogSpec",
    "PanelObservation",
    "Post",
    "Source",
    "SourceCorpus",
    "SourceGenerator",
    "SourceSpec",
    "SourceType",
    "Tweet",
    "TwitaholicLikeService",
    "UserProfile",
    "WebStatsPanel",
    "build_community_graph",
    "build_source_graph",
]
