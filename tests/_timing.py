"""Deadline-polling helper shared by the timing-sensitive suites.

Lives in its own module (not ``conftest.py``) so test files can import it
by name without colliding with the benchmarks' ``conftest`` when pytest
collects both trees in one run.
"""

from __future__ import annotations

import time

__all__ = ["wait_until"]


def wait_until(
    predicate,
    *,
    timeout: float = 10.0,
    interval: float = 0.002,
    message: str = "condition",
) -> None:
    """Poll ``predicate`` until true or fail loudly after ``timeout`` seconds.

    The deflaked replacement for bare ``time.sleep`` pacing in
    timing-sensitive tests: it converges as soon as the condition holds
    (fast machines don't wait) and a slow machine gets the full budget
    with a named assertion instead of a silent fallthrough.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    if predicate():
        return
    raise AssertionError(f"timed out after {timeout:.1f}s waiting for {message}")
