#!/usr/bin/env python3
"""Durable persistence demo: checkpoint, crash mid-write, recover bit-identically.

The script builds a small corpus with a live search engine and quality
model, checkpoints everything into a :class:`~repro.persistence.CorpusStore`
(snapshot + write-ahead journal), streams a few more journaled mutations,
then *kills* the next journal append mid-record with the fault-injection
harness — the same torn-tail class a real power cut produces.  Recovery
rebuilds the full serving stack from the damaged files and the script
asserts the recovered ranking and search results are bit-identical to the
live stack's.

Run with::

    python examples/checkpoint_recover.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro import CorpusGenerator, CorpusSpec, DomainOfInterest, SourceQualityModel
from repro.persistence import CorpusStore, FaultPlan, InjectedCrash, inject_faults
from repro.search.engine import SearchEngine
from repro.sources.models import Discussion, Post


def grow(corpus, event: int) -> None:
    """One journaled mutation: a new discussion lands on some source."""
    source = corpus.sources()[event % len(corpus)]
    discussion = Discussion(
        discussion_id=f"live-{event}",
        category="travel",
        title="travel flight resort breaking",
        opened_at=1.0,
    )
    discussion.posts.append(
        Post(post_id=f"live-post-{event}", author_id="u1", day=2.0,
             text="travel flight resort beach hotel")
    )
    source.add_discussion(discussion)


def main() -> None:
    corpus = CorpusGenerator(
        CorpusSpec(source_count=12, seed=7, discussion_budget=10, user_budget=12)
    ).generate()
    domain = DomainOfInterest(categories=("travel", "food"), name="demo")
    engine = SearchEngine(corpus)
    model = SourceQualityModel(domain)

    directory = Path(tempfile.mkdtemp(prefix="checkpoint-recover-"))
    try:
        # 1. Attach: from here on every mutation is journaled durably.
        store = CorpusStore(directory)
        store.attach(corpus, engine=engine, source_model=model)
        version = store.checkpoint()
        print(f"checkpointed {len(corpus)} sources at corpus version {version}")

        # 2. Stream mutations into the journal after the checkpoint.
        for event in range(4):
            grow(corpus, event)
        print(f"journaled 4 live mutations (corpus now at version {corpus.version})")

        # What the live stack serves after the acknowledged mutations —
        # the state recovery must reproduce exactly.
        engine.refresh()
        expected_rank = list(engine.static_rank())
        expected_ranking = [
            (a.source_id, a.overall)
            for a in model.assessment_context(corpus).ranking
        ]

        # 3. Crash: the next journal append dies after 11 bytes, leaving a
        #    torn record — exactly what a power cut mid-write leaves behind.
        #    That fifth mutation was never acknowledged, so recovery is
        #    allowed (and here expected) to lose it.
        try:
            with inject_faults(FaultPlan(kill_after_bytes=11, match="journal")):
                grow(corpus, 4)
            raise SystemExit("the injected crash did not fire")
        except InjectedCrash as crash:
            print(f"simulated crash: {crash}")

        # 4. Recover in a "new process": corpus + warm index + warm model
        #    from the snapshot, journal tail replayed through the
        #    incremental patch machinery, torn tail truncated.
        with CorpusStore(directory) as fresh:
            stack = fresh.recover_stack(domain=domain, attach=False)
        result = stack.result
        print(
            f"recovered from the {result.snapshot_used} snapshot: "
            f"{result.applied} events replayed"
        )
        for note in result.notes:
            print(f"  note: {note}")

        # 5. The recovered stack answers bit-identically to the live one.
        stack.engine.refresh()
        assert list(stack.engine.static_rank()) == expected_rank
        recovered_ranking = [
            (a.source_id, a.overall)
            for a in stack.source_model.assessment_context(stack.corpus).ranking
        ]
        assert recovered_ranking == expected_ranking
        print("recovered ranking and static rank are bit-identical to the live stack")
        top_id, top_overall = recovered_ranking[0]
        print(f"top source after recovery: {top_id} (overall {top_overall:.3f})")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
