"""On-disk formats and durable-write primitives of the persistence layer.

Two file formats share the primitives in this module:

* **Snapshots** (:mod:`repro.persistence.snapshot`) — one binary file
  holding named, individually CRC-guarded sections behind a magic/version
  header.  Snapshots are only ever written *atomically*: the bytes go to a
  temporary file in the same directory, are flushed and fsynced, and the
  temporary file is renamed over the destination (then the directory entry
  is fsynced).  A reader therefore sees either the previous complete
  snapshot or the new complete snapshot, never a torn mixture.
* **Journals** (:mod:`repro.persistence.journal`) — an append-only file of
  length-prefixed records, each independently CRC-guarded, behind the same
  style of header.  A crash mid-append leaves a *torn tail*: the reader
  detects it (bad length, bad CRC or truncated payload), reports the last
  valid byte offset, and recovery truncates the file there — torn tails
  are expected, never fatal.

Record framing (also used for snapshot sections)::

    [u32 payload length][u32 CRC-32 of payload][payload bytes]

All integers are little-endian.  CRC-32 is :func:`zlib.crc32` (the same
polynomial as gzip/PNG), which is plenty for detecting torn writes and
bit rot — these files are trusted local state, not an authentication
boundary.

Every byte that reaches disk goes through the module-level I/O channel
(:data:`_io`), which the fault-injection harness
(:mod:`repro.persistence.faults`) swaps out to kill writes at chosen byte
boundaries — mid-record, mid-header, or after the data but before the
rename.  Production code never touches the channel.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Optional

from repro.errors import CorruptSnapshotError

__all__ = [
    "SNAPSHOT_MAGIC",
    "JOURNAL_MAGIC",
    "FORMAT_VERSION",
    "RECORD_HEADER",
    "atomic_write_bytes",
    "atomic_write_json",
    "pack_record",
    "write_record",
    "write_bytes",
    "read_record",
    "json_record",
    "decode_json",
    "pack_sections",
    "unpack_sections",
    "fsync_file",
    "fsync_directory",
]

#: 4-byte magic prefixes identifying the two file kinds.
SNAPSHOT_MAGIC = b"RPSS"
JOURNAL_MAGIC = b"RPJL"

#: Version of both on-disk formats; bump on incompatible layout changes.
FORMAT_VERSION = 1

#: ``[u32 payload length][u32 CRC-32]`` little-endian record prefix.
RECORD_HEADER = struct.Struct("<II")

#: Upper bound accepted for a single record/section payload.  A torn or
#: corrupt length prefix must not make a reader attempt a multi-gigabyte
#: allocation; 1 GiB is far above any legitimate payload.
MAX_PAYLOAD_BYTES = 1 << 30


class _DirectIO:
    """Default I/O channel: real writes, real fsyncs, real renames.

    The fault harness installs a channel with the same three methods that
    injects crashes at byte boundaries; see
    :func:`repro.persistence.faults.inject_faults`.
    """

    def write(self, handle: BinaryIO, path: Path, data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: BinaryIO, path: Path) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: Path, destination: Path) -> None:
        os.replace(source, destination)


_io = _DirectIO()


def _install_io(channel: Any) -> Any:
    """Swap the module's I/O channel; return the previous one (faults only)."""
    global _io
    previous = _io
    _io = channel
    return previous


def write_bytes(handle: BinaryIO, path: Path, data: bytes) -> None:
    """Write raw bytes through the (fault-injectable) channel."""
    _io.write(handle, path, data)


def fsync_file(handle: BinaryIO, path: Path) -> None:
    """Flush and fsync an open file through the (fault-injectable) channel."""
    _io.fsync(handle, path)


def fsync_directory(path: Path) -> None:
    """fsync a directory entry so a completed rename survives a power cut.

    Best-effort: some platforms/filesystems refuse to open directories
    (Windows) or to fsync them; the rename itself is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (write-tmp, fsync, rename).

    The temporary file lives in the destination directory (renames must
    not cross filesystems) under a deterministic ``<name>.tmp`` suffix; a
    crash can leave it behind, and any later write simply overwrites it —
    readers never look at ``*.tmp`` files.  With ``fsync=False`` the data
    and directory fsyncs are skipped (faster, but a power cut shortly
    after the rename may lose the write — fine for benchmark reports,
    wrong for snapshots).
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        _io.write(handle, tmp_path, data)
        if fsync:
            _io.fsync(handle, tmp_path)
    _io.replace(tmp_path, path)
    if fsync:
        fsync_directory(path.parent)


def atomic_write_json(path: str | Path, payload: Any, *, indent: Optional[int] = 2, fsync: bool = False) -> None:
    """Serialise ``payload`` to JSON and write it atomically to ``path``.

    The shared helper behind ``BENCH_perf.json`` and every other JSON
    report writer: an interrupted run leaves the previous complete file
    in place instead of a truncated one.  ``fsync`` defaults to off —
    reports value atomicity (no torn JSON), not durability.
    """
    text = json.dumps(payload, indent=indent) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


# -- record framing ---------------------------------------------------------------------


def pack_record(payload: bytes) -> bytes:
    """Frame ``payload`` as ``[u32 length][u32 crc32][payload]``."""
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def write_record(handle: BinaryIO, path: Path, payload: bytes) -> None:
    """Append one framed record to an open file (no fsync)."""
    _io.write(handle, path, pack_record(payload))


def read_record(
    buffer: bytes, offset: int, *, path: Optional[Path] = None, strict: bool = False
) -> Optional[tuple[bytes, int]]:
    """Decode the framed record starting at ``offset`` of ``buffer``.

    Returns ``(payload, next_offset)``, or None when the bytes at
    ``offset`` do not form a complete valid record — a truncated header,
    a truncated payload, an implausible length, or a CRC mismatch.  That
    None is the *torn tail* signal journal readers scan for.  With
    ``strict=True`` the failure raises :class:`CorruptSnapshotError`
    carrying ``path`` and the byte offset instead (the snapshot reader's
    behaviour: a snapshot is written atomically, so a bad section is
    corruption, not an expected torn tail).
    """

    def fail(reason: str) -> Optional[tuple[bytes, int]]:
        if strict:
            raise CorruptSnapshotError(reason, path=path, offset=offset)
        return None

    header_end = offset + RECORD_HEADER.size
    if header_end > len(buffer):
        return fail("truncated record header")
    length, checksum = RECORD_HEADER.unpack_from(buffer, offset)
    if length > MAX_PAYLOAD_BYTES:
        return fail(f"implausible record length {length}")
    payload_end = header_end + length
    if payload_end > len(buffer):
        return fail("truncated record payload")
    payload = buffer[header_end:payload_end]
    if zlib.crc32(payload) != checksum:
        return fail("record CRC mismatch")
    return payload, payload_end


def json_record(payload: Any) -> bytes:
    """Compact-JSON payload bytes, ready for :func:`write_record` framing."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes, *, path: Optional[Path] = None, offset: int = 0) -> Any:
    """Decode a JSON record payload; corruption raises a typed error.

    A CRC-valid payload that is not valid JSON means the *writer* was
    broken, not the disk; surface it as corruption all the same so
    recovery degrades instead of crashing.
    """
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptSnapshotError(
            f"undecodable JSON payload: {exc}", path=path, offset=offset
        ) from exc


# -- snapshot section layout -------------------------------------------------------------

_SECTION_NAME = struct.Struct("<H")


def pack_sections(magic: bytes, sections: dict[str, bytes]) -> bytes:
    """Serialise named sections behind a magic/version header.

    Layout: ``magic | u32 format version | u32 section count`` followed by
    one ``u16 name length | name utf-8 | framed record`` per section.  Each
    section payload carries its own CRC (the framing), so a reader can
    localise corruption to one section and a byte offset.
    """
    out = io.BytesIO()
    out.write(magic)
    out.write(struct.pack("<II", FORMAT_VERSION, len(sections)))
    for name, payload in sections.items():
        encoded = name.encode("utf-8")
        out.write(_SECTION_NAME.pack(len(encoded)))
        out.write(encoded)
        out.write(pack_record(payload))
    return out.getvalue()


def unpack_sections(buffer: bytes, magic: bytes, *, path: Optional[Path] = None) -> dict[str, bytes]:
    """Parse :func:`pack_sections` output, validating every CRC.

    Raises :class:`CorruptSnapshotError` (with ``path`` and the byte
    offset of the failure) on a bad magic, an unsupported version, or any
    truncated/corrupt section.
    """
    if len(buffer) < len(magic) + 8:
        raise CorruptSnapshotError("truncated header", path=path, offset=0)
    if buffer[: len(magic)] != magic:
        raise CorruptSnapshotError(
            f"bad magic {buffer[:len(magic)]!r} (expected {magic!r})", path=path, offset=0
        )
    version, count = struct.unpack_from("<II", buffer, len(magic))
    if version != FORMAT_VERSION:
        raise CorruptSnapshotError(
            f"unsupported format version {version}", path=path, offset=len(magic)
        )
    offset = len(magic) + 8
    sections: dict[str, bytes] = {}
    for _ in range(count):
        if offset + _SECTION_NAME.size > len(buffer):
            raise CorruptSnapshotError("truncated section name", path=path, offset=offset)
        (name_length,) = _SECTION_NAME.unpack_from(buffer, offset)
        offset += _SECTION_NAME.size
        if offset + name_length > len(buffer):
            raise CorruptSnapshotError("truncated section name", path=path, offset=offset)
        name = buffer[offset : offset + name_length].decode("utf-8", errors="replace")
        offset += name_length
        payload, offset = read_record(buffer, offset, path=path, strict=True)
        sections[name] = payload
    return sections
